//! Consistency of the regenerated characterization with the structural
//! impossibility layer and with the configuration enumeration.

use ring_robots::checker::characterization::{build_characterization, CellStatus};
use ring_robots::checker::enumeration::configuration_graph;
use ring_robots::checker::impossibility::{lemma8_applies, structural_reason};
use ring_robots::prelude::*;
use ring_robots::ring::enumerate::count_configurations;

#[test]
fn characterization_and_feasibility_agree() {
    let cells = build_characterization(3..=16, false, 0);
    for cell in &cells {
        let direct = searching_feasibility(cell.n, cell.k);
        match (&cell.status, direct) {
            (CellStatus::Solvable { .. }, Feasibility::Solvable(_))
            | (CellStatus::Impossible { .. }, Feasibility::Impossible(_))
            | (CellStatus::Open, Feasibility::Open)
            | (CellStatus::OutOfModel, Feasibility::OutOfModel) => {}
            other => panic!("cell (n={}, k={}) disagrees: {other:?}", cell.n, cell.k),
        }
    }
}

#[test]
fn structural_reasons_exist_exactly_for_impossible_cells() {
    for n in 3..=16usize {
        for k in 1..=n {
            let cellwise = structural_reason(n, k).is_some();
            let direct = searching_feasibility(n, k).is_impossible();
            assert_eq!(cellwise, direct, "n={n} k={k}");
        }
    }
}

#[test]
fn figure_counts_match_the_enumeration_crate() {
    // The configuration-graph node counts (Figures 4–9) must agree with the
    // plain enumeration counts from rr-ring.
    for (k, n) in [(4usize, 7usize), (4, 8), (5, 8), (6, 9), (4, 9), (5, 9)] {
        assert_eq!(
            configuration_graph(n, k).num_classes(),
            count_configurations(n, k)
        );
    }
}

#[test]
fn lemma8_blocks_are_never_dispatched_start_states_in_small_impossible_rings() {
    // Sanity link between the lemma layer and the dispatcher: on rings the
    // paper proves unsolvable, no protocol is dispatched at all, so the
    // configurations Lemma 8 forbids can never even be reached by our code.
    let c = Configuration::new_exclusive(Ring::new(8), &[0, 1, 2, 3]).unwrap();
    assert!(lemma8_applies(&c));
    assert!(ring_robots::core::unified::protocol_for(Task::GraphSearching, 8, 4).is_none());
}
