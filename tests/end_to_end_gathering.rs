//! Cross-crate integration tests for the gathering task.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ring_robots::core::gathering::run_gathering;
use ring_robots::core::unified::{protocol_for, Task};
use ring_robots::prelude::*;
use ring_robots::ring::enumerate::{enumerate_rigid_configurations, random_rigid_configuration};

#[test]
fn gathering_from_random_rigid_configurations() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for (n, k) in [(10usize, 4usize), (15, 6), (21, 9), (30, 5)] {
        let start = random_rigid_configuration(n, k, &mut rng).expect("rigid config");
        let mut scheduler = RoundRobinScheduler::new();
        let stats = run_gathering(&start, &mut scheduler, 2_000_000).unwrap();
        assert!(stats.gathered, "(n={n}, k={k})");
        assert!(!stats.broke_gathering);
    }
}

#[test]
fn gathering_is_robust_to_the_asynchronous_adversary() {
    for seed in [10u64, 20, 30] {
        let start = enumerate_rigid_configurations(14, 6)
            .into_iter()
            .next()
            .unwrap();
        let mut scheduler = AsynchronousScheduler::seeded(seed);
        let stats = run_gathering(&start, &mut scheduler, 2_000_000).unwrap();
        assert!(stats.gathered, "seed {seed}");
    }
}

#[test]
fn gathering_dispatch_matches_theorem_8() {
    assert!(protocol_for(Task::Gathering, 12, 5).is_some());
    assert!(protocol_for(Task::Gathering, 12, 3).is_some());
    assert!(protocol_for(Task::Gathering, 12, 9).is_some());
    assert!(protocol_for(Task::Gathering, 12, 10).is_none()); // k = n-2
    assert!(protocol_for(Task::Gathering, 12, 11).is_none()); // k = n-1
    assert!(protocol_for(Task::Gathering, 12, 2).is_none());
}

#[test]
fn gathering_verification_harness() {
    let report = verify_gathering(12, 5, 1, 7);
    assert!(report.verified, "{report:?}");
    let report = verify_gathering(9, 7, 1, 7);
    assert!(!report.verified);
}

#[test]
fn gathered_runs_stay_gathered() {
    // After gathering is reached, scheduling more cycles must not move anyone.
    let start = enumerate_rigid_configurations(11, 4)
        .into_iter()
        .next()
        .unwrap();
    let protocol = GatheringProtocol::new();
    let mut sim = Engine::with_default_options(protocol, start).unwrap();
    let mut scheduler = RoundRobinScheduler::new();
    let report = sim.run_until(&mut scheduler, 1_000_000, |s| {
        s.configuration().is_gathered()
    });
    assert!(report.succeeded());
    let moves_at_gathering = sim.move_count();
    for _ in 0..200 {
        let step = scheduler.next(&sim.scheduler_view());
        sim.step(&step, &mut ()).unwrap();
    }
    assert_eq!(sim.move_count(), moves_at_gathering);
    assert!(sim.configuration().is_gathered());
}
