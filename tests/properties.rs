//! Property-based tests (proptest) on the core data structures and the
//! algorithmic invariants of the paper.

use proptest::prelude::*;
use ring_robots::core::align::{choose_reduction, AlignProtocol};
use ring_robots::core::gathering::run_gathering;
use ring_robots::prelude::*;
use ring_robots::ring::{supermin_view, symmetry};

/// Strategy: a random gap word with `k` intervals and at least one empty node,
/// i.e. an arbitrary exclusive configuration given as gaps.
fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (3usize..9, 1usize..10).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..4, k).prop_map(move |mut gaps| {
            // Guarantee at least `extra` empty nodes so n > k.
            gaps[0] += extra;
            gaps
        })
    })
}

/// Strategy: a random *rigid* configuration (filters the non-rigid words out).
fn rigid_configuration() -> impl Strategy<Value = Configuration> {
    gap_word()
        .prop_map(|gaps| Configuration::from_gaps_at_origin(&gaps))
        .prop_filter("rigid", symmetry::is_rigid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The supermin view is invariant under re-reading the configuration from
    /// any robot in any direction.
    #[test]
    fn supermin_is_isomorphism_invariant(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let supermin = supermin_view(&config);
        for (_, _, view) in config.all_views() {
            prop_assert_eq!(view.supermin(), supermin.clone());
        }
    }

    /// A configuration is rigid iff all of its 2k views are pairwise distinct.
    #[test]
    fn rigidity_iff_all_views_distinct(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let views: Vec<View> = config.all_views().into_iter().map(|(_, _, w)| w).collect();
        let mut sorted = views.clone();
        sorted.sort();
        sorted.dedup();
        let all_distinct = sorted.len() == views.len();
        prop_assert_eq!(symmetry::is_rigid(&config), all_distinct);
    }

    /// Geometric symmetry analysis agrees with the view-based Property 1.
    #[test]
    fn symmetry_analysis_agrees_with_property_1(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        prop_assert_eq!(
            symmetry::classify(&config),
            symmetry::classify_by_views(&config)
        );
    }

    /// Align: in any rigid configuration that is not already C*, exactly one
    /// robot is enabled, and its move preserves the robot count and the
    /// exclusivity property.
    #[test]
    fn align_enables_exactly_one_robot(config in rigid_configuration()) {
        let w_min = supermin_view(&config);
        prop_assume!(!AlignProtocol::is_goal(&w_min));
        prop_assume!(choose_reduction(&w_min).is_some());
        let mut movers = 0;
        for v in config.occupied_nodes() {
            let snapshot = Snapshot::capture(
                &config,
                v,
                MultiplicityCapability::None,
                Direction::Cw,
            );
            if AlignProtocol::new().compute(&snapshot).is_move() {
                movers += 1;
            }
        }
        prop_assert_eq!(movers, 1);
    }

    /// Align's chosen reduction never creates a symmetric configuration,
    /// except from the two configurations singled out by Theorem 1.
    #[test]
    fn align_avoids_symmetry_except_for_cs(config in rigid_configuration()) {
        let w_min = supermin_view(&config);
        prop_assume!(!AlignProtocol::is_goal(&w_min));
        if let Some(selected) = choose_reduction(&w_min) {
            if selected.resulting_word.is_symmetric() {
                // Only Cs may do this (its successor is the known exception).
                prop_assert_eq!(w_min.gaps(), &[0, 1, 1, 2]);
            }
        }
    }

    /// The contamination closure is idempotent and monotone with respect to
    /// adding guards.
    #[test]
    fn contamination_closure_is_idempotent(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let mut c1 = Contamination::initial(&config);
        let before = c1.clone();
        c1.recontaminate(&config);
        prop_assert_eq!(before, c1);
    }

    /// Gathering terminates (and stays gathered) from every rigid
    /// configuration within the supported parameter range.
    #[test]
    fn gathering_terminates_from_rigid_configurations(config in rigid_configuration()) {
        let n = config.n();
        let k = config.num_robots();
        prop_assume!(k > 2 && k + 2 < n);
        let mut scheduler = RoundRobinScheduler::new();
        let stats = run_gathering(&config, &mut scheduler, 2_000_000).unwrap();
        prop_assert!(stats.gathered);
        prop_assert!(!stats.broke_gathering);
    }

    /// Canonical keys classify isomorphic configurations together: rotating an
    /// entire configuration never changes its canonical key.
    #[test]
    fn canonical_key_is_rotation_invariant(gaps in gap_word(), shift in 0usize..16) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let n = config.n();
        let rotated_nodes: Vec<usize> = config
            .occupied_nodes()
            .into_iter()
            .map(|v| (v + shift) % n)
            .collect();
        let rotated = Configuration::new_exclusive(Ring::new(n), &rotated_nodes).unwrap();
        prop_assert_eq!(config.canonical_key(), rotated.canonical_key());
        prop_assert!(config.is_isomorphic(&rotated));
    }
}
