//! Cross-crate integration tests: the full graph-searching / exploration
//! pipeline (dispatcher → simulator → monitors) on a spread of instances.

use ring_robots::core::clearing::run_searching;
use ring_robots::core::unified::{protocol_for, Task};
use ring_robots::prelude::*;
use ring_robots::ring::enumerate::enumerate_rigid_configurations;

fn first_rigid(n: usize, k: usize) -> Configuration {
    enumerate_rigid_configurations(n, k)
        .into_iter()
        .next()
        .expect("a rigid configuration exists")
}

#[test]
fn ring_clearing_across_a_parameter_spread() {
    for (n, k) in [(11usize, 5usize), (12, 6), (14, 9), (17, 7), (20, 15)] {
        let protocol = protocol_for(Task::GraphSearching, n, k)
            .unwrap_or_else(|| panic!("(n={n}, k={k}) should be solvable"));
        let start = first_rigid(n, k);
        let mut scheduler = RoundRobinScheduler::new();
        let stats = run_searching(protocol, &start, &mut scheduler, 4, 1, 600_000).unwrap();
        assert!(
            stats.clearings >= 4,
            "(n={n}, k={k}): {} clearings",
            stats.clearings
        );
        assert!(
            stats.min_exploration_completions >= 1,
            "(n={n}, k={k}): exploration sweeps {}",
            stats.min_exploration_completions
        );
    }
}

#[test]
fn n_minus_three_band_joins_the_characterization() {
    for n in [10usize, 13, 16] {
        let k = n - 3;
        let protocol = protocol_for(Task::GraphSearching, n, k).expect("solvable");
        assert_eq!(protocol.name(), "n-minus-three");
        let start = first_rigid(n, k);
        let mut scheduler = SemiSynchronousScheduler::seeded(5);
        let stats = run_searching(protocol, &start, &mut scheduler, 4, 0, 400_000).unwrap();
        assert!(stats.clearings >= 4, "n={n}: {}", stats.clearings);
    }
}

#[test]
fn exploration_task_uses_the_same_algorithms() {
    let protocol = protocol_for(Task::Exploration, 13, 6).expect("solvable");
    let start = first_rigid(13, 6);
    let mut scheduler = RoundRobinScheduler::new();
    let stats = run_searching(protocol, &start, &mut scheduler, 0, 2, 600_000).unwrap();
    assert!(stats.min_exploration_completions >= 2);
}

#[test]
fn searching_never_violates_exclusivity_under_async_adversaries() {
    // The asynchronous scheduler with pending moves is the paper's adversary;
    // a run that returns Ok never violated exclusivity (the simulator would
    // have failed otherwise).
    for seed in [1u64, 2, 3, 4, 5] {
        let start = first_rigid(12, 5);
        let protocol = protocol_for(Task::GraphSearching, 12, 5).unwrap();
        let mut scheduler = AsynchronousScheduler::seeded(seed);
        let stats = run_searching(protocol, &start, &mut scheduler, 3, 0, 200_000).unwrap();
        assert!(
            stats.clearings >= 3,
            "seed {seed}: {} clearings",
            stats.clearings
        );
    }
}

#[test]
fn impossible_and_open_cells_have_no_dispatched_protocol() {
    for (n, k) in [
        (9usize, 5usize),
        (8, 4),
        (12, 2),
        (12, 3),
        (12, 10),
        (12, 11),
        (10, 5),
        (15, 4),
    ] {
        assert!(
            protocol_for(Task::GraphSearching, n, k).is_none(),
            "(n={n}, k={k}) must not be dispatched"
        );
    }
}

#[test]
fn verification_harness_agrees_with_direct_runs() {
    let report = verify_searching(13, 6, 1, 99);
    assert!(report.verified, "{report:?}");
    let report = verify_searching(10, 5, 1, 99);
    assert!(!report.verified, "the open cell (10,5) must not verify");
}
