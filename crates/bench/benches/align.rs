//! E3 (Theorem 1): cost of one Align decision and of a complete Align run
//! from a spread-out rigid configuration to `C*`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::{spread_out_rigid_start, ALIGN_INSTANCES};
use rr_corda::scheduler::RoundRobinScheduler;
use rr_corda::{MultiplicityCapability, Protocol, Snapshot};
use rr_core::align::{run_to_c_star, AlignProtocol};
use rr_ring::Direction;
use std::hint::black_box;
use std::time::Duration;

fn bench_align(c: &mut Criterion) {
    let mut group = c.benchmark_group("align");
    // One Compute-phase decision.
    let config = spread_out_rigid_start(32, 8);
    let node = config.occupied_nodes()[0];
    let snapshot = Snapshot::capture(&config, node, MultiplicityCapability::None, Direction::Cw);
    group.bench_function("decision/n32_k8", |b| {
        b.iter(|| black_box(AlignProtocol::new().compute(black_box(&snapshot))));
    });
    // Complete runs to C*.
    for &(n, k) in ALIGN_INSTANCES.iter().filter(|(n, _)| *n <= 32) {
        let start = spread_out_rigid_start(n, k);
        group.bench_with_input(
            BenchmarkId::new("run_to_c_star", format!("n{n}_k{k}")),
            &start,
            |b, s| {
                b.iter(|| {
                    let mut sched = RoundRobinScheduler::new();
                    black_box(run_to_c_star(s, &mut sched, 10_000_000).expect("align converges"))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_align
}
criterion_main!(benches);
