//! E4 (Theorem 6 / Figure 12): Ring Clearing — cost of one full clearing
//! cycle and of a run demonstrating three clearings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_corda::scheduler::RoundRobinScheduler;
use rr_core::clearing::{run_searching, RingClearingProtocol};
use std::hint::black_box;
use std::time::Duration;

fn bench_clearing(c: &mut Criterion) {
    let mut group = c.benchmark_group("clearing");
    for &(n, k) in &[(12usize, 5usize), (16, 8), (24, 7), (40, 20)] {
        let start = rigid_start(n, k);
        group.bench_with_input(
            BenchmarkId::new("three_clearings", format!("n{n}_k{k}")),
            &start,
            |b, s| {
                b.iter(|| {
                    let mut sched = RoundRobinScheduler::new();
                    let stats =
                        run_searching(RingClearingProtocol::new(), s, &mut sched, 3, 0, 10_000_000)
                            .expect("runs");
                    assert!(stats.clearings >= 3);
                    black_box(stats.moves)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_clearing
}
criterion_main!(benches);
