//! E8 (micro): supermin view computation and symmetry classification
//! (Property 1 / Lemma 1 machinery of Section 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_ring::{supermin_intervals, supermin_view, symmetry, View};
use std::hint::black_box;
use std::time::Duration;

/// Booth's least-rotation vs the all-rotations reference implementation
/// (`min_rotation_naive` / `supermin_naive`) — the regression guard for the
/// PR that replaced the Vec-of-Vecs materialization.
fn bench_booth_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("booth_vs_naive");
    for &(n, k) in &[(32usize, 12usize), (64, 16), (256, 64), (1024, 128)] {
        let view = View::new(rigid_start(n, k).gap_sequence());
        group.bench_with_input(
            BenchmarkId::new("min_rotation_booth", format!("n{n}_k{k}")),
            &view,
            |b, w| b.iter(|| black_box(black_box(w).min_rotation())),
        );
        group.bench_with_input(
            BenchmarkId::new("min_rotation_naive", format!("n{n}_k{k}")),
            &view,
            |b, w| b.iter(|| black_box(black_box(w).min_rotation_naive())),
        );
        group.bench_with_input(
            BenchmarkId::new("supermin_booth", format!("n{n}_k{k}")),
            &view,
            |b, w| b.iter(|| black_box(black_box(w).supermin())),
        );
        group.bench_with_input(
            BenchmarkId::new("supermin_naive", format!("n{n}_k{k}")),
            &view,
            |b, w| b.iter(|| black_box(black_box(w).supermin_naive())),
        );
    }
    group.finish();
}

fn bench_supermin(c: &mut Criterion) {
    let mut group = c.benchmark_group("supermin");
    for &(n, k) in &[(16usize, 7usize), (64, 16), (256, 64), (1024, 128)] {
        let config = rigid_start(n, k);
        group.bench_with_input(
            BenchmarkId::new("supermin_view", format!("n{n}_k{k}")),
            &config,
            |b, cfg| {
                b.iter(|| black_box(supermin_view(black_box(cfg))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("supermin_intervals", format!("n{n}_k{k}")),
            &config,
            |b, cfg| {
                b.iter(|| black_box(supermin_intervals(black_box(cfg))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classify", format!("n{n}_k{k}")),
            &config,
            |b, cfg| {
                b.iter(|| black_box(symmetry::classify(black_box(cfg))));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_supermin, bench_booth_vs_naive
}
criterion_main!(benches);
