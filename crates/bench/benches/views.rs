//! E8 (micro): cost of the Look-phase machinery — building views and snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_corda::{MultiplicityCapability, Snapshot};
use rr_ring::Direction;
use std::hint::black_box;
use std::time::Duration;

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("views");
    for &(n, k) in &[(16usize, 7usize), (64, 16), (256, 64), (1024, 128)] {
        let config = rigid_start(n, k);
        let node = config.occupied_nodes()[0];
        group.bench_with_input(
            BenchmarkId::new("view_from", format!("n{n}_k{k}")),
            &config,
            |b, cfg| {
                b.iter(|| black_box(cfg.view_from(black_box(node), Direction::Cw)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot", format!("n{n}_k{k}")),
            &config,
            |b, cfg| {
                b.iter(|| {
                    black_box(Snapshot::capture(
                        cfg,
                        black_box(node),
                        MultiplicityCapability::Local,
                        Direction::Cw,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_views
}
criterion_main!(benches);
