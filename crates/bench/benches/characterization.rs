//! E1: regenerating the feasibility characterization table (claims only; the
//! validated sweep is the `exp_characterization` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_checker::characterization::build_characterization;
use rr_core::feasibility::searching_feasibility;
use std::hint::black_box;
use std::time::Duration;

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    group.bench_function("single_cell", |b| {
        b.iter(|| black_box(searching_feasibility(black_box(23), black_box(9))));
    });
    for max_n in [16usize, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("claims_table", max_n),
            &max_n,
            |b, &max_n| {
                b.iter(|| black_box(build_characterization(3..=max_n, false, 0).len()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    targets = bench_characterization
}
criterion_main!(benches);
