//! E13 (micro): round leaping vs stepping on the gathering endgame.
//!
//! Two groups:
//!
//! * `engine_leap` — the full gathering endgame (a multiplicity of `k-1`
//!   robots plus one walker half a ring away) run to completion under the
//!   fully synchronous scheduler, in `StepPath::Leap` vs
//!   `StepPath::StepBaseline` mode.  The leap mode collapses the whole
//!   approach into O(k) work; the baseline pays one full round per walker
//!   move.
//! * `leap_plan` — the certificate computation alone: one
//!   `Protocol::leap_plan` call on a reused plan buffer (the O(k) analysis
//!   the Leap mode performs per configuration change).
//!
//! The binary counterpart with verified equivalence and JSON records is
//! `exp_throughput` (its E13 section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_corda::scheduler::FullySynchronousScheduler;
use rr_corda::{
    Engine, EngineOptions, LeapPlan, LookPath, MultiplicityCapability, Protocol, StepPath,
    TraceMode, ViewOrder,
};
use rr_core::gathering::GatheringProtocol;
use rr_ring::{Configuration, Direction, Ring};
use std::hint::black_box;

const CELLS: &[(usize, usize)] = &[(256, 8), (1024, 16), (4096, 16)];

fn endgame(n: usize, k: usize) -> Configuration {
    let mut counts = vec![0u32; n];
    counts[0] = u32::try_from(k - 1).expect("k fits u32");
    counts[n / 2] = 1;
    Configuration::from_counts(Ring::new(n), counts).expect("valid endgame")
}

fn options(path: StepPath) -> EngineOptions {
    EngineOptions {
        capability: MultiplicityCapability::Local,
        enforce_exclusivity: false,
        trace: TraceMode::Disabled,
        view_order: ViewOrder::CwFirst,
        look_path: LookPath::Incremental,
        step_path: path,
    }
}

/// One full endgame run per iteration on a recycled engine: reset to the
/// start, run until gathered.
fn bench_endgame_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_leap");
    for &(n, k) in CELLS {
        for (label, path) in [
            ("gather_leap", StepPath::Leap),
            ("gather_step_baseline", StepPath::StepBaseline),
        ] {
            let start = endgame(n, k);
            let mut engine = Engine::new(GatheringProtocol, start.clone(), options(path))
                .expect("valid endgame");
            let budget = (n as u64) * 4;
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_k{k}")),
                &(),
                move |b, ()| {
                    b.iter(|| {
                        engine
                            .reset(GatheringProtocol, &start, options(path))
                            .expect("reset endgame");
                        let report =
                            engine.run_until(&mut FullySynchronousScheduler, budget, |e| {
                                e.configuration().is_gathered()
                            });
                        black_box(report.steps)
                    })
                },
            );
        }
    }
    group.finish();
}

/// One certificate computation per iteration, on a reused plan buffer.
fn bench_leap_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("leap_plan");
    for &(n, k) in CELLS {
        let config = endgame(n, k);
        let mut plan = LeapPlan::default();
        group.bench_with_input(
            BenchmarkId::new("gathering_endgame", format!("n{n}_k{k}")),
            &config,
            move |b, cfg| {
                b.iter(|| {
                    black_box(GatheringProtocol.leap_plan(
                        black_box(cfg),
                        Direction::Cw,
                        MultiplicityCapability::Local,
                        &mut plan,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_endgame_runs, bench_leap_plan);
criterion_main!(benches);
