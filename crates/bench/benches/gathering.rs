//! E6 (Theorem 8): gathering — complete runs to a single multiplicity under
//! the round-robin and asynchronous schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_corda::scheduler::{AsynchronousScheduler, RoundRobinScheduler};
use rr_core::gathering::run_gathering;
use std::hint::black_box;
use std::time::Duration;

fn bench_gathering(c: &mut Criterion) {
    let mut group = c.benchmark_group("gathering");
    for &(n, k) in &[(12usize, 5usize), (20, 9), (32, 13), (48, 9)] {
        let start = rigid_start(n, k);
        group.bench_with_input(
            BenchmarkId::new("round_robin", format!("n{n}_k{k}")),
            &start,
            |b, s| {
                b.iter(|| {
                    let mut sched = RoundRobinScheduler::new();
                    let stats = run_gathering(s, &mut sched, 10_000_000).expect("runs");
                    assert!(stats.gathered);
                    black_box(stats.moves)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("asynchronous", format!("n{n}_k{k}")),
            &start,
            |b, s| {
                b.iter(|| {
                    let mut sched = AsynchronousScheduler::seeded(3);
                    let stats = run_gathering(s, &mut sched, 20_000_000).expect("runs");
                    assert!(stats.gathered);
                    black_box(stats.moves)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_gathering
}
criterion_main!(benches);
