//! E2: exhaustive configuration enumeration and configuration-graph
//! construction (Figures 4–9 of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::THEOREM5_CASES;
use rr_checker::enumeration::configuration_graph;
use rr_ring::enumerate::{count_configurations, enumerate_rigid_configurations};
use std::hint::black_box;
use std::time::Duration;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    for &(k, n) in THEOREM5_CASES {
        group.bench_with_input(
            BenchmarkId::new("count_configurations", format!("k{k}_n{n}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| black_box(count_configurations(n, k))),
        );
        group.bench_with_input(
            BenchmarkId::new("configuration_graph", format!("k{k}_n{n}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| black_box(configuration_graph(n, k))),
        );
    }
    group.bench_function("rigid_enumeration/n14_k6", |b| {
        b.iter(|| black_box(enumerate_rigid_configurations(14, 6).len()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_enumeration
}
criterion_main!(benches);
