//! E7 (Theorems 2–5): structural impossibility predicates, the adversarial
//! demonstration against the two-robot baseline, and the exhaustive
//! protocol-synthesis search for the smallest cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_checker::game::exhaustive_impossibility;
use rr_checker::impossibility::demonstrate_two_robot_failure;
use std::hint::black_box;
use std::time::Duration;

fn bench_impossibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("impossibility");
    group.bench_function("two_robot_adversary/n10", |b| {
        b.iter(|| black_box(demonstrate_two_robot_failure(10, 100)));
    });
    for &(n, k) in &[(5usize, 2usize), (7, 2), (5, 3)] {
        group.bench_with_input(
            BenchmarkId::new("exhaustive_search", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| black_box(exhaustive_impossibility(n, k, 1_000_000).expect("fits")));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_impossibility
}
criterion_main!(benches);
