//! E12 (micro): the CORDA stepping pipeline and its Look hot path.
//!
//! Two groups:
//!
//! * `engine_throughput` — scheduler-driven `Engine::step` loops on the
//!   incremental O(k) Look pipeline vs the `LookPath::ScanBaseline`
//!   pre-incremental O(n) pipeline, across ring/team sizes (the criterion
//!   counterpart of the `exp_throughput` binary);
//! * `look_pipeline` — the snapshot capture alone: `capture_into` on a
//!   reused scratch snapshot (zero-allocation path) vs the allocating
//!   `capture` wrapper vs the O(n)-walk `capture_scan` reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::scheduler::RoundRobinScheduler;
use rr_corda::{
    Engine, EngineOptions, LookPath, MultiplicityCapability, Snapshot, StepPath, TraceMode,
    ViewOrder,
};
use rr_ring::Direction;
use std::hint::black_box;

const CELLS: &[(usize, usize)] = &[(16, 4), (64, 8), (256, 8), (1024, 16)];

fn workload_options(path: LookPath) -> EngineOptions {
    EngineOptions {
        capability: MultiplicityCapability::None,
        enforce_exclusivity: false,
        trace: TraceMode::Disabled,
        view_order: ViewOrder::CwFirst,
        look_path: path,
        step_path: StepPath::StepBaseline,
    }
}

/// 256 scheduler steps per iteration on a long-lived engine (the
/// configuration keeps evolving; the per-step cost is stationary).
fn bench_engine_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for &(n, k) in CELLS {
        for (label, path) in [
            ("steps_incremental", LookPath::Incremental),
            ("steps_scan_baseline", LookPath::ScanBaseline),
        ] {
            let mut engine =
                Engine::new(GreedyGapWalker, rigid_start(n, k), workload_options(path))
                    .expect("valid workload");
            let mut scheduler = RoundRobinScheduler::new();
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_k{k}")),
                &(),
                move |b, ()| b.iter(|| black_box(engine.run_until(&mut scheduler, 256, |_| false))),
            );
        }
    }
    group.finish();
}

/// One snapshot capture per iteration, at a fixed node of a fixed
/// configuration: the pure Look-phase cost.
fn bench_look_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("look_pipeline");
    for &(n, k) in CELLS {
        let config = rigid_start(n, k);
        let node = config.occupied_anchor();
        let mut scratch = Snapshot::empty();
        group.bench_with_input(
            BenchmarkId::new("capture_into", format!("n{n}_k{k}")),
            &config,
            move |b, cfg| {
                b.iter(|| {
                    scratch.capture_into(
                        black_box(cfg),
                        node,
                        MultiplicityCapability::None,
                        Direction::Cw,
                    );
                    black_box(scratch.views[0].len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("capture_alloc", format!("n{n}_k{k}")),
            &config,
            move |b, cfg| {
                b.iter(|| {
                    black_box(Snapshot::capture(
                        black_box(cfg),
                        node,
                        MultiplicityCapability::None,
                        Direction::Cw,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("capture_scan", format!("n{n}_k{k}")),
            &config,
            move |b, cfg| {
                b.iter(|| {
                    black_box(Snapshot::capture_scan(
                        black_box(cfg),
                        node,
                        MultiplicityCapability::None,
                        Direction::Cw,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_steps, bench_look_pipeline);
criterion_main!(benches);
