//! E5 (Theorem 7): NminusThree — cost of reaching the final configurations
//! and of three full clearings with `k = n - 3` robots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::rigid_start;
use rr_corda::scheduler::RoundRobinScheduler;
use rr_core::clearing::run_searching;
use rr_core::nminus_three::NminusThreeProtocol;
use std::hint::black_box;
use std::time::Duration;

fn bench_nminus_three(c: &mut Criterion) {
    let mut group = c.benchmark_group("nminus_three");
    for &n in &[10usize, 14, 20, 32] {
        let k = n - 3;
        let start = rigid_start(n, k);
        group.bench_with_input(
            BenchmarkId::new("three_clearings", format!("n{n}_k{k}")),
            &start,
            |b, s| {
                b.iter(|| {
                    let mut sched = RoundRobinScheduler::new();
                    let stats =
                        run_searching(NminusThreeProtocol::new(), s, &mut sched, 3, 0, 10_000_000)
                            .expect("runs");
                    assert!(stats.clearings >= 3);
                    black_box(stats.moves)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_nminus_three
}
criterion_main!(benches);
