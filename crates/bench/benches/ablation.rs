//! E9: ablations — Align with and without its symmetry guards, and the same
//! task under different scheduler models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rr_bench::spread_out_rigid_start;
use rr_corda::scheduler::{
    FullySynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
};
use rr_corda::{Engine, Scheduler};
use rr_core::align::{run_to_c_star, AlignProtocol};
use rr_core::baselines::NaiveAligner;
use rr_core::clearing::{run_searching, RingClearingProtocol};
use std::hint::black_box;
use std::time::Duration;

fn naive_aligner_moves_until_stuck(n: usize, k: usize, cap: u64) -> u64 {
    let start = spread_out_rigid_start(n, k);
    let mut sim = Engine::with_default_options(NaiveAligner, start).expect("valid");
    let mut sched = RoundRobinScheduler::new();
    let mut idle_streak = 0u64;
    while idle_streak < (k as u64) && sim.move_count() < cap {
        let step = sched.next(&sim.scheduler_view());
        match sim.step(&step, &mut ()) {
            Ok(report) if !report.moved() => idle_streak += 1,
            Ok(_) => idle_streak = 0,
            Err(_) => break,
        }
    }
    sim.move_count()
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    // Guarded Align vs the unguarded variant (which stalls or collides).
    group.bench_function("align_guarded/n16_k7", |b| {
        b.iter(|| {
            let start = spread_out_rigid_start(16, 7);
            let mut sched = RoundRobinScheduler::new();
            black_box(run_to_c_star(&start, &mut sched, 10_000_000).expect("converges"))
        });
    });
    group.bench_function("align_naive_until_stuck/n16_k7", |b| {
        b.iter(|| black_box(naive_aligner_moves_until_stuck(16, 7, 100_000)));
    });
    // Scheduler-model ablation on Ring Clearing.
    let start = spread_out_rigid_start(14, 6);
    group.bench_with_input(
        BenchmarkId::new("clearing_scheduler", "round_robin"),
        &start,
        |b, s| {
            b.iter(|| {
                let mut sched = RoundRobinScheduler::new();
                black_box(
                    run_searching(RingClearingProtocol::new(), s, &mut sched, 2, 0, 10_000_000)
                        .unwrap()
                        .moves,
                )
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("clearing_scheduler", "fsync"),
        &start,
        |b, s| {
            b.iter(|| {
                let mut sched = FullySynchronousScheduler;
                black_box(
                    run_searching(RingClearingProtocol::new(), s, &mut sched, 2, 0, 10_000_000)
                        .unwrap()
                        .moves,
                )
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("clearing_scheduler", "ssync"),
        &start,
        |b, s| {
            b.iter(|| {
                let mut sched = SemiSynchronousScheduler::seeded(11);
                black_box(
                    run_searching(RingClearingProtocol::new(), s, &mut sched, 2, 0, 10_000_000)
                        .unwrap()
                        .moves,
                )
            });
        },
    );
    let _ = AlignProtocol::new();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_ablation
}
criterion_main!(benches);
