//! The append-only `rr-sweep/v1` result ledger.
//!
//! A ledger is one JSONL file per sweep job:
//!
//! ```text
//! {"schema":"rr-sweep/v1",...,"grid":"<hex>","cells":N}   header (grid-bound)
//! {"experiment":...,"ok":true,...}                        record 0
//! {"experiment":...,"ok":true,...}                        record 1
//! ...
//! {"complete":true,"cells":N,"failures":F}                footer
//! ```
//!
//! A grid ledger's header is **bound to the grid's content**: alongside the
//! schema/engine preamble it carries the grid's content-address in hex and
//! its declared cell count (see
//! [`GridSpec::header`](crate::grid::GridSpec::header)).  Resume and cache
//! validation compare header lines byte-for-byte, so two grids that merely
//! share an experiment id and root seed can never be conflated.
//!
//! * **Append-only** — records are written in cell declaration order and
//!   never rewritten; a [`Ledger`] buffers out-of-order completions from
//!   sharded execution and flushes the contiguous prefix, so the bytes on
//!   disk are independent of the execution mode.
//! * **Durable per record batch** — every flush of a contiguous batch ends
//!   in `fsync`; after a crash, everything up to the last fsync'd record is
//!   intact and anything beyond it is at most one torn line.
//! * **Resumable** — [`Ledger::open_or_create`] scans an existing file,
//!   drops a torn tail (truncating back to the last complete line), counts
//!   the durable records and resumes appending at the next cell.  Because
//!   per-cell seeds derive from the root seed and cell coordinates alone, a
//!   resumed ledger is **byte-identical** to an uninterrupted one — the
//!   property `crates/bench/tests/ledger_resume.rs` proves by truncating at
//!   arbitrary record boundaries.
//!
//! The footer is scanning metadata, not a record: its presence marks the
//! ledger complete (the condition for entering the result cache) and its
//! counters let `status`-style consumers answer "done? any failures?"
//! without parsing record JSON.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::sweep::SweepHeader;

/// Every footer line starts with these bytes (no record line can: record
/// objects open with their `experiment` field).
pub const FOOTER_PREFIX: &str = "{\"complete\":true,";

/// Renders the footer line for a completed ledger (no trailing newline).
#[must_use]
pub fn footer_line(cells: u64, failures: u64) -> String {
    format!("{{\"complete\":true,\"cells\":{cells},\"failures\":{failures}}}")
}

/// Parses a [`footer_line`] back into `(cells, failures)`.
#[must_use]
pub fn parse_footer(line: &str) -> Option<(u64, u64)> {
    let rest = line.strip_prefix(FOOTER_PREFIX)?;
    let rest = rest.strip_prefix("\"cells\":")?;
    let comma = rest.find(',')?;
    let cells = rest[..comma].parse().ok()?;
    let rest = rest[comma + 1..].strip_prefix("\"failures\":")?;
    let failures = rest.strip_suffix('}')?.parse().ok()?;
    Some((cells, failures))
}

/// Whether a durable record line reports a failed cell.
///
/// This is a *reliable* byte-level test, not a heuristic: the serializer
/// escapes every `"` inside string values as `\"`, so the unescaped byte
/// sequence `"ok":false` can only occur as the actual `ok` field.
#[must_use]
pub fn line_is_failure(line: &str) -> bool {
    line.contains("\"ok\":false")
}

/// What a scan of an on-disk ledger found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LedgerScan {
    /// The header line (without newline), when a complete one is present.
    pub header: Option<String>,
    /// Number of durable (newline-terminated) record lines.
    pub records: usize,
    /// Durable records with `"ok":false`.
    pub failures: u64,
    /// Byte length of the durable prefix: header + records (+ footer), i.e.
    /// the truncation point that discards a torn tail.
    pub durable_bytes: u64,
    /// The footer's `(cells, failures)` when the ledger is complete.
    pub footer: Option<(u64, u64)>,
}

impl LedgerScan {
    /// Whether the ledger carries a completion footer.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.footer.is_some()
    }
}

/// Scans a ledger file without modifying it.  A missing file scans as empty.
///
/// # Errors
///
/// Propagates I/O errors other than `NotFound`.
pub fn scan(path: &Path) -> io::Result<LedgerScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LedgerScan::default()),
        Err(e) => return Err(e),
    };
    let mut out = LedgerScan::default();
    let mut offset = 0u64;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        if line.last() != Some(&b'\n') {
            break; // torn tail: not durable
        }
        // A non-UTF-8 line means external corruption; treat it and
        // everything after it as not durable.
        let Ok(body) = std::str::from_utf8(&line[..line.len() - 1]) else {
            break;
        };
        if out.header.is_none() {
            out.header = Some(body.to_string());
        } else if let Some(footer) = parse_footer(body) {
            out.footer = Some(footer);
            offset += line.len() as u64;
            break; // nothing legal follows the footer
        } else {
            out.records += 1;
            if line_is_failure(body) {
                out.failures += 1;
            }
        }
        offset += line.len() as u64;
    }
    out.durable_bytes = offset;
    Ok(out)
}

/// The state [`Ledger::open_or_create`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerResume {
    /// The ledger did not exist (or held an incompatible header and was
    /// restarted from scratch).
    Fresh,
    /// `records` durable records were found; appending resumes at that cell.
    Partial {
        /// Durable records already present.
        records: usize,
    },
    /// The ledger carries its completion footer; nothing may be appended.
    Complete {
        /// The footer's cell count.
        cells: u64,
        /// The footer's failure count.
        failures: u64,
    },
}

/// An open, writable sweep ledger.
///
/// I/O errors during appends are surfaced by [`Ledger::append`]; the writer
/// never buffers a record as "written" before its bytes and an `fsync` have
/// succeeded.
#[derive(Debug)]
pub struct Ledger {
    file: File,
    path: PathBuf,
    /// Out-of-order completions waiting for their predecessors.
    pending: BTreeMap<usize, String>,
    /// The next cell index to hit the disk.
    next_cell: usize,
    failures: u64,
    complete: bool,
}

impl Ledger {
    /// Creates a fresh ledger at `path` (truncating any existing file),
    /// writing and fsyncing the header line.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn create(path: &Path, header: &SweepHeader) -> io::Result<Ledger> {
        let mut file = File::create(path)?;
        file.write_all(header.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Ledger {
            file,
            path: path.to_path_buf(),
            pending: BTreeMap::new(),
            next_cell: 0,
            failures: 0,
            complete: false,
        })
    }

    /// Opens `path` for resumption, creating it when absent.
    ///
    /// An existing file is scanned: a torn tail is truncated away, and the
    /// header must byte-match `header` — a mismatch (schema or engine
    /// version drift, a different experiment's ledger at this path, or a
    /// different *grid shape* when the header carries its grid binding) is
    /// **not** resumable, and the ledger restarts from scratch, because
    /// records produced by a different engine version or a different grid
    /// must never be mixed into one ledger.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_or_create(path: &Path, header: &SweepHeader) -> io::Result<(Ledger, LedgerResume)> {
        let found = scan(path)?;
        if found.header.as_deref() != Some(header.to_json_line().as_str()) {
            return Ok((Ledger::create(path, header)?, LedgerResume::Fresh));
        }
        if let Some((cells, failures)) = found.footer {
            let file = OpenOptions::new().read(true).open(path)?;
            return Ok((
                Ledger {
                    file,
                    path: path.to_path_buf(),
                    pending: BTreeMap::new(),
                    next_cell: found.records,
                    failures: found.failures,
                    complete: true,
                },
                LedgerResume::Complete { cells, failures },
            ));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(found.durable_bytes)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok((
            Ledger {
                file,
                path: path.to_path_buf(),
                pending: BTreeMap::new(),
                next_cell: found.records,
                failures: found.failures,
                complete: false,
            },
            LedgerResume::Partial {
                records: found.records,
            },
        ))
    }

    /// The ledger's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durable records written so far (excluding buffered out-of-order
    /// completions).
    #[must_use]
    pub fn records(&self) -> usize {
        self.next_cell
    }

    /// Durable records with `"ok":false`, including any resumed prefix.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Accepts the record for `cell`, writing and fsyncing the contiguous
    /// batch it completes (records reach the disk strictly in cell order).
    /// Returns the number of records made durable by this call.
    ///
    /// # Errors
    ///
    /// Propagates write errors; the record is not counted as durable.
    ///
    /// # Panics
    ///
    /// Panics when appending to a completed ledger or re-appending a cell —
    /// both are caller logic errors, never data-dependent.
    pub fn append<T: Serialize>(&mut self, cell: usize, record: &T) -> io::Result<usize> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.append_line(cell, line)
    }

    /// [`Ledger::append`] for an already-serialized record line (no trailing
    /// newline).
    ///
    /// # Errors
    /// # Panics
    ///
    /// As for [`Ledger::append`].
    pub fn append_line(&mut self, cell: usize, line: String) -> io::Result<usize> {
        assert!(!self.complete, "append to a completed ledger");
        assert!(
            cell >= self.next_cell && !self.pending.contains_key(&cell),
            "cell {cell} appended twice"
        );
        self.pending.insert(cell, line);
        let mut flushed = 0usize;
        while let Some(line) = self.pending.remove(&self.next_cell) {
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
            if line_is_failure(&line) {
                self.failures += 1;
            }
            self.next_cell += 1;
            flushed += 1;
        }
        if flushed > 0 {
            self.file.sync_data()?;
        }
        Ok(flushed)
    }

    /// Writes and fsyncs the completion footer.  All cells must have been
    /// appended (no buffered out-of-order records may remain).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics when out-of-order records are still buffered.
    pub fn finish(&mut self) -> io::Result<()> {
        assert!(
            self.pending.is_empty(),
            "finish with {} records still buffered",
            self.pending.len()
        );
        if self.complete {
            return Ok(());
        }
        let footer = footer_line(self.next_cell as u64, self.failures);
        self.file.write_all(footer.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        self.complete = true;
        Ok(())
    }
}

/// Reads the complete lines appended to `path` since byte `offset`,
/// returning them with the new durable offset — the incremental read the
/// `rr-sweep tail` client loops on.  A torn tail is left for the next call.
///
/// # Errors
///
/// Propagates I/O errors; a missing file reads as no new lines.
pub fn read_new_lines(path: &Path, offset: u64) -> io::Result<(Vec<String>, u64)> {
    let mut file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), offset)),
        Err(e) => return Err(e),
    };
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let mut lines = Vec::new();
    let mut consumed = 0u64;
    for line in buf.split_inclusive(|&b| b == b'\n') {
        if line.last() != Some(&b'\n') {
            break;
        }
        let Ok(body) = std::str::from_utf8(&line[..line.len() - 1]) else {
            break;
        };
        lines.push(body.to_string());
        consumed += line.len() as u64;
    }
    Ok((lines, offset + consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rr-ledger-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[derive(Serialize)]
    struct Rec {
        experiment: String,
        cell: usize,
        ok: bool,
    }

    fn rec(cell: usize, ok: bool) -> Rec {
        Rec {
            experiment: "T".into(),
            cell,
            ok,
        }
    }

    #[test]
    fn footer_roundtrip() {
        assert_eq!(parse_footer(&footer_line(12, 3)), Some((12, 3)));
        assert_eq!(
            parse_footer("{\"complete\":true,\"cells\":0,\"failures\":0}"),
            Some((0, 0))
        );
        assert_eq!(parse_footer("{\"experiment\":\"E6\"}"), None);
    }

    #[test]
    fn out_of_order_appends_land_in_cell_order_and_scan_back() {
        let path = tmp("ooo.jsonl");
        let header = SweepHeader::new("T", 7);
        let mut ledger = Ledger::create(&path, &header).unwrap();
        assert_eq!(ledger.append(2, &rec(2, false)).unwrap(), 0);
        assert_eq!(ledger.append(0, &rec(0, true)).unwrap(), 1);
        assert_eq!(ledger.append(1, &rec(1, true)).unwrap(), 2);
        ledger.finish().unwrap();

        let found = scan(&path).unwrap();
        assert_eq!(
            found.header.as_deref(),
            Some(header.to_json_line().as_str())
        );
        assert_eq!(found.records, 3);
        assert_eq!(found.failures, 1);
        assert_eq!(found.footer, Some((3, 1)));
        let text = std::fs::read_to_string(&path).unwrap();
        let cells: Vec<&str> = text.lines().skip(1).take(3).collect();
        assert!(cells[0].contains("\"cell\":0"));
        assert!(cells[1].contains("\"cell\":1"));
        assert!(cells[2].contains("\"cell\":2"));
    }

    #[test]
    fn torn_tail_is_truncated_on_resume() {
        let path = tmp("torn.jsonl");
        let header = SweepHeader::new("T", 7);
        let mut ledger = Ledger::create(&path, &header).unwrap();
        ledger.append(0, &rec(0, true)).unwrap();
        ledger.append(1, &rec(1, true)).unwrap();
        drop(ledger);
        let full = std::fs::read(&path).unwrap();
        // Tear mid-line: keep record 0 plus half of record 1.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (mut ledger, resume) = Ledger::open_or_create(&path, &header).unwrap();
        assert_eq!(resume, LedgerResume::Partial { records: 1 });
        ledger.append(1, &rec(1, true)).unwrap();
        ledger.finish().unwrap();
        let reread = std::fs::read(&path).unwrap();
        let mut expected = full;
        expected.extend_from_slice(footer_line(2, 0).as_bytes());
        expected.push(b'\n');
        assert_eq!(reread, expected);
    }

    #[test]
    fn header_mismatch_restarts_the_ledger() {
        let path = tmp("mismatch.jsonl");
        let mut ledger = Ledger::create(&path, &SweepHeader::new("OLD", 7)).unwrap();
        ledger.append(0, &rec(0, true)).unwrap();
        drop(ledger);
        let header = SweepHeader::new("NEW", 7);
        let (_, resume) = Ledger::open_or_create(&path, &header).unwrap();
        assert_eq!(resume, LedgerResume::Fresh);
        let found = scan(&path).unwrap();
        assert_eq!(found.records, 0);
        assert_eq!(
            found.header.as_deref(),
            Some(header.to_json_line().as_str())
        );
    }

    #[test]
    fn complete_ledger_resumes_as_complete() {
        let path = tmp("complete.jsonl");
        let header = SweepHeader::new("T", 7);
        let mut ledger = Ledger::create(&path, &header).unwrap();
        ledger.append(0, &rec(0, true)).unwrap();
        ledger.finish().unwrap();
        let (_, resume) = Ledger::open_or_create(&path, &header).unwrap();
        assert_eq!(
            resume,
            LedgerResume::Complete {
                cells: 1,
                failures: 0
            }
        );
    }

    #[test]
    fn read_new_lines_streams_incrementally() {
        let path = tmp("tail.jsonl");
        let header = SweepHeader::new("T", 7);
        let mut ledger = Ledger::create(&path, &header).unwrap();
        let (lines, offset) = read_new_lines(&path, 0).unwrap();
        assert_eq!(lines.len(), 1); // header
        ledger.append(0, &rec(0, true)).unwrap();
        let (lines, offset) = read_new_lines(&path, offset).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"cell\":0"));
        let (lines, _) = read_new_lines(&path, offset).unwrap();
        assert!(lines.is_empty());
    }
}
