//! Experiment E5 (Theorem 7): NminusThree — phase-1 length and the three-move
//! clearing cycle with `k = n - 3` robots.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_nminus_three
//! ```

use rayon::prelude::*;
use rr_bench::{rigid_start, NMINUS3_RINGS};
use rr_corda::scheduler::RoundRobinScheduler;
use rr_core::driver::{run_dispatched, TaskTargets};
use rr_core::unified::Task;

fn main() {
    println!("# E5 — NminusThree (k = n-3): clearings and steady period");
    println!(
        "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
        "n", "k", "clearings", "steady period", "exploration", "moves"
    );
    let rows: Vec<_> = NMINUS3_RINGS
        .par_iter()
        .map(|&n| {
            let k = n - 3;
            let start = rigid_start(n, k);
            let mut s = RoundRobinScheduler::new();
            let stats = run_dispatched(
                Task::GraphSearching,
                &start,
                &mut s,
                TaskTargets::demonstrate(20, 1),
                60_000 * n as u64,
            )
            .expect("run succeeds")
            .searching()
            .expect("searching stats");
            (n, k, stats)
        })
        .collect();
    for (n, k, stats) in rows {
        let steady = stats
            .clearing_intervals
            .iter()
            .skip(1)
            .copied()
            .max()
            .unwrap_or(0);
        println!(
            "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
            n, k, stats.clearings, steady, stats.min_exploration_completions, stats.moves
        );
    }
    println!();
    println!("# shape check: in the steady state the ring is cleared every 3 moves (the R2.1 ->");
    println!("# R2.2 -> R2.3 cycle of Section 4.4), independently of n.");
}
