//! Experiment E5 (Theorem 7): NminusThree — phase-1 length and the three-move
//! clearing cycle with `k = n - 3` robots.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_nminus_three -- [--quick] [--json <path>] [--seed <u64>] [--sequential]
//! ```

use rr_bench::sweep::{ExpArgs, Sweep};
use rr_bench::NMINUS3_RINGS;
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn main() {
    let args = ExpArgs::parse(0xE5);
    let rings: Vec<usize> = if args.quick {
        NMINUS3_RINGS.iter().copied().filter(|&n| n <= 16).collect()
    } else {
        NMINUS3_RINGS.to_vec()
    };
    let sweep = Sweep {
        experiment: "E5",
        task: Task::GraphSearching,
        instances: rings.iter().map(|&n| (n, n - 3)).collect(),
        schedulers: vec![SchedulerKind::RoundRobin],
        seeds_per_cell: 1,
        root_seed: args.root_seed,
        targets: TaskTargets::demonstrate(20, 1),
        budget_per_n: 60_000,
        budget_flat: 0,
        async_budget_factor: 2,
    };
    let records = sweep.run(args.mode());

    println!("# E5 — NminusThree (k = n-3): clearings and steady period");
    println!(
        "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
        "n", "k", "clearings", "steady period", "exploration", "moves"
    );
    for r in &records {
        println!(
            "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
            r.n, r.k, r.clearings, r.steady_period, r.explorations, r.moves
        );
    }
    println!();
    println!("# shape check: in the steady state the ring is cleared every 3 moves (the R2.1 ->");
    println!("# R2.2 -> R2.3 cycle of Section 4.4), independently of n.");

    args.write_json("E5", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E5", failures, records.len());
}
