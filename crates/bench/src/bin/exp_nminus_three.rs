//! Experiment E5 (Theorem 7): NminusThree — phase-1 length and the three-move
//! clearing cycle with `k = n - 3` robots.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_nminus_three -- [--quick] [--json <path>] [--seed <u64>] [--sequential] [--ledger <path>] [--cache <dir>]
//! ```

use rr_bench::grid::preset;
use rr_bench::sweep::ExpArgs;

fn main() {
    let args = ExpArgs::parse(0xE5);
    let spec = preset("nminus3", args.quick, Some(args.root_seed)).expect("builtin preset");
    let run = args.run_grid(&spec);

    println!("# E5 — NminusThree (k = n-3): clearings and steady period");
    if let Some(records) = run.records.sweep().filter(|r| !r.is_empty()) {
        println!(
            "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
            "n", "k", "clearings", "steady period", "exploration", "moves"
        );
        for r in records {
            println!(
                "{:>4} {:>4} {:>10} {:>14} {:>12} {:>10}",
                r.n, r.k, r.clearings, r.steady_period, r.explorations, r.moves
            );
        }
        println!();
        println!(
            "# shape check: in the steady state the ring is cleared every 3 moves (the R2.1 ->"
        );
        println!("# R2.2 -> R2.3 cycle of Section 4.4), independently of n.");
    }

    args.finish_grid(&spec, &run);
}
