//! Experiment E1: regenerate the feasibility characterization of exclusive
//! perpetual graph searching (the paper's headline contribution summary) and
//! cross-validate every solvable cell by simulation.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_characterization -- \
//!     [--quick] [--json <path>] [--seed <u64>] [--max-n 24] [--no-validate]
//! ```

use rr_bench::sweep::ExpArgs;
use rr_checker::characterization::{build_characterization, render_table, CellStatus};

fn main() {
    let args = ExpArgs::parse(17);
    let validate = !args.flag("--no-validate");
    let max_n: usize = args
        .value("--max-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if args.quick { 12 } else { 20 });

    println!("# E1 — characterization of exclusive perpetual graph searching (3 <= n <= {max_n})");
    println!(
        "# validation: {}",
        if validate {
            "every solvable cell simulated under 3 schedulers"
        } else {
            "claims only"
        }
    );
    let cells = build_characterization(3..=max_n, validate, args.root_seed);
    println!("{}", render_table(&cells));

    let mut solvable = 0usize;
    let mut validated = 0usize;
    let mut failed: Vec<(usize, usize)> = Vec::new();
    let mut impossible = 0usize;
    let mut open = 0usize;
    for cell in &cells {
        match &cell.status {
            CellStatus::Solvable { validated: v, .. } => {
                solvable += 1;
                match v {
                    Some(true) | None => validated += 1,
                    Some(false) => failed.push((cell.n, cell.k)),
                }
            }
            CellStatus::Impossible { .. } => impossible += 1,
            CellStatus::Open => open += 1,
            CellStatus::OutOfModel => {}
        }
    }
    println!("solvable cells   : {solvable} ({validated} validated)");
    println!("impossible cells : {impossible}");
    println!("open cells       : {open}");
    if failed.is_empty() {
        println!("validation failures: none");
    } else {
        println!("validation failures: {failed:?}");
    }

    args.write_json("E1", &cells);
    if validate {
        rr_bench::sweep::exit_if_failed("E1", failed.len(), solvable);
    } else {
        println!("# E1: claims only — nothing was verified (--no-validate)");
    }
}
