//! Experiment E6 (Theorem 8): gathering — moves to gather under three
//! scheduler models across ring sizes and team sizes.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_gathering -- [--quick] [--json <path>] [--seed <u64>] [--sequential]
//! ```

use rr_bench::sweep::{ExpArgs, Sweep};
use rr_bench::GATHERING_INSTANCES;
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn main() {
    let args = ExpArgs::parse(0xE6);
    let instances: Vec<(usize, usize)> = if args.quick {
        GATHERING_INSTANCES
            .iter()
            .copied()
            .filter(|&(n, _)| n <= 16)
            .collect()
    } else {
        GATHERING_INSTANCES.to_vec()
    };
    let sweep = Sweep {
        experiment: "E6",
        task: Task::Gathering,
        instances,
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed: args.root_seed,
        targets: TaskTargets::open_ended(),
        budget_per_n: 100_000,
        budget_flat: 0,
        async_budget_factor: 2,
    };
    let records = sweep.run(args.mode());

    println!("# E6 — Gathering with local multiplicity detection (2 < k < n-2)");
    println!(
        "{:>4} {:>4} {:>16} {:>16} {:>16}",
        "n", "k", "rr moves", "ssync moves", "async moves"
    );
    for row in records.chunks(SchedulerKind::ALL.len()) {
        let fmt = |r: &rr_bench::sweep::RunRecord| {
            if r.ok {
                r.moves.to_string()
            } else {
                "FAILED".to_string()
            }
        };
        println!(
            "{:>4} {:>4} {:>16} {:>16} {:>16}",
            row[0].n,
            row[0].k,
            fmt(&row[0]),
            fmt(&row[1]),
            fmt(&row[2])
        );
    }
    println!();
    println!("# shape check: the move count is dominated by the Align phase plus roughly one");
    println!("# move per robot for the contraction, and is identical in order of magnitude");
    println!("# across schedulers (the adversary cannot inflate the number of moves, only the");
    println!("# number of activations).");

    args.write_json("E6", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E6", failures, records.len());
}
