//! Experiment E6 (Theorem 8): gathering — moves to gather under three
//! scheduler models across ring sizes and team sizes.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_gathering
//! ```

use rayon::prelude::*;
use rr_bench::{rigid_start, GATHERING_INSTANCES};
use rr_corda::scheduler::{AsynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler};
use rr_core::driver::{run_dispatched, TaskTargets};
use rr_core::unified::Task;

fn main() {
    println!("# E6 — Gathering with local multiplicity detection (2 < k < n-2)");
    println!(
        "{:>4} {:>4} {:>16} {:>16} {:>16}",
        "n", "k", "rr moves", "ssync moves", "async moves"
    );
    let rows: Vec<_> = GATHERING_INSTANCES
        .par_iter()
        .map(|&(n, k)| {
            let start = rigid_start(n, k);
            let budget = 100_000 * n as u64;
            let gather = |s: &mut dyn rr_corda::Scheduler, budget: u64| {
                run_dispatched(
                    Task::Gathering,
                    &start,
                    s,
                    TaskTargets::open_ended(),
                    budget,
                )
                .expect("runs")
                .gathering()
                .expect("gathering stats")
            };
            let a = gather(&mut RoundRobinScheduler::new(), budget);
            let b = gather(&mut SemiSynchronousScheduler::seeded(5), budget);
            let c = gather(&mut AsynchronousScheduler::seeded(5), 2 * budget);
            (n, k, a, b, c)
        })
        .collect();
    for (n, k, a, b, c) in rows {
        let fmt = |s: &rr_core::gathering::GatheringRunStats| {
            if s.gathered {
                s.moves.to_string()
            } else {
                "FAILED".to_string()
            }
        };
        println!(
            "{:>4} {:>4} {:>16} {:>16} {:>16}",
            n,
            k,
            fmt(&a),
            fmt(&b),
            fmt(&c)
        );
    }
    println!();
    println!("# shape check: the move count is dominated by the Align phase plus roughly one");
    println!("# move per robot for the contraction, and is identical in order of magnitude");
    println!("# across schedulers (the adversary cannot inflate the number of moves, only the");
    println!("# number of activations).");
}
