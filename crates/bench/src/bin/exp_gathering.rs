//! Experiment E6 (Theorem 8): gathering — moves to gather under three
//! scheduler models across ring sizes and team sizes.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_gathering -- [--quick] [--json <path>] [--seed <u64>] [--sequential] [--ledger <path>] [--cache <dir>]
//! ```

use rr_bench::grid::preset;
use rr_bench::sweep::ExpArgs;
use rr_corda::SchedulerKind;

fn main() {
    let args = ExpArgs::parse(0xE6);
    let spec = preset("gathering", args.quick, Some(args.root_seed)).expect("builtin preset");
    let run = args.run_grid(&spec);

    println!("# E6 — Gathering with local multiplicity detection (2 < k < n-2)");
    if let Some(records) = run.records.sweep().filter(|r| r.len() == spec.cells()) {
        println!(
            "{:>4} {:>4} {:>16} {:>16} {:>16}",
            "n", "k", "rr moves", "ssync moves", "async moves"
        );
        for row in records.chunks(SchedulerKind::ALL.len()) {
            let fmt = |r: &rr_bench::sweep::RunRecord| {
                if r.ok {
                    r.moves.to_string()
                } else {
                    "FAILED".to_string()
                }
            };
            println!(
                "{:>4} {:>4} {:>16} {:>16} {:>16}",
                row[0].n,
                row[0].k,
                fmt(&row[0]),
                fmt(&row[1]),
                fmt(&row[2])
            );
        }
        println!();
        println!("# shape check: the move count is dominated by the Align phase plus roughly one");
        println!("# move per robot for the contraction, and is identical in order of magnitude");
        println!("# across schedulers (the adversary cannot inflate the number of moves, only the");
        println!("# number of activations).");
    }

    args.finish_grid(&spec, &run);
}
