//! Experiment E6 (Theorem 8): gathering — moves to gather under three
//! scheduler models across ring sizes and team sizes.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_gathering
//! ```

use rayon::prelude::*;
use rr_bench::{rigid_start, GATHERING_INSTANCES};
use rr_corda::scheduler::{AsynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler};
use rr_core::gathering::run_gathering;

fn main() {
    println!("# E6 — Gathering with local multiplicity detection (2 < k < n-2)");
    println!(
        "{:>4} {:>4} {:>16} {:>16} {:>16}",
        "n", "k", "rr moves", "ssync moves", "async moves"
    );
    let rows: Vec<_> = GATHERING_INSTANCES
        .par_iter()
        .map(|&(n, k)| {
            let start = rigid_start(n, k);
            let budget = 100_000 * n as u64;
            let mut rr = RoundRobinScheduler::new();
            let a = run_gathering(&start, &mut rr, budget).expect("runs");
            let mut ss = SemiSynchronousScheduler::seeded(5);
            let b = run_gathering(&start, &mut ss, budget).expect("runs");
            let mut asy = AsynchronousScheduler::seeded(5);
            let c = run_gathering(&start, &mut asy, 2 * budget).expect("runs");
            (n, k, a, b, c)
        })
        .collect();
    for (n, k, a, b, c) in rows {
        let fmt = |s: &rr_core::gathering::GatheringRunStats| {
            if s.gathered {
                s.moves.to_string()
            } else {
                "FAILED".to_string()
            }
        };
        println!("{:>4} {:>4} {:>16} {:>16} {:>16}", n, k, fmt(&a), fmt(&b), fmt(&c));
    }
    println!();
    println!("# shape check: the move count is dominated by the Align phase plus roughly one");
    println!("# move per robot for the contraction, and is identical in order of magnitude");
    println!("# across schedulers (the adversary cannot inflate the number of moves, only the");
    println!("# number of activations).");
}
