//! E14 — the fault-adversary degradation table: what survives crashes,
//! corrupted Looks and bounded unfairness.
//!
//! E10 proves the paper's algorithms correct against every *fault-free*
//! schedule.  This experiment re-runs the same exhaustive checker with the
//! fault frontier enabled and asks the degradation questions the paper's
//! model leaves open:
//!
//! * **crash** (`f = 1`): the adversary may crash-stop any one robot at any
//!   step.  Plain gathering is unachievable (the corpse cannot move), so the
//!   cell checks the degraded invariant — *all non-crashed robots gather* —
//!   for every schedule **and** every crash placement.  Alignment cells
//!   check that exclusivity survives (no collision is *caused* by a crash).
//! * **corrupt-look** (one corrupted Snapshot per path): a single Look may
//!   return a snapshot with a phantom or suppressed multiplicity.  Gathering
//!   cells check eventual gathering (a transient lie may cost safety-shaped
//!   detours but not convergence); alignment cells check exclusivity.
//! * **unfair** (budget `B`): the bounded-unfair scheduler starves one
//!   victim for up to `B` steps.  These rows are engine-measured: the run
//!   must still gather within the fair budget plus `c·B` extra steps.
//!
//! A model-checked cell is `ok` when the checker either **proves** the
//! property or **falsifies** it with a minimal counterexample that *replays
//! on the engine with its fault directives honoured* — a verdict without a
//! certificate (state-budget blow-up, non-reproducing trace) fails the cell
//! and the binary exits non-zero, which is what the CI faultcheck-smoke job
//! gates on.
//!
//! ```text
//! exp_faults [--quick] [--json <path>] [--seed <u64>] [--sequential]
//!            [--selftest] [--max-n <usize>] [--max-k <usize>]
//!            [--workers <usize>]
//! ```
//!
//! `--selftest` is the checker-of-the-checker canary: it asserts that an
//! empty fault budget explores byte-identically to the fault-free checker,
//! and that one crash *does* falsify plain gathering with a crash directive
//! that replays.

use std::time::Instant;

use rr_bench::sweep::{exit_if_failed, grid_map, ExpArgs, FaultRecord};
use rr_checker::explore::{
    check_protocol, replay_counterexample, CheckOutcome, ExploreOptions, FaultBudget,
};
use rr_corda::{BoundedUnfairScheduler, InterleavingMode, Protocol};
use rr_core::driver::{run_task, TaskTargets};
use rr_core::invariant::{
    AlignmentInvariant, CrashTolerantGatheringInvariant, EventualGatheringInvariant,
    GatheringInvariant, Invariant,
};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;

/// The fault families of the degradation table, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultRow {
    None,
    Crash,
    CorruptLook,
}

impl FaultRow {
    fn family(self) -> &'static str {
        match self {
            FaultRow::None => "none",
            FaultRow::Crash => "crash",
            FaultRow::CorruptLook => "corrupt-look",
        }
    }

    fn detail(self) -> &'static str {
        match self {
            FaultRow::None => "",
            FaultRow::Crash => "f=1",
            FaultRow::CorruptLook => "looks=1",
        }
    }

    fn budget(self) -> FaultBudget {
        match self {
            FaultRow::None => FaultBudget::none(),
            FaultRow::Crash => FaultBudget::none().with_crashes(1),
            FaultRow::CorruptLook => FaultBudget::none().with_corrupt_looks(1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum CellKind {
    Checked {
        task: CheckTask,
        mode: InterleavingMode,
        fault: FaultRow,
    },
    Unfair {
        n_budget: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckTask {
    Gathering,
    Alignment,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    kind: CellKind,
    n: usize,
    k: usize,
}

/// Whether the paper claims an algorithm for the cell (same predicate as
/// E10's grid: the degradation table only covers claimed cells).
fn claimed(task: CheckTask, n: usize, k: usize) -> bool {
    match task {
        CheckTask::Gathering => protocol_for(Task::Gathering, n, k).is_some(),
        CheckTask::Alignment => k >= 3 && k + 2 < n,
    }
}

/// The degraded property a (task, fault) pair is checked against.
fn property_of(task: CheckTask, fault: FaultRow) -> (&'static str, Box<dyn Invariant>) {
    match (task, fault) {
        (CheckTask::Gathering, FaultRow::None) => (
            "gathering on all schedules",
            Box::new(GatheringInvariant::new()),
        ),
        (CheckTask::Gathering, FaultRow::Crash) => (
            "all non-crashed robots gather",
            Box::new(CrashTolerantGatheringInvariant::new()),
        ),
        (CheckTask::Gathering, FaultRow::CorruptLook) => (
            "eventual gathering despite one corrupted Look",
            Box::new(EventualGatheringInvariant::new()),
        ),
        (CheckTask::Alignment, FaultRow::None) => (
            "alignment on all schedules",
            Box::new(AlignmentInvariant::new()),
        ),
        (CheckTask::Alignment, FaultRow::Crash) => (
            "exclusivity + alignment under one crash",
            Box::new(AlignmentInvariant::new()),
        ),
        (CheckTask::Alignment, FaultRow::CorruptLook) => (
            "exclusivity + alignment under one corrupted Look",
            Box::new(AlignmentInvariant::new()),
        ),
    }
}

/// Exhausts every schedule and fault placement of one cell, demanding a
/// certificate either way: proofs stand on their own, falsifications must
/// replay on the engine with their fault directives honoured.
fn check_faulted_cell<P: Protocol + Clone + Send>(
    protocol: &P,
    invariant: &dyn Invariant,
    cell: &Cell,
    mode: InterleavingMode,
    fault: FaultRow,
    workers: usize,
    record: &mut FaultRecord,
) {
    let initials = enumerate_rigid_configurations(cell.n, cell.k);
    record.initial_classes = initials.len() as u64;
    record.ok = true;
    let options = ExploreOptions::new(mode)
        .with_workers(workers)
        .with_faults(fault.budget());
    for initial in &initials {
        let report = match check_protocol(protocol, initial, invariant, &options) {
            Ok(report) => report,
            Err(e) => {
                record.ok = false;
                record.counterexample = format!("engine rejected the initial state: {e}");
                return;
            }
        };
        record.states += report.states as u64;
        record.edges += report.edges;
        match &report.outcome {
            CheckOutcome::Verified => record.proved += 1,
            CheckOutcome::BudgetExceeded { discovered, .. } => {
                record.ok = false;
                record.counterexample =
                    format!("state budget exceeded from {initial}: {discovered} states");
                return;
            }
            CheckOutcome::Falsified(ce) => {
                record.falsified += 1;
                let replay = match replay_counterexample(protocol, initial, invariant, ce) {
                    Ok(replay) => replay,
                    Err(e) => {
                        record.ok = false;
                        record.replayed = false;
                        record.counterexample = format!("replay from {initial} errored: {e}");
                        return;
                    }
                };
                if !replay.reproduced {
                    record.ok = false;
                    record.replayed = false;
                    record.counterexample = format!(
                        "counterexample from {initial} did not replay: {}",
                        replay.detail
                    );
                    return;
                }
                if record.counterexample.is_empty() {
                    record.counterexample = format!("from {initial}: {}", ce.render());
                }
            }
        }
    }
}

/// Engine-measured unfair row: starve robot 0 for `B` steps; the run must
/// still gather within the fair budget plus `3·B` extra scheduler steps.
fn run_unfair_cell(cell: &Cell, seed: u64, n_budget: u64, record: &mut FaultRecord) {
    let initial = rr_bench::rigid_start(cell.n, cell.k);
    let fair_budget = 100_000u64;
    let max_steps = fair_budget + 3 * n_budget;
    let mut scheduler = BoundedUnfairScheduler::seeded(seed, 0, n_budget);
    let Some(protocol) = protocol_for(Task::Gathering, cell.n, cell.k) else {
        record.counterexample = "no protocol for claimed cell".to_string();
        return;
    };
    record.initial_classes = 1;
    match run_task(
        Task::Gathering,
        protocol,
        &initial,
        &mut scheduler,
        TaskTargets::open_ended(),
        max_steps,
    ) {
        Ok(outcome) => {
            let gathered = outcome
                .gathering()
                .is_some_and(|s| s.gathered && !s.broke_gathering);
            record.ok = gathered;
            if gathered {
                record.proved = 1;
            } else {
                record.counterexample =
                    format!("not gathered within {max_steps} steps under B={n_budget}");
            }
        }
        Err(e) => {
            record.counterexample = e.to_string();
        }
    }
}

fn run_cell(cell: Cell, experiment: &str, workers: usize, root_seed: u64) -> FaultRecord {
    let started = Instant::now();
    let (mode_name, family, detail, property): (String, &str, String, String) = match cell.kind {
        CellKind::Checked { task, mode, fault } => (
            mode.name().to_string(),
            fault.family(),
            fault.detail().to_string(),
            property_of(task, fault).0.to_string(),
        ),
        CellKind::Unfair { n_budget } => (
            "unfair".to_string(),
            "unfair",
            format!("B={n_budget}"),
            "gathered within fair budget + 3·B steps".to_string(),
        ),
    };
    let mut record = FaultRecord {
        experiment: experiment.to_string(),
        task: match cell.kind {
            CellKind::Checked {
                task: CheckTask::Alignment,
                ..
            } => "alignment".to_string(),
            _ => "gathering".to_string(),
        },
        n: cell.n,
        k: cell.k,
        mode: mode_name,
        fault: family.to_string(),
        fault_detail: detail,
        property,
        initial_classes: 0,
        states: 0,
        edges: 0,
        proved: 0,
        falsified: 0,
        replayed: true,
        ok: false,
        counterexample: String::new(),
        wall_nanos: 0,
    };
    match cell.kind {
        CellKind::Checked { task, mode, fault } => {
            let invariant = property_of(task, fault).1;
            match task {
                CheckTask::Gathering => check_faulted_cell(
                    &GatheringProtocol::new(),
                    invariant.as_ref(),
                    &cell,
                    mode,
                    fault,
                    workers,
                    &mut record,
                ),
                CheckTask::Alignment => check_faulted_cell(
                    &AlignProtocol::new(),
                    invariant.as_ref(),
                    &cell,
                    mode,
                    fault,
                    workers,
                    &mut record,
                ),
            }
        }
        CellKind::Unfair { n_budget } => {
            // Per-cell seed: deterministic in the root seed and grid
            // coordinates only (same discipline as Sweep::jobs).
            let coords = (cell.n as u64) << 40 | (cell.k as u64) << 24 | n_budget;
            let mut z = root_seed ^ coords ^ 0x9E37_79B9_7F4A_7C15;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            run_unfair_cell(&cell, z ^ (z >> 31), n_budget, &mut record);
        }
    }
    record.wall_nanos = started.elapsed().as_nanos();
    record
}

/// The canary: (1) an empty fault budget explores byte-identically to the
/// fault-free checker; (2) one crash fault falsifies *plain* gathering with
/// a counterexample that carries a crash directive and replays.
fn selftest() -> Result<(), String> {
    let initial = enumerate_rigid_configurations(6, 3)
        .into_iter()
        .next()
        .expect("rigid (6,3)");
    let protocol = GatheringProtocol::new();
    let invariant = GatheringInvariant::new();
    for mode in [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ] {
        let plain = check_protocol(&protocol, &initial, &invariant, &ExploreOptions::new(mode))
            .map_err(|e| e.to_string())?;
        let empty = check_protocol(
            &protocol,
            &initial,
            &invariant,
            &ExploreOptions::new(mode).with_faults(FaultBudget::none()),
        )
        .map_err(|e| e.to_string())?;
        if plain != empty {
            return Err(format!(
                "{mode}: empty fault budget drifted from fault-free checker"
            ));
        }
        let crashed = check_protocol(
            &protocol,
            &initial,
            &invariant,
            &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_crashes(1)),
        )
        .map_err(|e| e.to_string())?;
        let Some(ce) = crashed.counterexample() else {
            return Err(format!("{mode}: one crash did NOT falsify plain gathering"));
        };
        if ce.faults.is_empty() {
            return Err(format!("{mode}: counterexample carries no fault directive"));
        }
        let replay = replay_counterexample(&protocol, &initial, &invariant, ce)
            .map_err(|e| e.to_string())?;
        if !replay.reproduced {
            return Err(format!(
                "{mode}: crash lasso did not replay: {}",
                replay.detail
            ));
        }
        println!(
            "# selftest {mode}: crash falsifies plain gathering: {}",
            ce.render()
        );
    }
    Ok(())
}

fn main() {
    let args = ExpArgs::parse(0xE14);
    let max_n: usize = args
        .value("--max-n")
        .map_or(if args.quick { 6 } else { 8 }, |v| {
            v.parse().expect("--max-n takes a usize")
        });
    let max_k: usize = args
        .value("--max-k")
        .map_or(4, |v| v.parse().expect("--max-k takes a usize"));
    let workers: usize = args
        .value("--workers")
        .map_or(0, |v| v.parse().expect("--workers takes a usize"));

    if args.flag("--selftest") {
        if let Err(e) = selftest() {
            eprintln!("E14 selftest FAILED: {e}");
            std::process::exit(1);
        }
    }

    let mut cells = Vec::new();
    for task in [CheckTask::Gathering, CheckTask::Alignment] {
        for n in 4..=max_n {
            for k in 2..=max_k.min(n) {
                if !claimed(task, n, k) {
                    continue;
                }
                for mode in [
                    InterleavingMode::SsyncSubsets,
                    InterleavingMode::AsyncPhases,
                ] {
                    for fault in [FaultRow::None, FaultRow::Crash, FaultRow::CorruptLook] {
                        cells.push(Cell {
                            kind: CellKind::Checked { task, mode, fault },
                            n,
                            k,
                        });
                    }
                }
            }
        }
    }
    let unfair_budgets: &[u64] = if args.quick { &[1, 16] } else { &[1, 64, 1024] };
    for n in 4..=max_n {
        for k in 2..=max_k.min(n) {
            if !claimed(CheckTask::Gathering, n, k) {
                continue;
            }
            for &b in unfair_budgets {
                cells.push(Cell {
                    kind: CellKind::Unfair { n_budget: b },
                    n,
                    k,
                });
            }
        }
    }

    let records = grid_map(cells, args.mode(), |cell| {
        run_cell(cell, "E14", workers, args.root_seed)
    });

    println!(
        "# E14 — fault-adversary degradation table, {} cells",
        records.len()
    );
    println!(
        "# task        n   k  mode    fault         detail   classes    states  proved  falsified  verdict"
    );
    for r in &records {
        let verdict = if r.ok && r.falsified == 0 {
            "PROVED".to_string()
        } else if r.ok {
            format!("DEGRADES (replayed): {}", r.counterexample)
        } else {
            format!("UNEXPLAINED {}", r.counterexample)
        };
        println!(
            "  {:<10} {:>2}  {:>2}  {:<6} {:<13} {:<8} {:>7} {:>9} {:>7} {:>10}  {verdict}",
            r.task,
            r.n,
            r.k,
            r.mode,
            r.fault,
            r.fault_detail,
            r.initial_classes,
            r.states,
            r.proved,
            r.falsified
        );
    }

    args.write_json("E14", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    exit_if_failed("E14", failures, records.len());
}
