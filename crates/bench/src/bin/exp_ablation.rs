//! Experiment E9 (ablation): why Align needs its symmetry guards, and how the
//! scheduler model affects the cost of the tasks.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_ablation -- [--quick] [--json <path>] [--sequential]
//! ```

use rr_bench::spread_out_rigid_start;
use rr_bench::sweep::{grid_map, ExpArgs};
use rr_corda::scheduler::{
    AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
};
use rr_corda::{Engine, Scheduler};
use rr_core::align::run_to_c_star;
use rr_core::baselines::NaiveAligner;
use rr_core::clearing::RingClearingProtocol;
use rr_core::driver::{run_task, TaskTargets};
use rr_core::unified::Task;
use rr_ring::{supermin_view, symmetry};
use serde::Serialize;

/// One guarded-vs-naive Align comparison (E9a), as recorded in the report.
#[derive(Debug, Clone, Serialize)]
struct AblationRecord {
    experiment: String,
    n: usize,
    k: usize,
    guarded_moves: u64,
    guarded_reached: bool,
    naive_outcome: String,
    ok: bool,
}

/// One scheduler-cost row (E9b), as recorded in the report.
#[derive(Debug, Clone, Serialize)]
struct SchedulerCostRecord {
    experiment: String,
    scheduler: String,
    moves: u64,
    activations: u64,
    ok: bool,
}

fn naive_aligner_outcome(n: usize, k: usize) -> String {
    let start = spread_out_rigid_start(n, k);
    let mut sim = Engine::with_default_options(NaiveAligner, start).unwrap();
    let mut sched = RoundRobinScheduler::new();
    for _ in 0..100_000u64 {
        let step = sched.next(&sim.scheduler_view());
        if let Err(e) = sim.step(&step, &mut ()) {
            return format!("collision after {} moves ({e})", sim.move_count());
        }
        let cfg = sim.configuration();
        let w = supermin_view(cfg);
        if rr_ring::pattern::is_c_star_type(w.gaps()) {
            return format!("reached C* after {} moves", sim.move_count());
        }
        if !symmetry::is_rigid(cfg) && w != rr_ring::View::new(vec![0, 0, 2, 2]) {
            return format!(
                "stuck in symmetric trap {w} after {} moves",
                sim.move_count()
            );
        }
    }
    "no outcome within budget".to_string()
}

fn main() {
    // Default seed 23 matches the E9b numbers recorded in EXPERIMENTS.md.
    let args = ExpArgs::parse(23);
    let cases: Vec<(usize, usize)> = if args.quick {
        vec![(9, 4), (12, 5)]
    } else {
        vec![(9, 4), (12, 5), (13, 5), (16, 7)]
    };

    let e9a: Vec<AblationRecord> = grid_map(cases, args.mode(), |(n, k)| {
        let start = spread_out_rigid_start(n, k);
        let mut sched = RoundRobinScheduler::new();
        let (guarded_moves, guarded_reached) = match run_to_c_star(&start, &mut sched, 10_000_000) {
            Ok((_, moves)) => (moves, true),
            Err(_) => (0, false),
        };
        AblationRecord {
            experiment: "E9a".to_string(),
            n,
            k,
            guarded_moves,
            guarded_reached,
            naive_outcome: naive_aligner_outcome(n, k),
            // The ablation demonstrates that the *guarded* algorithm always
            // converges; the naive baseline is expected (and allowed) to
            // fail in its own instructive ways.
            ok: guarded_reached,
        }
    });

    println!("# E9a — Align ablation: guarded rule order (paper) vs unguarded reduction_1");
    println!(
        "{:>4} {:>4} {:>28} {:>44}",
        "n", "k", "Align (guarded)", "NaiveAligner (no symmetry guards)"
    );
    for r in &e9a {
        let guarded = if r.guarded_reached {
            format!("C* in {} moves", r.guarded_moves)
        } else {
            "failed".to_string()
        };
        println!(
            "{:>4} {:>4} {:>28} {:>44}",
            r.n, r.k, guarded, r.naive_outcome
        );
    }

    println!();
    println!("# E9b — scheduler-model ablation for Ring Clearing (n=14, k=6, 5 clearings)");
    println!("{:>14} {:>10} {:>12}", "scheduler", "moves", "activations");
    let start = spread_out_rigid_start(14, 6);
    let runs: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("fsync", Box::new(FullySynchronousScheduler)),
        (
            "ssync",
            Box::new(SemiSynchronousScheduler::seeded(args.root_seed)),
        ),
        ("round-robin", Box::new(RoundRobinScheduler::new())),
        (
            "async",
            Box::new(AsynchronousScheduler::seeded(args.root_seed)),
        ),
    ];
    let mut e9b: Vec<SchedulerCostRecord> = Vec::new();
    for (name, mut scheduler) in runs {
        let report = run_task(
            Task::GraphSearching,
            RingClearingProtocol::new(),
            &start,
            scheduler.as_mut(),
            TaskTargets::demonstrate(5, 0),
            4_000_000,
        )
        .expect("runs");
        let ok = report.report.succeeded();
        let stats = report.searching().expect("searching stats");
        println!("{:>14} {:>10} {:>12}", name, stats.moves, stats.steps);
        e9b.push(SchedulerCostRecord {
            experiment: "E9b".to_string(),
            scheduler: name.to_string(),
            moves: stats.moves,
            activations: stats.steps,
            ok,
        });
    }
    println!();
    println!("# shape check: the number of *moves* to clear is scheduler-independent; the number");
    println!("# of activations grows from FSYNC to ASYNC because most activations are idle.");

    // One JSON report with both record families: E9a rows first, then E9b.
    if args.json.is_some() {
        #[derive(Debug, Serialize)]
        struct Combined {
            align_ablation: Vec<AblationRecord>,
            scheduler_cost: Vec<SchedulerCostRecord>,
        }
        let combined = Combined {
            align_ablation: e9a.clone(),
            scheduler_cost: e9b.clone(),
        };
        args.write_json("E9", std::slice::from_ref(&combined));
    }
    let failures = e9a.iter().filter(|r| !r.ok).count() + e9b.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E9", failures, e9a.len() + e9b.len());
}
