//! Experiment E9 (ablation): why Align needs its symmetry guards, and how the
//! scheduler model affects the cost of the tasks.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_ablation
//! ```

use rr_bench::spread_out_rigid_start;
use rr_corda::scheduler::{
    AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
};
use rr_corda::{Engine, Scheduler};
use rr_core::align::run_to_c_star;
use rr_core::baselines::NaiveAligner;
use rr_core::clearing::RingClearingProtocol;
use rr_core::driver::{run_task, TaskTargets};
use rr_core::unified::Task;
use rr_ring::{supermin_view, symmetry};

fn naive_aligner_outcome(n: usize, k: usize) -> String {
    let start = spread_out_rigid_start(n, k);
    let mut sim = Engine::with_default_options(NaiveAligner, start).unwrap();
    let mut sched = RoundRobinScheduler::new();
    for _ in 0..100_000u64 {
        let step = sched.next(&sim.scheduler_view());
        if let Err(e) = sim.step(&step, &mut ()) {
            return format!("collision after {} moves ({e})", sim.move_count());
        }
        let cfg = sim.configuration();
        let w = supermin_view(cfg);
        if rr_ring::pattern::is_c_star_type(w.gaps()) {
            return format!("reached C* after {} moves", sim.move_count());
        }
        if !symmetry::is_rigid(cfg) && w != rr_ring::View::new(vec![0, 0, 2, 2]) {
            return format!(
                "stuck in symmetric trap {w} after {} moves",
                sim.move_count()
            );
        }
    }
    "no outcome within budget".to_string()
}

fn main() {
    println!("# E9a — Align ablation: guarded rule order (paper) vs unguarded reduction_1");
    println!(
        "{:>4} {:>4} {:>28} {:>44}",
        "n", "k", "Align (guarded)", "NaiveAligner (no symmetry guards)"
    );
    for (n, k) in [(9usize, 4usize), (12, 5), (13, 5), (16, 7)] {
        let start = spread_out_rigid_start(n, k);
        let mut sched = RoundRobinScheduler::new();
        let guarded = match run_to_c_star(&start, &mut sched, 10_000_000) {
            Ok((_, moves)) => format!("C* in {moves} moves"),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "{:>4} {:>4} {:>28} {:>44}",
            n,
            k,
            guarded,
            naive_aligner_outcome(n, k)
        );
    }

    println!();
    println!("# E9b — scheduler-model ablation for Ring Clearing (n=14, k=6, 5 clearings)");
    println!("{:>14} {:>10} {:>12}", "scheduler", "moves", "activations");
    let start = spread_out_rigid_start(14, 6);
    let runs: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("fsync", Box::new(FullySynchronousScheduler)),
        ("ssync", Box::new(SemiSynchronousScheduler::seeded(23))),
        ("round-robin", Box::new(RoundRobinScheduler::new())),
        ("async", Box::new(AsynchronousScheduler::seeded(23))),
    ];
    for (name, mut scheduler) in runs {
        let stats = run_task(
            Task::GraphSearching,
            RingClearingProtocol::new(),
            &start,
            scheduler.as_mut(),
            TaskTargets::demonstrate(5, 0),
            4_000_000,
        )
        .expect("runs")
        .searching()
        .expect("searching stats");
        println!("{:>14} {:>10} {:>12}", name, stats.moves, stats.steps);
    }
    println!();
    println!("# shape check: the number of *moves* to clear is scheduler-independent; the number");
    println!("# of activations grows from FSYNC to ASYNC because most activations are idle.");
}
