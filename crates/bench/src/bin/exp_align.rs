//! Experiment E3 (Theorem 1): Align convergence — number of moves to reach
//! `C*` from rigid configurations, exhaustively for small rings and sampled
//! for larger ones.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_align -- [--quick] [--json <path>] [--sequential] [--ledger <path>] [--cache <dir>]
//! ```

use rr_bench::grid::preset;
use rr_bench::mean;
use rr_bench::sweep::ExpArgs;

fn main() {
    let args = ExpArgs::parse(0xE3);
    let spec = preset("align", args.quick, Some(args.root_seed)).expect("builtin preset");
    let run = args.run_grid(&spec);

    println!("# E3 — Align convergence to C* (round-robin scheduler)");
    if let Some(records) = run.records.align().filter(|r| !r.is_empty()) {
        println!(
            "{:>4} {:>4} {:>8} {:>10} {:>10} {:>10} {:>12}",
            "n", "k", "starts", "min moves", "avg moves", "max moves", "all reached"
        );
        for r in records {
            println!(
                "{:>4} {:>4} {:>8} {:>10} {:>10.1} {:>10} {:>12}",
                r.n,
                r.k,
                r.starts,
                r.min_moves,
                mean(r.total_moves, r.starts as u64),
                r.max_moves,
                r.ok
            );
        }
        println!();
        println!("# shape check: max moves grows roughly like n*k (the supermin view decreases");
        println!("# lexicographically and each of its k entries is bounded by n).");
    }

    args.finish_grid(&spec, &run);
}
