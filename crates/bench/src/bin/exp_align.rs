//! Experiment E3 (Theorem 1): Align convergence — number of moves to reach
//! `C*` from rigid configurations, exhaustively for small rings and sampled
//! for larger ones.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_align
//! ```

use rayon::prelude::*;
use rr_bench::{mean, ALIGN_INSTANCES};
use rr_checker::verify::measure_align;

fn main() {
    println!("# E3 — Align convergence to C* (round-robin scheduler)");
    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "n", "k", "starts", "min moves", "avg moves", "max moves", "all reached"
    );
    let rows: Vec<_> = ALIGN_INSTANCES
        .par_iter()
        .map(|&(n, k)| {
            let max_starts = if n <= 14 { usize::MAX } else { 64 };
            (n, k, measure_align(n, k, max_starts))
        })
        .collect();
    for (n, k, stats) in rows {
        println!(
            "{:>4} {:>4} {:>8} {:>10} {:>10.1} {:>10} {:>12}",
            n,
            k,
            stats.starts,
            stats.min_moves,
            mean(stats.total_moves, stats.starts as u64),
            stats.max_moves,
            stats.all_converged
        );
    }
    println!();
    println!("# shape check: max moves grows roughly like n*k (the supermin view decreases");
    println!("# lexicographically and each of its k entries is bounded by n).");
}
