//! Experiment E3 (Theorem 1): Align convergence — number of moves to reach
//! `C*` from rigid configurations, exhaustively for small rings and sampled
//! for larger ones.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_align -- [--quick] [--json <path>] [--sequential]
//! ```

use rr_bench::sweep::{grid_map, ExpArgs};
use rr_bench::{mean, ALIGN_INSTANCES};
use rr_checker::verify::measure_align;
use serde::Serialize;

/// One Align convergence measurement, as recorded in the JSON report.
#[derive(Debug, Clone, Serialize)]
struct AlignRecord {
    experiment: String,
    n: usize,
    k: usize,
    starts: usize,
    min_moves: u64,
    max_moves: u64,
    total_moves: u64,
    ok: bool,
}

fn main() {
    let args = ExpArgs::parse(0xE3);
    let instances: Vec<(usize, usize)> = if args.quick {
        ALIGN_INSTANCES
            .iter()
            .copied()
            .filter(|&(n, _)| n <= 16)
            .collect()
    } else {
        ALIGN_INSTANCES.to_vec()
    };
    let records: Vec<AlignRecord> = grid_map(instances, args.mode(), |(n, k)| {
        let max_starts = if n <= 14 { usize::MAX } else { 64 };
        let stats = measure_align(n, k, max_starts);
        AlignRecord {
            experiment: "E3".to_string(),
            n,
            k,
            starts: stats.starts,
            min_moves: stats.min_moves,
            max_moves: stats.max_moves,
            total_moves: stats.total_moves,
            ok: stats.all_converged,
        }
    });

    println!("# E3 — Align convergence to C* (round-robin scheduler)");
    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "n", "k", "starts", "min moves", "avg moves", "max moves", "all reached"
    );
    for r in &records {
        println!(
            "{:>4} {:>4} {:>8} {:>10} {:>10.1} {:>10} {:>12}",
            r.n,
            r.k,
            r.starts,
            r.min_moves,
            mean(r.total_moves, r.starts as u64),
            r.max_moves,
            r.ok
        );
    }
    println!();
    println!("# shape check: max moves grows roughly like n*k (the supermin view decreases");
    println!("# lexicographically and each of its k entries is bounded by n).");

    args.write_json("E3", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E3", failures, records.len());
}
