//! Experiment E2: regenerate the configuration counts and transition graphs of
//! Figures 4–9 of the paper (the case analysis of Theorem 5).
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_config_graphs
//! ```

use rr_bench::THEOREM5_CASES;
use rr_checker::enumeration::configuration_graph;

fn main() {
    println!("# E2 — configuration graphs for the small cases of Theorem 5 (Figures 4-9)");
    println!(
        "{:>4} {:>4} {:>10} {:>8} {:>8} {:>8}",
        "k", "n", "figure", "classes", "rigid", "edges"
    );
    let figures = ["Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"];
    for (&(k, n), figure) in THEOREM5_CASES.iter().zip(figures.iter()) {
        let graph = configuration_graph(n, k);
        println!(
            "{:>4} {:>4} {:>10} {:>8} {:>8} {:>8}",
            k,
            n,
            figure,
            graph.num_classes(),
            graph.num_rigid(),
            graph.edges.len()
        );
    }
    println!();
    println!("# per-class details for (k=4, n=7) — the four configurations A1..A4 of Figure 4");
    let graph = configuration_graph(7, 4);
    for (i, node) in graph.nodes.iter().enumerate() {
        println!(
            "  class {i}: gaps {} ({:?}), successors {:?}",
            node.canonical,
            node.class,
            graph.successors(i)
        );
    }
}
