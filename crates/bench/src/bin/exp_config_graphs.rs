//! Experiment E2: regenerate the configuration counts and transition graphs of
//! Figures 4–9 of the paper (the case analysis of Theorem 5).
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_config_graphs -- [--quick] [--json <path>] [--sequential]
//! ```

use rr_bench::sweep::{grid_map, ExpArgs};
use rr_bench::THEOREM5_CASES;
use rr_checker::enumeration::configuration_graph;
use serde::Serialize;

/// One regenerated configuration graph, as recorded in the JSON report.
#[derive(Debug, Clone, Serialize)]
struct GraphRecord {
    experiment: String,
    figure: String,
    k: usize,
    n: usize,
    classes: usize,
    rigid: usize,
    edges: usize,
    ok: bool,
}

fn main() {
    let args = ExpArgs::parse(0xE2);
    let figures = ["Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"];
    let cases: Vec<((usize, usize), &str)> = THEOREM5_CASES
        .iter()
        .copied()
        .zip(figures)
        .take(if args.quick { 3 } else { THEOREM5_CASES.len() })
        .collect();

    let records: Vec<GraphRecord> = grid_map(cases, args.mode(), |((k, n), figure)| {
        let graph = configuration_graph(n, k);
        GraphRecord {
            experiment: "E2".to_string(),
            figure: figure.to_string(),
            k,
            n,
            classes: graph.num_classes(),
            rigid: graph.num_rigid(),
            edges: graph.edges.len(),
            // Every figure of the paper has at least one rigid class and a
            // non-empty transition relation; an empty graph means the
            // enumeration or the move relation broke.
            ok: graph.num_classes() > 0 && graph.num_rigid() > 0 && !graph.edges.is_empty(),
        }
    });

    println!("# E2 — configuration graphs for the small cases of Theorem 5 (Figures 4-9)");
    println!(
        "{:>4} {:>4} {:>10} {:>8} {:>8} {:>8}",
        "k", "n", "figure", "classes", "rigid", "edges"
    );
    for r in &records {
        println!(
            "{:>4} {:>4} {:>10} {:>8} {:>8} {:>8}",
            r.k, r.n, r.figure, r.classes, r.rigid, r.edges
        );
    }

    println!();
    println!("# per-class details for (k=4, n=7) — the four configurations A1..A4 of Figure 4");
    let graph = configuration_graph(7, 4);
    for (i, node) in graph.nodes.iter().enumerate() {
        println!(
            "  class {i}: gaps {} ({:?}), successors {:?}",
            node.canonical,
            node.class,
            graph.successors(i)
        );
    }

    args.write_json("E2", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E2", failures, records.len());
}
