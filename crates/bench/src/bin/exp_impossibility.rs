//! Experiment E7 (Theorems 2–5, Lemmas 6–8): the impossibility side.
//!
//! * structural reasons for every impossible cell in a band of parameters;
//! * the adversarial demonstration that two robots never clear a ring;
//! * the exhaustive protocol-synthesis search for the smallest cases
//!   (all protocols defeated for k ∈ {1,2}; SSYNC-surviving candidates are
//!   counted for k = 3 and, budget permitting, (k,n) = (4,7)).
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_impossibility -- \
//!     [--quick] [--json <path>] [--sequential] [--with-4-7]
//! ```

use rr_bench::sweep::{grid_map, ExpArgs};
use rr_checker::game::{exhaustive_impossibility, search_space};
use rr_checker::impossibility::{demonstrate_two_robot_failure, structural_reason};
use serde::Serialize;

/// One synthesis-search case, as recorded in the JSON report.
#[derive(Debug, Clone, Serialize)]
struct ImpossibilityRecord {
    experiment: String,
    n: usize,
    k: usize,
    view_classes: u64,
    protocols_checked: u64,
    surviving_protocols: u64,
    confirmed: bool,
    skipped: bool,
    ok: bool,
}

fn main() {
    let args = ExpArgs::parse(0xE7);
    let with_4_7 = args.flag("--with-4-7");

    println!("# E7a — structural impossibility reasons (n <= 12)");
    for n in 3..=12usize {
        for k in 1..=n {
            if let Some(reason) = structural_reason(n, k) {
                println!("  n={n:>2} k={k:>2}: {reason}");
            }
        }
    }

    println!();
    println!("# E7b — the alternating adversary vs the two-robot baseline (Theorem 2)");
    let mut adversary_failures = 0usize;
    for n in [6usize, 9, 12, 20] {
        let rounds = 500;
        let survived = demonstrate_two_robot_failure(n, rounds);
        if survived != rounds {
            adversary_failures += 1;
        }
        println!("  n={n:>2}: ring never cleared within {survived}/{rounds} adversarial rounds");
    }

    println!();
    println!("# E7c — exhaustive protocol-synthesis search (semi-synchronous adversary)");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
        "n", "k", "view classes", "protocols", "survivors", "confirmed"
    );
    let mut cases: Vec<(usize, usize, u64)> = vec![
        (4, 2, 1_000_000),
        (5, 2, 1_000_000),
        (6, 2, 1_000_000),
        (7, 2, 1_000_000),
        (8, 2, 1_000_000),
        (4, 1, 1_000_000),
    ];
    if !args.quick {
        cases.push((5, 3, 10_000_000));
        cases.push((6, 3, 10_000_000));
    }
    if with_4_7 {
        cases.push((7, 4, 50_000_000));
    }
    let records: Vec<ImpossibilityRecord> = grid_map(cases, args.mode(), |(n, k, cap)| {
        let (classes, count) = search_space(n, k);
        match exhaustive_impossibility(n, k, cap) {
            Some(result) => ImpossibilityRecord {
                experiment: "E7".to_string(),
                n,
                k,
                view_classes: result.view_classes as u64,
                protocols_checked: result.protocols_checked,
                surviving_protocols: result.surviving_protocols,
                confirmed: result.impossibility_confirmed(),
                skipped: false,
                // k <= 2 must be fully confirmed; the k >= 3 survivors are
                // only defeated by asynchronous schedules the SSYNC search
                // does not model (see the closing note), so a survivor there
                // is expected, not a failure.
                ok: k > 2 || result.impossibility_confirmed(),
            },
            None => ImpossibilityRecord {
                experiment: "E7".to_string(),
                n,
                k,
                view_classes: classes as u64,
                protocols_checked: count,
                surviving_protocols: 0,
                confirmed: false,
                skipped: true,
                ok: true,
            },
        }
    });
    for r in &records {
        if r.skipped {
            println!(
                "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
                r.n, r.k, r.view_classes, r.protocols_checked, "-", "skipped (cap)"
            );
        } else {
            println!(
                "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
                r.n, r.k, r.view_classes, r.protocols_checked, r.surviving_protocols, r.confirmed
            );
        }
    }
    println!();
    println!("# note: k <= 2 is fully confirmed; the k = 3 survivors are only defeated by the");
    println!("# pending-move (asynchronous) schedules of Theorem 3, which the exhaustive");
    println!("# SSYNC search does not model (documented in DESIGN.md).");

    args.write_json("E7", &records);
    let failures = adversary_failures + records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E7", failures, records.len() + 4);
}
