//! Experiment E7 (Theorems 2–5, Lemmas 6–8): the impossibility side.
//!
//! * structural reasons for every impossible cell in a band of parameters;
//! * the adversarial demonstration that two robots never clear a ring;
//! * the exhaustive protocol-synthesis search for the smallest cases
//!   (all protocols defeated for k ∈ {1,2}; SSYNC-surviving candidates are
//!   counted for k = 3 and, budget permitting, (k,n) = (4,7)).
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_impossibility [-- --with-4-7]
//! ```

use rr_checker::game::{exhaustive_impossibility, search_space};
use rr_checker::impossibility::{demonstrate_two_robot_failure, structural_reason};

fn main() {
    let with_4_7 = std::env::args().any(|a| a == "--with-4-7");

    println!("# E7a — structural impossibility reasons (n <= 12)");
    for n in 3..=12usize {
        for k in 1..=n {
            if let Some(reason) = structural_reason(n, k) {
                println!("  n={n:>2} k={k:>2}: {reason}");
            }
        }
    }

    println!();
    println!("# E7b — the alternating adversary vs the two-robot baseline (Theorem 2)");
    for n in [6usize, 9, 12, 20] {
        let rounds = 500;
        let survived = demonstrate_two_robot_failure(n, rounds);
        println!("  n={n:>2}: ring never cleared within {survived}/{rounds} adversarial rounds");
    }

    println!();
    println!("# E7c — exhaustive protocol-synthesis search (semi-synchronous adversary)");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
        "n", "k", "view classes", "protocols", "survivors", "confirmed"
    );
    let mut cases: Vec<(usize, usize, u64)> = vec![
        (4, 2, 1_000_000),
        (5, 2, 1_000_000),
        (6, 2, 1_000_000),
        (7, 2, 1_000_000),
        (8, 2, 1_000_000),
        (4, 1, 1_000_000),
        (5, 3, 10_000_000),
        (6, 3, 10_000_000),
    ];
    if with_4_7 {
        cases.push((7, 4, 50_000_000));
    }
    for (n, k, cap) in cases {
        let (classes, count) = search_space(n, k);
        match exhaustive_impossibility(n, k, cap) {
            Some(result) => println!(
                "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
                n,
                k,
                result.view_classes,
                result.protocols_checked,
                result.surviving_protocols,
                result.impossibility_confirmed()
            ),
            None => println!(
                "{:>4} {:>4} {:>14} {:>14} {:>12} {:>12}",
                n, k, classes, count, "-", "skipped (cap)"
            ),
        }
    }
    println!();
    println!("# note: k <= 2 is fully confirmed; the k = 3 survivors are only defeated by the");
    println!("# pending-move (asynchronous) schedules of Theorem 3, which the exhaustive");
    println!("# SSYNC search does not model (documented in DESIGN.md).");
}
