//! E10/E11 — exhaustive adversarial model checking over scheduler
//! interleavings.
//!
//! Where E3–E6 *sample* the adversary (64 seeds per cell), this experiment
//! *exhausts* it on small instances: for every rigid initial configuration
//! class of each cell, the checker enumerates **all** SSYNC activation
//! subsets and **all** ASYNC Look-Move phase interleavings, checks the
//! per-task safety invariants on every edge, and decides fair liveness by
//! SCC analysis — upgrading "verified on sampled schedules" to "proved for
//! all schedules".  The checker runs its packed-state parallel engine
//! (experiment E11): states are stored bit-packed, expansion is sharded over
//! a worker pool, and the reports are byte-identical for every worker count.
//!
//! Grid: gathering and Align on every claimed cell with `n ≤ 10, k ≤ 5`
//! (quick: `n ≤ 6`); graph searching additionally at its smallest feasible
//! instances `(n, k) = (11, 5)` (Ring Clearing) and `(10, 7)` (NminusThree),
//! plus the larger `(12, 5)` and `(11, 8)` in the full grid — below `n = 10`
//! searching is impossible (Theorem 5) and those cells are recorded as
//! vacuous.  Every record carries the cell's exploration throughput
//! (states/second) and peak resident node count, so the uploaded JSON
//! accumulates a perf trajectory.
//!
//! ```text
//! exp_modelcheck [--quick] [--json <path>] [--seed <u64>] [--sequential]
//!                [--selftest] [--max-n <usize>] [--max-k <usize>]
//!                [--workers <usize>] [--old-frontier]
//! ```
//!
//! `--workers` sets the checker's per-cell worker threads (0 = one per
//! core); `--sequential` additionally serializes the cell grid itself.
//! `--max-n 8 --max-k 4 --old-frontier` reproduces the pre-E11 grid, the
//! baseline the E11 speedup in EXPERIMENTS.md is measured against.
//! `--selftest` checks that a deliberately broken protocol (one
//! decision-table entry mutated) is *falsified* with a counterexample that
//! replays on the engine — a canary for the checker itself.

use std::time::Instant;

use rr_bench::sweep::{exit_if_failed, grid_map, ExpArgs, ModelCheckRecord};
use rr_checker::explore::{
    check_protocol, replay_counterexample, CheckOutcome, ExploreOptions, MutatedProtocol,
    ViolationKind,
};
use rr_corda::{Decision, InterleavingMode, Protocol, ViewIndex};
use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, Invariant, SearchingInvariant};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;
use rr_ring::Configuration;

/// The tasks of the model-check grid (Align is checked as its own task: it
/// is the shared first phase the other algorithms build on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellTask {
    Gathering,
    Alignment,
    Searching,
}

impl CellTask {
    fn slug(self) -> &'static str {
        match self {
            CellTask::Gathering => "gathering",
            CellTask::Alignment => "alignment",
            CellTask::Searching => "graph-searching",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    task: CellTask,
    n: usize,
    k: usize,
    mode: InterleavingMode,
}

/// Whether the paper claims an algorithm for the cell.
fn claimed(task: CellTask, n: usize, k: usize) -> bool {
    match task {
        CellTask::Gathering => protocol_for(Task::Gathering, n, k).is_some(),
        // Align needs k ≥ 3 robots and a rigid configuration to exist.
        CellTask::Alignment => k >= 3 && k + 2 < n,
        CellTask::Searching => protocol_for(Task::GraphSearching, n, k).is_some(),
    }
}

fn check_cell_protocol<P: Protocol + Clone + Send>(
    protocol: &P,
    invariant: &dyn Invariant,
    cell: &Cell,
    workers: usize,
    record: &mut ModelCheckRecord,
) {
    let initials = enumerate_rigid_configurations(cell.n, cell.k);
    record.initial_classes = initials.len() as u64;
    if initials.is_empty() {
        record.vacuous = true;
        record.ok = true;
        return;
    }
    record.ok = true;
    for initial in &initials {
        let report = match check_protocol(
            protocol,
            initial,
            invariant,
            &ExploreOptions::new(cell.mode).with_workers(workers),
        ) {
            Ok(report) => report,
            Err(e) => {
                record.ok = false;
                record.counterexample = format!("engine rejected the initial state: {e}");
                return;
            }
        };
        record.states += report.states as u64;
        record.quotient_states += report.quotient_states as u64;
        record.edges += report.edges;
        record.target_states += report.target_states as u64;
        record.progress_edges += report.progress_edges;
        record.peak_resident_nodes = record
            .peak_resident_nodes
            .max(report.peak_resident_nodes as u64);
        match &report.outcome {
            CheckOutcome::Verified => {}
            CheckOutcome::BudgetExceeded {
                discovered,
                completed_expansions,
            } => {
                record.ok = false;
                record.counterexample = format!(
                    "state budget exceeded from {initial}: {discovered} states discovered, \
                     {completed_expansions} expansions completed"
                );
                return;
            }
            CheckOutcome::Falsified(ce) => {
                record.ok = false;
                record.counterexample = format!("from {initial}: {}", ce.render());
                return;
            }
        }
    }
}

fn run_cell(cell: Cell, experiment: &str, workers: usize) -> ModelCheckRecord {
    let started = Instant::now();
    let mut record = ModelCheckRecord {
        experiment: experiment.to_string(),
        task: cell.task.slug().to_string(),
        n: cell.n,
        k: cell.k,
        mode: cell.mode.name().to_string(),
        initial_classes: 0,
        states: 0,
        quotient_states: 0,
        edges: 0,
        target_states: 0,
        progress_edges: 0,
        peak_resident_nodes: 0,
        states_per_sec: 0,
        vacuous: false,
        ok: false,
        counterexample: String::new(),
        wall_nanos: 0,
    };
    if !claimed(cell.task, cell.n, cell.k) {
        record.vacuous = true;
        record.ok = true;
        record.wall_nanos = started.elapsed().as_nanos();
        return record;
    }
    match cell.task {
        CellTask::Gathering => check_cell_protocol(
            &GatheringProtocol::new(),
            &GatheringInvariant::new(),
            &cell,
            workers,
            &mut record,
        ),
        CellTask::Alignment => check_cell_protocol(
            &AlignProtocol::new(),
            &AlignmentInvariant::new(),
            &cell,
            workers,
            &mut record,
        ),
        CellTask::Searching => {
            let protocol =
                protocol_for(Task::GraphSearching, cell.n, cell.k).expect("claimed cell");
            check_cell_protocol(
                &protocol,
                &SearchingInvariant::new(),
                &cell,
                workers,
                &mut record,
            );
        }
    }
    record.wall_nanos = started.elapsed().as_nanos();
    record.states_per_sec = (u128::from(record.states) * 1_000_000_000)
        .checked_div(record.wall_nanos)
        .unwrap_or(0) as u64;
    record
}

/// The canary: a gathering protocol with ONE decision-table entry mutated
/// (the initial class idles → fair no-progress lasso) and an Align protocol
/// with one entry mutated into a move (→ collision).  Both must be falsified
/// with counterexamples that replay on the engine.
fn selftest() -> Result<(), String> {
    // Liveness mutant.
    let initial = enumerate_rigid_configurations(7, 3)
        .into_iter()
        .next()
        .expect("rigid (7,3)");
    let mutant = MutatedProtocol::new(
        GatheringProtocol::new(),
        MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
        Decision::Idle,
    );
    for mode in [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ] {
        let report = check_protocol(
            &mutant,
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode),
        )
        .map_err(|e| e.to_string())?;
        let Some(ce) = report.counterexample() else {
            return Err(format!("{mode}: idle mutant was NOT falsified"));
        };
        if ce.kind != ViolationKind::Liveness {
            return Err(format!("{mode}: expected a liveness counterexample"));
        }
        let replay = replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce)
            .map_err(|e| e.to_string())?;
        if !replay.reproduced {
            return Err(format!("{mode}: lasso did not replay: {}", replay.detail));
        }
        println!("# selftest {mode}: idle mutant falsified: {}", ce.render());
    }
    // Safety mutant: at C* of (8, 4) a robot's clockwise neighbour is
    // occupied; forcing that class to move lets the adversary collide.
    let c_star = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
    let mutant = MutatedProtocol::new(
        AlignProtocol::new(),
        MutatedProtocol::<AlignProtocol>::trigger_for(&c_star),
        Decision::Move(ViewIndex::First),
    );
    let report = check_protocol(
        &mutant,
        &c_star,
        &AlignmentInvariant::new(),
        &ExploreOptions::new(InterleavingMode::AsyncPhases),
    )
    .map_err(|e| e.to_string())?;
    let Some(ce) = report.counterexample() else {
        return Err("move mutant was NOT falsified".to_string());
    };
    if ce.kind != ViolationKind::Safety || ce.prefix.len() != 2 {
        return Err(format!(
            "expected a minimal 2-step safety trace, got {}",
            ce.render()
        ));
    }
    let replay = replay_counterexample(&mutant, &c_star, &AlignmentInvariant::new(), ce)
        .map_err(|e| e.to_string())?;
    if !replay.reproduced {
        return Err(format!("safety trace did not replay: {}", replay.detail));
    }
    println!(
        "# selftest: move mutant falsified minimally: {}",
        ce.render()
    );
    Ok(())
}

fn main() {
    let args = ExpArgs::parse(0);
    let max_n: usize = args
        .value("--max-n")
        .map_or(if args.quick { 6 } else { 10 }, |v| {
            v.parse().expect("--max-n takes a usize")
        });
    let workers: usize = args
        .value("--workers")
        .map_or(0, |v| v.parse().expect("--workers takes a usize"));
    let max_k: usize = args
        .value("--max-k")
        .map_or(5, |v| v.parse().expect("--max-k takes a usize"));
    let old_frontier = args.flag("--old-frontier");

    if args.flag("--selftest") {
        if let Err(e) = selftest() {
            eprintln!("E10 selftest FAILED: {e}");
            std::process::exit(1);
        }
    }

    let both_modes = [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ];
    let mut cells = Vec::new();
    for task in [
        CellTask::Gathering,
        CellTask::Alignment,
        CellTask::Searching,
    ] {
        for n in 4..=max_n {
            for k in 2..=max_k.min(n) {
                for mode in both_modes {
                    cells.push(Cell { task, n, k, mode });
                }
            }
        }
    }
    // The smallest *feasible* searching instances (Ring Clearing and
    // NminusThree) sit beyond the gathering/Align grid; the quick CI grid
    // proves them under every SSYNC subset (small graphs, real liveness),
    // the full grid adds the ASYNC interleavings and the larger (12,5) and
    // (11,8) cells.
    let searching_frontier: &[(usize, usize, &[InterleavingMode])] = if args.quick {
        &[
            (11, 5, &[InterleavingMode::SsyncSubsets]),
            (10, 7, &[InterleavingMode::SsyncSubsets]),
        ]
    } else if old_frontier {
        &[(11, 5, &both_modes), (10, 7, &both_modes)]
    } else {
        &[
            (11, 5, &both_modes),
            (10, 7, &both_modes),
            (12, 5, &both_modes),
            (11, 8, &both_modes),
        ]
    };
    for &(n, k, modes) in searching_frontier {
        if n <= max_n && k <= max_k {
            continue; // already in the grid above (custom --max-n/--max-k runs)
        }
        for &mode in modes {
            cells.push(Cell {
                task: CellTask::Searching,
                n,
                k,
                mode,
            });
        }
    }

    let records = grid_map(cells, args.mode(), |cell| run_cell(cell, "E10", workers));

    println!(
        "# E10 — exhaustive model check (all schedules), {} cells",
        records.len()
    );
    println!(
        "# task            n   k  mode   classes    states  quotient     edges   st/sec  verdict"
    );
    for r in &records {
        let verdict = if r.vacuous {
            "vacuous".to_string()
        } else if r.ok {
            "PROVED".to_string()
        } else {
            format!("FALSIFIED {}", r.counterexample)
        };
        println!(
            "  {:<14} {:>2}  {:>2}  {:<5} {:>8} {:>9} {:>9} {:>9} {:>8}  {verdict}",
            r.task,
            r.n,
            r.k,
            r.mode,
            r.initial_classes,
            r.states,
            r.quotient_states,
            r.edges,
            r.states_per_sec
        );
    }

    args.write_json("E10", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    exit_if_failed("E10", failures, records.len());
}
