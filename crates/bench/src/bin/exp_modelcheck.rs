//! E10/E11/E15 — exhaustive adversarial model checking over scheduler
//! interleavings.
//!
//! Where E3–E6 *sample* the adversary (64 seeds per cell), this experiment
//! *exhausts* it on small instances: for every rigid initial configuration
//! class of each cell, the checker enumerates **all** SSYNC activation
//! subsets and **all** ASYNC Look-Move phase interleavings, checks the
//! per-task safety invariants on every edge, and decides fair liveness by
//! SCC analysis — upgrading "verified on sampled schedules" to "proved for
//! all schedules".  The checker runs its packed-state parallel engine
//! (experiment E11): states are stored bit-packed, expansion is sharded over
//! a worker pool, and the reports are byte-identical for every worker count
//! and storage backend.
//!
//! Gathering and alignment cells run on the **canonical symmetry quotient**
//! with σ-threaded liveness (`check_protocol_quotient`): states are
//! deduplicated up to ring rotation/reflection *and* robot relabeling, and
//! fairness is re-established over concrete robots by threading the
//! accumulated relabeling along quotient edges.  On the previously-proved
//! `n ≤ 10, k ≤ 5` grid every such cell is *additionally* checked concretely
//! and the two verdicts are compared — a verdict mismatch fails the cell.
//! Graph-searching cells carry auxiliary contamination state, which forces
//! exact keys; for them the quotient entry point degrades to the concrete
//! checker.
//!
//! Grid: gathering and Align on every claimed cell with `n ≤ 12, k ≤ 6`
//! (quick: `n ≤ 6, k ≤ 5`); graph searching additionally at its smallest
//! feasible instances `(n, k) = (11, 5)` (Ring Clearing) and `(10, 7)`
//! (NminusThree), plus the larger `(12, 5)` and `(11, 8)` in the full grid —
//! below `n = 10` searching is impossible (Theorem 5) and those cells are
//! recorded as vacuous.  `--max-n 14 --max-k 8` extends the sweep to the
//! proved `n ≤ 14, k ≤ 8` frontier (millions of states per searching cell —
//! pair it with `--store spill` and a tight `--mem-budget`, see E16).
//! Every record carries the cell's exploration
//! throughput (states/second), its deterministic memory profile
//! (`peak_resident_nodes`/`peak_resident_bytes`/`bytes_per_state`) and, under
//! `--store spill`, the bytes spilled to disk (experiment E15).
//!
//! ```text
//! exp_modelcheck [--quick] [--json <path>] [--seed <u64>] [--sequential]
//!                [--selftest] [--max-n <usize>] [--max-k <usize>]
//!                [--workers <usize>] [--store mem|spill]
//!                [--mem-budget <bytes|KiB|MiB|GiB>] [--only task:n:k[:mode]]
//!                [--max-states <usize>] [--scale-bench]
//! ```
//!
//! `--workers` sets the checker's per-cell worker threads (0 = one per
//! core); `--sequential` additionally serializes the cell grid itself.
//! `--store spill` keeps packed states in delta-compressed clusters on disk
//! with a resident cache bounded by `--mem-budget` (default 64MiB) — the
//! report is byte-identical to `--store mem` minus the `store` and
//! `spilled_bytes` fields, which is exactly what CI's spill-smoke leg gates
//! on.  `--only gathering:12:6` (optionally `:ssync`/`:async`) restricts the
//! grid to one cell for targeted out-of-core runs.  `--scale-bench` switches
//! to experiment E16: one fixed spill cell (default: the largest proved
//! searching cell; override with `--only`) is re-explored at worker counts
//! 1/2/4/8 (quick: 1/4) under a tight visited-map budget (default 1 MiB,
//! override with `--mem-budget`), the run **fails unless every
//! deterministic report field is byte-identical across the counts**, and
//! the per-phase wall time (parallel expansion vs batch merge) is recorded
//! per worker count.  `--selftest` checks that
//! a deliberately broken protocol (one decision-table entry mutated) is
//! *falsified* with a counterexample that replays on the engine — a canary
//! for the checker itself.

use std::time::Instant;

use rr_bench::sweep::{
    exit_if_failed, grid_map, parse_byte_size, ExpArgs, ModelCheckRecord, ScaleRecord,
};
use rr_checker::explore::{
    check_protocol, check_protocol_quotient_with_stats, check_protocol_with_stats,
    replay_counterexample, CheckOutcome, ExploreOptions, MutatedProtocol, ViolationKind,
    DEFAULT_MAX_STATES, DEFAULT_MEM_BUDGET,
};
use rr_checker::StoreKind;
use rr_corda::{Decision, InterleavingMode, Protocol, ViewIndex};
use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, Invariant, SearchingInvariant};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;
use rr_ring::Configuration;

/// The tasks of the model-check grid (Align is checked as its own task: it
/// is the shared first phase the other algorithms build on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellTask {
    Gathering,
    Alignment,
    Searching,
}

impl CellTask {
    fn slug(self) -> &'static str {
        match self {
            CellTask::Gathering => "gathering",
            CellTask::Alignment => "alignment",
            CellTask::Searching => "graph-searching",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    task: CellTask,
    n: usize,
    k: usize,
    mode: InterleavingMode,
}

/// Per-cell checker configuration derived from the CLI.
#[derive(Debug, Clone, Copy)]
struct CheckCfg {
    workers: usize,
    store: StoreKind,
    mem_budget: u64,
    max_states: usize,
}

/// Whether the paper claims an algorithm for the cell.
fn claimed(task: CellTask, n: usize, k: usize) -> bool {
    match task {
        CellTask::Gathering => protocol_for(Task::Gathering, n, k).is_some(),
        // Align needs k ≥ 3 robots and a rigid configuration to exist.
        CellTask::Alignment => k >= 3 && k + 2 < n,
        CellTask::Searching => protocol_for(Task::GraphSearching, n, k).is_some(),
    }
}

/// The grid PR 8 and earlier proved with the concrete (exact-dedup) checker.
/// Cells inside it are dual-run — quotient *and* concrete — and their
/// verdicts compared; cells beyond it are proved on the quotient alone.
fn previously_proved(cell: &Cell) -> bool {
    cell.n <= 10 && cell.k <= 5
}

fn check_cell_protocol<P: Protocol + Clone + Send>(
    protocol: &P,
    invariant: &dyn Invariant,
    cell: &Cell,
    cfg: &CheckCfg,
    record: &mut ModelCheckRecord,
) {
    let initials = enumerate_rigid_configurations(cell.n, cell.k);
    record.initial_classes = initials.len() as u64;
    if initials.is_empty() {
        record.vacuous = true;
        record.ok = true;
        return;
    }
    record.ok = true;
    // Accumulated packed payload bytes; divided down to `bytes_per_state`
    // by the caller once every class is in.
    let mut state_bytes = 0u64;
    for initial in &initials {
        let options = ExploreOptions::new(cell.mode)
            .with_workers(cfg.workers)
            .with_store(cfg.store)
            .with_mem_budget(cfg.mem_budget)
            .with_max_states(cfg.max_states);
        let (report, stats) =
            match check_protocol_quotient_with_stats(protocol, initial, invariant, &options) {
                Ok(pair) => pair,
                Err(e) => {
                    record.ok = false;
                    record.counterexample = format!("engine rejected the initial state: {e}");
                    return;
                }
            };
        if previously_proved(cell) {
            // Cross-check: on the grid the concrete checker already proved,
            // the quotient verdict must agree with the concrete one —
            // verified/falsified, and the violation kind when falsified.
            let concrete = match check_protocol(protocol, initial, invariant, &options) {
                Ok(concrete) => concrete,
                Err(e) => {
                    record.ok = false;
                    record.counterexample = format!("engine rejected the initial state: {e}");
                    return;
                }
            };
            let quotient_kind = report.counterexample().map(|ce| ce.kind);
            let concrete_kind = concrete.counterexample().map(|ce| ce.kind);
            if report.verified() != concrete.verified() || quotient_kind != concrete_kind {
                record.ok = false;
                record.counterexample = format!(
                    "quotient/concrete verdict mismatch from {initial}: \
                     quotient {:?} vs concrete {:?}",
                    report.outcome, concrete.outcome
                );
                return;
            }
        }
        record.states += report.states as u64;
        record.quotient_states += report.quotient_states as u64;
        record.edges += report.edges;
        record.target_states += report.target_states as u64;
        record.progress_edges += report.progress_edges;
        record.peak_resident_nodes = record
            .peak_resident_nodes
            .max(report.peak_resident_nodes as u64);
        record.peak_resident_bytes = record.peak_resident_bytes.max(report.peak_resident_bytes);
        record.spilled_bytes += stats.spilled_bytes;
        record.visited_spilled_bytes += stats.visited_spilled_bytes;
        state_bytes += report.state_bytes;
        match &report.outcome {
            CheckOutcome::Verified => {}
            CheckOutcome::BudgetExceeded {
                discovered,
                completed_expansions,
            } => {
                record.ok = false;
                record.counterexample = format!(
                    "state budget exceeded from {initial}: {discovered} states discovered, \
                     {completed_expansions} expansions completed"
                );
                return;
            }
            CheckOutcome::Falsified(ce) => {
                record.ok = false;
                record.counterexample = format!("from {initial}: {}", ce.render());
                return;
            }
        }
    }
    record.bytes_per_state = state_bytes.checked_div(record.states).unwrap_or(0);
}

fn run_cell(cell: Cell, experiment: &str, cfg: &CheckCfg) -> ModelCheckRecord {
    let started = Instant::now();
    let mut record = ModelCheckRecord {
        experiment: experiment.to_string(),
        task: cell.task.slug().to_string(),
        n: cell.n,
        k: cell.k,
        mode: cell.mode.name().to_string(),
        initial_classes: 0,
        states: 0,
        quotient_states: 0,
        edges: 0,
        target_states: 0,
        progress_edges: 0,
        peak_resident_nodes: 0,
        peak_resident_bytes: 0,
        bytes_per_state: 0,
        spilled_bytes: 0,
        visited_spilled_bytes: 0,
        store: cfg.store.to_string(),
        states_per_sec: 0,
        vacuous: false,
        ok: false,
        counterexample: String::new(),
        wall_nanos: 0,
    };
    if !claimed(cell.task, cell.n, cell.k) {
        record.vacuous = true;
        record.ok = true;
        record.wall_nanos = started.elapsed().as_nanos();
        return record;
    }
    match cell.task {
        CellTask::Gathering => check_cell_protocol(
            &GatheringProtocol::new(),
            &GatheringInvariant::new(),
            &cell,
            cfg,
            &mut record,
        ),
        CellTask::Alignment => check_cell_protocol(
            &AlignProtocol::new(),
            &AlignmentInvariant::new(),
            &cell,
            cfg,
            &mut record,
        ),
        CellTask::Searching => {
            let protocol =
                protocol_for(Task::GraphSearching, cell.n, cell.k).expect("claimed cell");
            check_cell_protocol(
                &protocol,
                &SearchingInvariant::new(),
                &cell,
                cfg,
                &mut record,
            );
        }
    }
    record.wall_nanos = started.elapsed().as_nanos();
    record.states_per_sec = (u128::from(record.states) * 1_000_000_000)
        .checked_div(record.wall_nanos)
        .unwrap_or(0) as u64;
    record
}

/// The canary: a gathering protocol with ONE decision-table entry mutated
/// (the initial class idles → fair no-progress lasso) and an Align protocol
/// with one entry mutated into a move (→ collision).  Both must be falsified
/// with counterexamples that replay on the engine.
fn selftest() -> Result<(), String> {
    // Liveness mutant.
    let initial = enumerate_rigid_configurations(7, 3)
        .into_iter()
        .next()
        .expect("rigid (7,3)");
    let mutant = MutatedProtocol::new(
        GatheringProtocol::new(),
        MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
        Decision::Idle,
    );
    for mode in [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ] {
        let report = check_protocol(
            &mutant,
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode),
        )
        .map_err(|e| e.to_string())?;
        let Some(ce) = report.counterexample() else {
            return Err(format!("{mode}: idle mutant was NOT falsified"));
        };
        if ce.kind != ViolationKind::Liveness {
            return Err(format!("{mode}: expected a liveness counterexample"));
        }
        let replay = replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce)
            .map_err(|e| e.to_string())?;
        if !replay.reproduced {
            return Err(format!("{mode}: lasso did not replay: {}", replay.detail));
        }
        println!("# selftest {mode}: idle mutant falsified: {}", ce.render());
    }
    // Safety mutant: at C* of (8, 4) a robot's clockwise neighbour is
    // occupied; forcing that class to move lets the adversary collide.
    let c_star = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
    let mutant = MutatedProtocol::new(
        AlignProtocol::new(),
        MutatedProtocol::<AlignProtocol>::trigger_for(&c_star),
        Decision::Move(ViewIndex::First),
    );
    let report = check_protocol(
        &mutant,
        &c_star,
        &AlignmentInvariant::new(),
        &ExploreOptions::new(InterleavingMode::AsyncPhases),
    )
    .map_err(|e| e.to_string())?;
    let Some(ce) = report.counterexample() else {
        return Err("move mutant was NOT falsified".to_string());
    };
    if ce.kind != ViolationKind::Safety || ce.prefix.len() != 2 {
        return Err(format!(
            "expected a minimal 2-step safety trace, got {}",
            ce.render()
        ));
    }
    let replay = replay_counterexample(&mutant, &c_star, &AlignmentInvariant::new(), ce)
        .map_err(|e| e.to_string())?;
    if !replay.reproduced {
        return Err(format!("safety trace did not replay: {}", replay.detail));
    }
    println!(
        "# selftest: move mutant falsified minimally: {}",
        ce.render()
    );
    Ok(())
}

/// FNV-1a over `bytes`: the digest the scale-bench gate compares across
/// worker counts.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One scale-bench row: explores every rigid initial class of `cell` on the
/// **concrete** (exact-dedup) checker with the spill backend, accumulating
/// the deterministic report fields into both the record and an FNV digest
/// basis — anything worker-dependent in node ids, edge order, early stops
/// or accounting would change the digest and trip the gate in `main`.
fn run_scale_cell(cell: &Cell, workers: usize, mem_budget: u64, max_states: usize) -> ScaleRecord {
    let started = Instant::now();
    let mut record = ScaleRecord {
        experiment: "E16".to_string(),
        task: cell.task.slug().to_string(),
        n: cell.n,
        k: cell.k,
        mode: cell.mode.name().to_string(),
        store: StoreKind::Spill.to_string(),
        workers,
        mem_budget,
        states: 0,
        edges: 0,
        peak_resident_bytes: 0,
        spilled_bytes: 0,
        visited_spilled_bytes: 0,
        expand_nanos: 0,
        merge_nanos: 0,
        states_per_sec: 0,
        report_digest: 0,
        ok: false,
        wall_nanos: 0,
    };
    let mut basis = String::new();
    let run = |record: &mut ScaleRecord, basis: &mut String| -> Result<(), String> {
        match cell.task {
            CellTask::Gathering => scale_cell_protocol(
                &GatheringProtocol::new(),
                &GatheringInvariant::new(),
                cell,
                workers,
                mem_budget,
                max_states,
                record,
                basis,
            ),
            CellTask::Alignment => scale_cell_protocol(
                &AlignProtocol::new(),
                &AlignmentInvariant::new(),
                cell,
                workers,
                mem_budget,
                max_states,
                record,
                basis,
            ),
            CellTask::Searching => {
                let protocol = protocol_for(Task::GraphSearching, cell.n, cell.k)
                    .ok_or_else(|| format!("no searching protocol for ({}, {})", cell.n, cell.k))?;
                scale_cell_protocol(
                    &protocol,
                    &SearchingInvariant::new(),
                    cell,
                    workers,
                    mem_budget,
                    max_states,
                    record,
                    basis,
                )
            }
        }
    };
    match run(&mut record, &mut basis) {
        Ok(()) => {
            record.report_digest = fnv1a(basis.as_bytes());
            record.ok = true; // the cross-worker gate may still clear this
        }
        Err(e) => {
            eprintln!("E16 workers={workers}: {e}");
            record.ok = false;
        }
    }
    record.wall_nanos = started.elapsed().as_nanos();
    record.states_per_sec = (u128::from(record.states) * 1_000_000_000)
        .checked_div(record.wall_nanos)
        .unwrap_or(0) as u64;
    record
}

#[allow(clippy::too_many_arguments)]
fn scale_cell_protocol<P: Protocol + Clone + Send>(
    protocol: &P,
    invariant: &dyn Invariant,
    cell: &Cell,
    workers: usize,
    mem_budget: u64,
    max_states: usize,
    record: &mut ScaleRecord,
    basis: &mut String,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let initials = enumerate_rigid_configurations(cell.n, cell.k);
    if initials.is_empty() {
        return Err(format!(
            "({}, {}) has no rigid initial class",
            cell.n, cell.k
        ));
    }
    let options = ExploreOptions::new(cell.mode)
        .with_workers(workers)
        .with_store(StoreKind::Spill)
        .with_mem_budget(mem_budget)
        .with_max_states(max_states);
    for initial in &initials {
        let (report, stats) = check_protocol_with_stats(protocol, initial, invariant, &options)
            .map_err(|e| format!("engine rejected {initial}: {e}"))?;
        record.states += report.states as u64;
        record.edges += report.edges;
        record.peak_resident_bytes = record.peak_resident_bytes.max(report.peak_resident_bytes);
        record.spilled_bytes += stats.spilled_bytes;
        record.visited_spilled_bytes += stats.visited_spilled_bytes;
        record.expand_nanos += stats.expand_nanos;
        record.merge_nanos += stats.merge_nanos;
        // Every deterministic report field joins the digest basis — the
        // outcome's Debug form includes the full counterexample when one
        // exists, so falsified runs are compared schedule for schedule.
        let _ = write!(
            basis,
            "{initial}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:?};",
            report.states,
            report.quotient_states,
            report.edges,
            report.target_states,
            report.progress_edges,
            report.peak_resident_nodes,
            report.peak_resident_bytes,
            report.state_bytes,
            stats.spilled_bytes,
            stats.visited_spilled_bytes,
            report.outcome
        );
    }
    Ok(())
}

/// The E16 worker-scaling bench: one fixed spill cell re-explored per
/// worker count, gated on every deterministic report field (via the FNV
/// digest) being identical across the counts.
fn run_scale_bench(
    args: &ExpArgs,
    only: Option<&OnlyFilter>,
    mem_budget: Option<u64>,
    max_states: usize,
) {
    let cell = match only {
        Some(f) => Cell {
            task: task_from_slug(&f.task),
            n: f.n,
            k: f.k,
            mode: match f.mode.as_deref() {
                Some("ssync") => InterleavingMode::SsyncSubsets,
                Some("async") | None => InterleavingMode::AsyncPhases,
                Some(other) => panic!("--only mode must be ssync or async, got {other:?}"),
            },
        },
        // Defaults: the biggest proved searching cells — exact dedup (the
        // contamination aux state forces it), millions of states in the
        // full cell, a quick-mode cell small enough for CI.
        None if args.quick => Cell {
            task: CellTask::Searching,
            n: 11,
            k: 5,
            mode: InterleavingMode::SsyncSubsets,
        },
        None => Cell {
            task: CellTask::Searching,
            n: 14,
            k: 8,
            mode: InterleavingMode::AsyncPhases,
        },
    };
    // Tight by default so the visited map genuinely seals runs: the bench
    // is about the spill path, not the in-RAM fast path.
    let mem_budget = mem_budget.unwrap_or(1 << 20);
    let worker_counts: &[usize] = if args.quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut records: Vec<ScaleRecord> = worker_counts
        .iter()
        .map(|&w| run_scale_cell(&cell, w, mem_budget, max_states))
        .collect();
    let reference = records[0].report_digest;
    for record in &mut records {
        record.ok = record.ok && record.report_digest == reference;
    }

    println!(
        "# E16 — worker scaling on the spill path: {}:{}:{} {} budget={}B",
        cell.task.slug(),
        cell.n,
        cell.k,
        cell.mode.name(),
        mem_budget
    );
    println!("# workers    states     edges  visited-spill   expand-ms  merge-ms   st/sec  digest");
    for r in &records {
        println!(
            "  {:>7} {:>9} {:>9} {:>14} {:>11} {:>9} {:>8}  {:016x}{}",
            r.workers,
            r.states,
            r.edges,
            r.visited_spilled_bytes,
            r.expand_nanos / 1_000_000,
            r.merge_nanos / 1_000_000,
            r.states_per_sec,
            r.report_digest,
            if r.ok { "" } else { "  MISMATCH" }
        );
    }

    args.write_json("E16", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    exit_if_failed("E16", failures, records.len());
}

fn task_from_slug(slug: &str) -> CellTask {
    match slug {
        "gathering" => CellTask::Gathering,
        "alignment" => CellTask::Alignment,
        "graph-searching" => CellTask::Searching,
        other => panic!("unknown task slug {other:?}"),
    }
}

/// A `--only task:n:k[:mode]` cell filter for targeted out-of-core runs.
struct OnlyFilter {
    task: String,
    n: usize,
    k: usize,
    mode: Option<String>,
}

impl OnlyFilter {
    fn parse(spec: &str) -> Self {
        let parts: Vec<&str> = spec.split(':').collect();
        assert!(
            parts.len() == 3 || parts.len() == 4,
            "--only takes task:n:k[:mode], got {spec:?}"
        );
        OnlyFilter {
            task: parts[0].to_string(),
            n: parts[1].parse().expect("--only: n must be a usize"),
            k: parts[2].parse().expect("--only: k must be a usize"),
            mode: parts.get(3).map(|m| (*m).to_string()),
        }
    }

    fn matches(&self, cell: &Cell) -> bool {
        cell.task.slug() == self.task
            && cell.n == self.n
            && cell.k == self.k
            && self
                .mode
                .as_ref()
                .is_none_or(|m| cell.mode.name() == m.as_str())
    }
}

fn main() {
    let args = ExpArgs::parse(0);
    let max_n: usize = args
        .value("--max-n")
        .map_or(if args.quick { 6 } else { 12 }, |v| {
            v.parse().expect("--max-n takes a usize")
        });
    let max_k: usize = args
        .value("--max-k")
        .map_or(if args.quick { 5 } else { 6 }, |v| {
            v.parse().expect("--max-k takes a usize")
        });
    let workers: usize = args
        .value("--workers")
        .map_or(0, |v| v.parse().expect("--workers takes a usize"));
    let store = match args.value("--store") {
        None | Some("mem") => StoreKind::Mem,
        Some("spill") => StoreKind::Spill,
        Some(other) => panic!("--store takes mem or spill, got {other:?}"),
    };
    let mem_budget_arg = args.value("--mem-budget").map(|v| {
        parse_byte_size(v).unwrap_or_else(|| panic!("--mem-budget: malformed size {v:?}"))
    });
    let mem_budget = mem_budget_arg.unwrap_or(DEFAULT_MEM_BUDGET);
    let max_states: usize = args.value("--max-states").map_or(DEFAULT_MAX_STATES, |v| {
        v.parse().expect("--max-states takes a usize")
    });
    let cfg = CheckCfg {
        workers,
        store,
        mem_budget,
        max_states,
    };
    let only = args.value("--only").map(OnlyFilter::parse);

    if args.flag("--scale-bench") {
        run_scale_bench(&args, only.as_ref(), mem_budget_arg, max_states);
        return;
    }

    if args.flag("--selftest") {
        if let Err(e) = selftest() {
            eprintln!("E10 selftest FAILED: {e}");
            std::process::exit(1);
        }
    }

    let both_modes = [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ];
    let mut cells = Vec::new();
    for task in [
        CellTask::Gathering,
        CellTask::Alignment,
        CellTask::Searching,
    ] {
        for n in 4..=max_n {
            for k in 2..=max_k.min(n) {
                for mode in both_modes {
                    cells.push(Cell { task, n, k, mode });
                }
            }
        }
    }
    // The smallest *feasible* searching instances (Ring Clearing and
    // NminusThree) sit beyond the gathering/Align grid; the quick CI grid
    // proves them under every SSYNC subset (small graphs, real liveness),
    // the full grid adds the ASYNC interleavings and the larger (12,5) and
    // (11,8) cells.
    let searching_frontier: &[(usize, usize, &[InterleavingMode])] = if args.quick {
        &[
            (11, 5, &[InterleavingMode::SsyncSubsets]),
            (10, 7, &[InterleavingMode::SsyncSubsets]),
        ]
    } else {
        &[
            (11, 5, &both_modes),
            (10, 7, &both_modes),
            (12, 5, &both_modes),
            (11, 8, &both_modes),
        ]
    };
    for &(n, k, modes) in searching_frontier {
        if n <= max_n && k <= max_k {
            continue; // already in the grid above (custom --max-n/--max-k runs)
        }
        for &mode in modes {
            cells.push(Cell {
                task: CellTask::Searching,
                n,
                k,
                mode,
            });
        }
    }
    if let Some(filter) = &only {
        cells.retain(|cell| filter.matches(cell));
        assert!(!cells.is_empty(), "--only matched no cell of the grid");
    }

    let records = grid_map(cells, args.mode(), |cell| run_cell(cell, "E10", &cfg));

    println!(
        "# E10 — exhaustive model check (all schedules), {} cells, store={store}",
        records.len()
    );
    println!(
        "# task            n   k  mode   classes    states  quotient     edges  b/st   spilled   st/sec  verdict"
    );
    for r in &records {
        let verdict = if r.vacuous {
            "vacuous".to_string()
        } else if r.ok {
            "PROVED".to_string()
        } else {
            format!("FALSIFIED {}", r.counterexample)
        };
        println!(
            "  {:<14} {:>2}  {:>2}  {:<5} {:>8} {:>9} {:>9} {:>9} {:>5} {:>9} {:>8}  {verdict}",
            r.task,
            r.n,
            r.k,
            r.mode,
            r.initial_classes,
            r.states,
            r.quotient_states,
            r.edges,
            r.bytes_per_state,
            r.spilled_bytes,
            r.states_per_sec
        );
    }

    args.write_json("E10", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    exit_if_failed("E10", failures, records.len());
}
