//! E10 — exhaustive adversarial model checking over scheduler interleavings.
//!
//! Where E3–E6 *sample* the adversary (64 seeds per cell), this experiment
//! *exhausts* it on small instances: for every rigid initial configuration
//! class of each cell, the checker enumerates **all** SSYNC activation
//! subsets and **all** ASYNC Look/Move interleavings, checks the per-task
//! safety invariants on every edge, and decides fair liveness by SCC
//! analysis — upgrading "verified on sampled schedules" to "proved for all
//! schedules".
//!
//! Grid: gathering and Align on every claimed cell with `n ≤ 8, k ≤ 4`
//! (quick: `n ≤ 6`); graph searching additionally at its two smallest
//! feasible instances `(n, k) = (11, 5)` (Ring Clearing) and `(10, 7)`
//! (NminusThree) in the full grid — below `n = 10` searching is impossible
//! (Theorem 5) and those cells are recorded as vacuous.
//!
//! ```text
//! exp_modelcheck [--quick] [--json <path>] [--seed <u64>] [--sequential]
//!                [--selftest] [--max-n <usize>]
//! ```
//!
//! `--selftest` additionally checks that a deliberately broken protocol (one
//! decision-table entry mutated) is *falsified* with a counterexample that
//! replays on the engine — a canary for the checker itself.

use std::time::Instant;

use rr_bench::sweep::{exit_if_failed, grid_map, ExpArgs, ModelCheckRecord};
use rr_checker::explore::{
    check_protocol, replay_counterexample, CheckOutcome, ExploreOptions, MutatedProtocol,
    ViolationKind,
};
use rr_corda::{Decision, InterleavingMode, Protocol, ViewIndex};
use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, Invariant, SearchingInvariant};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;
use rr_ring::Configuration;

/// The tasks of the model-check grid (Align is checked as its own task: it
/// is the shared first phase the other algorithms build on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellTask {
    Gathering,
    Alignment,
    Searching,
}

impl CellTask {
    fn slug(self) -> &'static str {
        match self {
            CellTask::Gathering => "gathering",
            CellTask::Alignment => "alignment",
            CellTask::Searching => "graph-searching",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    task: CellTask,
    n: usize,
    k: usize,
    mode: InterleavingMode,
}

/// Whether the paper claims an algorithm for the cell.
fn claimed(task: CellTask, n: usize, k: usize) -> bool {
    match task {
        CellTask::Gathering => protocol_for(Task::Gathering, n, k).is_some(),
        // Align needs k ≥ 3 robots and a rigid configuration to exist.
        CellTask::Alignment => k >= 3 && k + 2 < n,
        CellTask::Searching => protocol_for(Task::GraphSearching, n, k).is_some(),
    }
}

fn check_cell_protocol<P: Protocol + Clone>(
    protocol: &P,
    invariant: &dyn Invariant,
    cell: &Cell,
    record: &mut ModelCheckRecord,
) {
    let initials = enumerate_rigid_configurations(cell.n, cell.k);
    record.initial_classes = initials.len() as u64;
    if initials.is_empty() {
        record.vacuous = true;
        record.ok = true;
        return;
    }
    record.ok = true;
    for initial in &initials {
        let report = match check_protocol(
            protocol,
            initial,
            invariant,
            &ExploreOptions::new(cell.mode),
        ) {
            Ok(report) => report,
            Err(e) => {
                record.ok = false;
                record.counterexample = format!("engine rejected the initial state: {e}");
                return;
            }
        };
        record.states += report.states as u64;
        record.quotient_states += report.quotient_states as u64;
        record.edges += report.edges;
        record.target_states += report.target_states as u64;
        record.progress_edges += report.progress_edges;
        match &report.outcome {
            CheckOutcome::Verified => {}
            CheckOutcome::BudgetExceeded { explored } => {
                record.ok = false;
                record.counterexample =
                    format!("state budget exceeded after {explored} states from {initial}");
                return;
            }
            CheckOutcome::Falsified(ce) => {
                record.ok = false;
                record.counterexample = format!("from {initial}: {}", ce.render());
                return;
            }
        }
    }
}

fn run_cell(cell: Cell, experiment: &str) -> ModelCheckRecord {
    let started = Instant::now();
    let mut record = ModelCheckRecord {
        experiment: experiment.to_string(),
        task: cell.task.slug().to_string(),
        n: cell.n,
        k: cell.k,
        mode: cell.mode.name().to_string(),
        initial_classes: 0,
        states: 0,
        quotient_states: 0,
        edges: 0,
        target_states: 0,
        progress_edges: 0,
        vacuous: false,
        ok: false,
        counterexample: String::new(),
        wall_nanos: 0,
    };
    if !claimed(cell.task, cell.n, cell.k) {
        record.vacuous = true;
        record.ok = true;
        record.wall_nanos = started.elapsed().as_nanos();
        return record;
    }
    match cell.task {
        CellTask::Gathering => check_cell_protocol(
            &GatheringProtocol::new(),
            &GatheringInvariant::new(),
            &cell,
            &mut record,
        ),
        CellTask::Alignment => check_cell_protocol(
            &AlignProtocol::new(),
            &AlignmentInvariant::new(),
            &cell,
            &mut record,
        ),
        CellTask::Searching => {
            let protocol =
                protocol_for(Task::GraphSearching, cell.n, cell.k).expect("claimed cell");
            check_cell_protocol(&protocol, &SearchingInvariant::new(), &cell, &mut record);
        }
    }
    record.wall_nanos = started.elapsed().as_nanos();
    record
}

/// The canary: a gathering protocol with ONE decision-table entry mutated
/// (the initial class idles → fair no-progress lasso) and an Align protocol
/// with one entry mutated into a move (→ collision).  Both must be falsified
/// with counterexamples that replay on the engine.
fn selftest() -> Result<(), String> {
    // Liveness mutant.
    let initial = enumerate_rigid_configurations(7, 3)
        .into_iter()
        .next()
        .expect("rigid (7,3)");
    let mutant = MutatedProtocol::new(
        GatheringProtocol::new(),
        MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
        Decision::Idle,
    );
    for mode in [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ] {
        let report = check_protocol(
            &mutant,
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode),
        )
        .map_err(|e| e.to_string())?;
        let Some(ce) = report.counterexample() else {
            return Err(format!("{mode}: idle mutant was NOT falsified"));
        };
        if ce.kind != ViolationKind::Liveness {
            return Err(format!("{mode}: expected a liveness counterexample"));
        }
        let replay = replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce)
            .map_err(|e| e.to_string())?;
        if !replay.reproduced {
            return Err(format!("{mode}: lasso did not replay: {}", replay.detail));
        }
        println!("# selftest {mode}: idle mutant falsified: {}", ce.render());
    }
    // Safety mutant: at C* of (8, 4) a robot's clockwise neighbour is
    // occupied; forcing that class to move lets the adversary collide.
    let c_star = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
    let mutant = MutatedProtocol::new(
        AlignProtocol::new(),
        MutatedProtocol::<AlignProtocol>::trigger_for(&c_star),
        Decision::Move(ViewIndex::First),
    );
    let report = check_protocol(
        &mutant,
        &c_star,
        &AlignmentInvariant::new(),
        &ExploreOptions::new(InterleavingMode::AsyncPhases),
    )
    .map_err(|e| e.to_string())?;
    let Some(ce) = report.counterexample() else {
        return Err("move mutant was NOT falsified".to_string());
    };
    if ce.kind != ViolationKind::Safety || ce.prefix.len() != 2 {
        return Err(format!(
            "expected a minimal 2-step safety trace, got {}",
            ce.render()
        ));
    }
    let replay = replay_counterexample(&mutant, &c_star, &AlignmentInvariant::new(), ce)
        .map_err(|e| e.to_string())?;
    if !replay.reproduced {
        return Err(format!("safety trace did not replay: {}", replay.detail));
    }
    println!(
        "# selftest: move mutant falsified minimally: {}",
        ce.render()
    );
    Ok(())
}

fn main() {
    let args = ExpArgs::parse(0);
    let max_n: usize = args
        .value("--max-n")
        .map_or(if args.quick { 6 } else { 8 }, |v| {
            v.parse().expect("--max-n takes a usize")
        });

    if args.flag("--selftest") {
        if let Err(e) = selftest() {
            eprintln!("E10 selftest FAILED: {e}");
            std::process::exit(1);
        }
    }

    let mut cells = Vec::new();
    for task in [
        CellTask::Gathering,
        CellTask::Alignment,
        CellTask::Searching,
    ] {
        for n in 4..=max_n {
            for k in 2..=4usize.min(n) {
                for mode in [
                    InterleavingMode::SsyncSubsets,
                    InterleavingMode::AsyncPhases,
                ] {
                    cells.push(Cell { task, n, k, mode });
                }
            }
        }
    }
    if !args.quick && max_n >= 8 {
        // The two smallest *feasible* searching instances, beyond the n ≤ 8
        // acceptance floor: Ring Clearing and NminusThree.
        for (n, k) in [(11usize, 5usize), (10, 7)] {
            for mode in [
                InterleavingMode::SsyncSubsets,
                InterleavingMode::AsyncPhases,
            ] {
                cells.push(Cell {
                    task: CellTask::Searching,
                    n,
                    k,
                    mode,
                });
            }
        }
    }

    let records = grid_map(cells, args.mode(), |cell| run_cell(cell, "E10"));

    println!(
        "# E10 — exhaustive model check (all schedules), {} cells",
        records.len()
    );
    println!("# task            n   k  mode   classes    states  quotient     edges  verdict");
    for r in &records {
        let verdict = if r.vacuous {
            "vacuous".to_string()
        } else if r.ok {
            "PROVED".to_string()
        } else {
            format!("FALSIFIED {}", r.counterexample)
        };
        println!(
            "  {:<14} {:>2}  {:>2}  {:<5} {:>8} {:>9} {:>9} {:>9}  {verdict}",
            r.task, r.n, r.k, r.mode, r.initial_classes, r.states, r.quotient_states, r.edges
        );
    }

    args.write_json("E10", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    exit_if_failed("E10", failures, records.len());
}
