//! Experiment E4 (Theorem 6 / Figure 12): Ring Clearing — perpetual clearing
//! and exploration statistics across the supported parameter band, under
//! three scheduler models.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_clearing -- [--quick] [--json <path>] [--seed <u64>] [--sequential]
//! ```

use rr_bench::sweep::{ExpArgs, Sweep};
use rr_bench::CLEARING_INSTANCES;
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn main() {
    let args = ExpArgs::parse(0xE4);
    let instances: Vec<(usize, usize)> = if args.quick {
        CLEARING_INSTANCES
            .iter()
            .copied()
            .filter(|&(n, _)| n <= 16)
            .collect()
    } else {
        CLEARING_INSTANCES.to_vec()
    };
    let sweep = Sweep {
        experiment: "E4",
        task: Task::GraphSearching,
        instances,
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed: args.root_seed,
        targets: TaskTargets::demonstrate(10, 1),
        budget_per_n: 30_000,
        budget_flat: 0,
        async_budget_factor: 2,
    };
    let records = sweep.run(args.mode());

    println!("# E4 — Ring Clearing (5 <= k < n-3): clearings, steady period, exploration");
    println!(
        "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
        "n", "k", "scheduler", "clearings", "steady period", "exploration", "moves"
    );
    for r in &records {
        println!(
            "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
            r.n, r.k, r.scheduler, r.clearings, r.steady_period, r.explorations, r.moves
        );
    }
    println!();
    println!("# shape check: the steady clearing period equals n-k moves per cycle, independent");
    println!("# of the scheduler (the adversary changes how many activations it takes, not the");
    println!("# number of moves).");

    args.write_json("E4", &records);
    let failures = records.iter().filter(|r| !r.ok).count();
    rr_bench::sweep::exit_if_failed("E4", failures, records.len());
}
