//! Experiment E4 (Theorem 6 / Figure 12): Ring Clearing — perpetual clearing
//! and exploration statistics across the supported parameter band, under
//! three scheduler models.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_clearing
//! ```

use rayon::prelude::*;
use rr_bench::{rigid_start, CLEARING_INSTANCES};
use rr_corda::scheduler::{AsynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler};
use rr_core::driver::{run_dispatched, TaskTargets};
use rr_core::unified::Task;

fn main() {
    println!("# E4 — Ring Clearing (5 <= k < n-3): clearings, steady period, exploration");
    println!(
        "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
        "n", "k", "scheduler", "clearings", "steady period", "exploration", "moves"
    );
    let mut jobs = Vec::new();
    for &(n, k) in CLEARING_INSTANCES {
        for scheduler in ["round-robin", "ssync", "async"] {
            jobs.push((n, k, scheduler));
        }
    }
    let rows: Vec<_> = jobs
        .par_iter()
        .map(|&(n, k, scheduler)| {
            let start = rigid_start(n, k);
            let budget = 30_000 * n as u64;
            let targets = TaskTargets::demonstrate(10, 1);
            let report = match scheduler {
                "round-robin" => {
                    let mut s = RoundRobinScheduler::new();
                    run_dispatched(Task::GraphSearching, &start, &mut s, targets, budget)
                }
                "ssync" => {
                    let mut s = SemiSynchronousScheduler::seeded(3);
                    run_dispatched(Task::GraphSearching, &start, &mut s, targets, budget)
                }
                _ => {
                    let mut s = AsynchronousScheduler::seeded(3);
                    run_dispatched(Task::GraphSearching, &start, &mut s, targets, 2 * budget)
                }
            }
            .expect("run succeeds");
            let stats = report.searching().expect("searching stats");
            (n, k, scheduler, stats)
        })
        .collect();
    for (n, k, scheduler, stats) in rows {
        let steady = stats
            .clearing_intervals
            .iter()
            .skip(1)
            .copied()
            .max()
            .unwrap_or(0);
        println!(
            "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
            n,
            k,
            scheduler,
            stats.clearings,
            steady,
            stats.min_exploration_completions,
            stats.moves
        );
    }
    println!();
    println!("# shape check: the steady clearing period equals n-k moves per cycle, independent");
    println!("# of the scheduler (the adversary changes how many activations it takes, not the");
    println!("# number of moves).");
}
