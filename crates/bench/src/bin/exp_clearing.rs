//! Experiment E4 (Theorem 6 / Figure 12): Ring Clearing — perpetual clearing
//! and exploration statistics across the supported parameter band, under
//! three scheduler models.
//!
//! ```text
//! cargo run --release -p rr-bench --bin exp_clearing -- [--quick] [--json <path>] [--seed <u64>] [--sequential] [--ledger <path>] [--cache <dir>]
//! ```

use rr_bench::grid::preset;
use rr_bench::sweep::ExpArgs;

fn main() {
    let args = ExpArgs::parse(0xE4);
    let spec = preset("clearing", args.quick, Some(args.root_seed)).expect("builtin preset");
    let run = args.run_grid(&spec);

    println!("# E4 — Ring Clearing (5 <= k < n-3): clearings, steady period, exploration");
    if let Some(records) = run.records.sweep().filter(|r| !r.is_empty()) {
        println!(
            "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
            "n", "k", "scheduler", "clearings", "steady period", "exploration", "moves"
        );
        for r in records {
            println!(
                "{:>4} {:>4} {:>12} {:>10} {:>14} {:>12} {:>10}",
                r.n, r.k, r.scheduler, r.clearings, r.steady_period, r.explorations, r.moves
            );
        }
        println!();
        println!(
            "# shape check: the steady clearing period equals n-k moves per cycle, independent"
        );
        println!(
            "# of the scheduler (the adversary changes how many activations it takes, not the"
        );
        println!("# number of moves).");
    }

    args.finish_grid(&spec, &run);
}
