//! E12 — engine-wide throughput of the CORDA stepping pipeline.
//!
//! Where E3–E6 verify *what* the protocols do and E10/E11 prove it, this
//! experiment measures *how fast* the engine does it: scheduler steps per
//! second of `Engine::step` across ring sizes, team sizes and scheduler
//! families, for both Look pipelines:
//!
//! * `LookPath::Incremental` — the O(k), zero-allocation pipeline (views
//!   read off the configuration's maintained occupancy cycle into
//!   engine-owned scratch buffers);
//! * `LookPath::ScanBaseline` — the pre-incremental O(n)-walk, allocating
//!   pipeline, kept alive exactly so this binary can measure the speedup
//!   against a live, provably equivalent baseline (each cell asserts the two
//!   runs agree on every deterministic counter and on the final robot
//!   positions; `ok` is false otherwise).
//!
//! A third measurement per cell — a Look/Execute micro-loop over prebuilt
//! scheduler steps and a reused `StepReport` — isolates the Look phase from
//! scheduler overhead and, thanks to the counting global allocator installed
//! by this binary, pins the "zero allocations per Look" claim as a measured
//! number (`look_allocs_per_kstep`).
//!
//! The workload is the `GreedyGapWalker` with exclusivity off and traces
//! disabled: every robot keeps moving forever, so the engine is saturated
//! with fresh Look + Move work on every cell.
//!
//! **E13 — round leaping** rides in the same binary: a quiescent-heavy
//! gathering endgame (a multiplicity of `k-1` robots plus one walker half a
//! ring away) runs to completion in `StepPath::Leap` and
//! `StepPath::StepBaseline` mode under round-robin, semi-synchronous and
//! fully synchronous schedulers.  Both modes must agree on every counter and
//! on the final positions; the speedup column is the point of the
//! experiment — under the fully synchronous scheduler the whole approach
//! collapses into O(k) leaps, so the steps-equivalent/s ratio is the
//! headline number (target: ≥ 20x at n ≥ 1024).  E13 records are written to
//! the `--leap-json <path>` report.
//!
//! ```text
//! exp_throughput [--quick] [--json <path>] [--leap-json <path>] [--seed <u64>]
//!                [--sequential] [--steps <u64>]
//! ```
//!
//! Cells always run sequentially (parallel timing would distort the
//! per-second figures); `--sequential` is accepted for CLI uniformity.
//! Records go to the JSON report in `rr-sweep/v1` schema
//! (`ThroughputRecord`); the `*_per_sec` fields are machine-dependent and
//! exist to accumulate the perf trajectory in the CI artifacts.

// The counting allocator is the one purposeful use of `unsafe` in the
// workspace: it forwards to `System` verbatim and only bumps a counter.
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rr_bench::rigid_start;
use rr_bench::sweep::{exit_if_failed, write_json_records, ExpArgs, ThroughputRecord};
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::{
    Engine, EngineOptions, LookPath, MultiplicityCapability, SchedulerKind, SchedulerStep,
    StepPath, StepReport, TraceMode, ViewOrder,
};
use rr_core::gathering::GatheringProtocol;
use rr_ring::{Configuration, NodeId, Ring};

/// Global allocator that counts allocation calls (alloc, alloc_zeroed,
/// realloc) and otherwise forwards to [`System`].  `allocs_per_kstep` and
/// `look_allocs_per_kstep` in the records are read off this counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards the exact arguments to `System`, whose
// `GlobalAlloc` contract we inherit unchanged; the counter update has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds `layout` validity.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds `layout` validity.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the realloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds the dealloc contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The `(n, k)` grid: every cross product cell with room for a rigid
/// configuration (`k + 2 < n`).
fn grid(quick: bool) -> Vec<(usize, usize)> {
    let (ns, ks): (&[usize], &[usize]) = if quick {
        (&[16, 256], &[4, 8])
    } else {
        (&[16, 64, 256, 1024], &[4, 8, 16])
    };
    let mut cells = Vec::new();
    for &n in ns {
        for &k in ks {
            if k + 2 < n {
                cells.push((n, k));
            }
        }
    }
    cells
}

/// Engine options of the throughput workload for one Look pipeline.
fn workload_options(path: LookPath) -> EngineOptions {
    EngineOptions {
        capability: MultiplicityCapability::None,
        enforce_exclusivity: false,
        trace: TraceMode::Disabled,
        view_order: ViewOrder::CwFirst,
        look_path: path,
        step_path: StepPath::StepBaseline,
    }
}

/// Deterministic per-cell seed, derived from the root seed and the cell
/// coordinates exactly like `Sweep::jobs` derives job seeds.
fn cell_seed(root: u64, n: usize, k: usize, scheduler_index: usize) -> u64 {
    let coords = (n as u64) << 40 | (k as u64) << 24 | (scheduler_index as u64) << 16;
    rand::RngCore::next_u64(&mut rand::SplitMix64::new(root ^ coords))
}

/// One timed scheduler-driven engine run.
struct PipelineRun {
    steps: u64,
    looks: u64,
    moves: u64,
    nanos: u128,
    allocs: u64,
    positions: Vec<NodeId>,
}

fn run_pipeline(
    n: usize,
    k: usize,
    kind: SchedulerKind,
    seed: u64,
    budget: u64,
    path: LookPath,
) -> PipelineRun {
    let start = rigid_start(n, k);
    let mut engine =
        Engine::new(GreedyGapWalker, start, workload_options(path)).expect("valid workload");
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let started = Instant::now();
    let report = kind.with(seed, |scheduler| {
        engine.run_until(scheduler, budget, |_| false)
    });
    let nanos = started.elapsed().as_nanos();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    PipelineRun {
        steps: report.steps,
        looks: engine.look_count(),
        moves: engine.move_count(),
        nanos,
        allocs,
        positions: engine.positions(),
    }
}

/// The Look/Execute micro-loop: alternating `SchedulerStep::Look` /
/// `SchedulerStep::Execute` over prebuilt steps and a reused report, so the
/// measured loop contains nothing but the Look pipeline and the move
/// executor.  Returns (steps, looks, nanos, allocs) measured *after* one
/// warm-up round has grown every scratch buffer to its final capacity.
fn run_look_microloop(n: usize, k: usize, budget: u64) -> (u64, u64, u128, u64) {
    let start = rigid_start(n, k);
    let mut engine = Engine::new(
        GreedyGapWalker,
        start,
        workload_options(LookPath::Incremental),
    )
    .expect("valid workload");
    let look_steps: Vec<SchedulerStep> = (0..k).map(SchedulerStep::Look).collect();
    let exec_steps: Vec<SchedulerStep> = (0..k).map(SchedulerStep::Execute).collect();
    let mut report = StepReport::default();
    let step_pair = |engine: &mut Engine<GreedyGapWalker>, report: &mut StepReport, r: usize| {
        engine
            .step_into(&look_steps[r], &mut (), report)
            .expect("look step");
        engine
            .step_into(&exec_steps[r], &mut (), report)
            .expect("execute step");
    };
    // Warm-up round: grows the scratch views, the report's move vector and
    // the per-robot bookkeeping to their steady-state capacities.
    for r in 0..k {
        step_pair(&mut engine, &mut report, r);
    }
    let looks_before = engine.look_count();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let started = Instant::now();
    let mut steps = 0u64;
    'driving: loop {
        for r in 0..k {
            step_pair(&mut engine, &mut report, r);
            steps += 2;
            if steps >= budget {
                break 'driving;
            }
        }
    }
    let nanos = started.elapsed().as_nanos();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    (steps, engine.look_count() - looks_before, nanos, allocs)
}

fn per_sec(count: u64, nanos: u128) -> u64 {
    u64::try_from(u128::from(count) * 1_000_000_000 / nanos.max(1)).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// E13 — round leaping on the quiescent gathering endgame.
// ---------------------------------------------------------------------------

/// The E13 `(n, k)` grid.
fn leap_grid(quick: bool) -> Vec<(usize, usize)> {
    let ns: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };
    let mut cells = Vec::new();
    for &n in ns {
        for &k in &[8usize, 16] {
            cells.push((n, k));
        }
    }
    cells
}

/// The E13 scheduler families: the adversarial ones the sweeps use plus the
/// fully synchronous family `Engine::leap` batches.
const LEAP_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::RoundRobin,
    SchedulerKind::SemiSynchronous,
    SchedulerKind::FullySynchronous,
];

/// The quiescent-heavy workload: `k-1` robots already merged at node 0 and a
/// single walker half a ring away — the gathering endgame, where every round
/// is one walker move and `k-1` idle confirmations.
fn gathering_endgame(n: usize, k: usize) -> Configuration {
    let mut counts = vec![0u32; n];
    counts[0] = u32::try_from(k - 1).expect("k fits u32");
    counts[n / 2] = 1;
    Configuration::from_counts(Ring::new(n), counts).expect("valid endgame")
}

/// Engine options of the E13 workload for one step path.
fn leap_options(path: StepPath) -> EngineOptions {
    EngineOptions {
        capability: MultiplicityCapability::Local,
        enforce_exclusivity: false,
        trace: TraceMode::Disabled,
        view_order: ViewOrder::CwFirst,
        look_path: LookPath::Incremental,
        step_path: path,
    }
}

/// One timed gathering-endgame run (after one warm-up run on a recycled
/// engine, so the measured run allocates only what the hot path allocates).
fn run_leap_cell(
    n: usize,
    k: usize,
    kind: SchedulerKind,
    seed: u64,
    path: StepPath,
) -> PipelineRun {
    let start = gathering_endgame(n, k);
    // Budget with slack: the walker needs about n/2 moves, each taking one
    // round; round-robin spends k scheduler steps per round and the random
    // semi-synchronous scheduler activates the walker only in some rounds.
    let budget = (n as u64) * (k as u64) * 4;
    let options = leap_options(path);
    let mut engine = Engine::new(GatheringProtocol, start.clone(), options).expect("valid endgame");
    let gathered = |e: &Engine<GatheringProtocol>| e.configuration().is_gathered();
    kind.with(seed, |s| engine.run_until(s, budget, gathered));
    engine
        .reset(GatheringProtocol, &start, options)
        .expect("reset endgame");
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let started = Instant::now();
    let report = kind.with(seed, |s| engine.run_until(s, budget, gathered));
    let nanos = started.elapsed().as_nanos();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    assert!(
        engine.configuration().is_gathered(),
        "E13 run did not gather (n={n}, k={k}, {kind:?}, {path:?})"
    );
    PipelineRun {
        steps: report.steps,
        looks: engine.look_count(),
        moves: engine.move_count(),
        nanos,
        allocs,
        positions: engine.positions(),
    }
}

/// Runs the E13 grid and returns the records (experiment "E13"; the
/// `baseline_*` columns are the `StepPath::StepBaseline` run of the same
/// cell, `steps` count scheduler steps — for the fully synchronous family a
/// leap of `L` rounds counts as `L` steps, which is what makes the
/// steps-equivalent/s columns comparable).
fn run_leap_experiment(quick: bool, root_seed: u64) -> Vec<ThroughputRecord> {
    let mut records = Vec::new();
    for (n, k) in leap_grid(quick) {
        for (si, &kind) in LEAP_SCHEDULERS.iter().enumerate() {
            let seed = cell_seed(root_seed ^ 0xE13, n, k, si);
            let cell_started = Instant::now();
            let leap = run_leap_cell(n, k, kind, seed, StepPath::Leap);
            let step = run_leap_cell(n, k, kind, seed, StepPath::StepBaseline);
            let agree = leap.steps == step.steps
                && leap.looks == step.looks
                && leap.moves == step.moves
                && leap.positions == step.positions;
            let steps_per_sec = per_sec(leap.steps, leap.nanos);
            let baseline_steps_per_sec = per_sec(step.steps, step.nanos);
            records.push(ThroughputRecord {
                experiment: "E13".to_string(),
                task: "leap-gathering".to_string(),
                n,
                k,
                scheduler: kind.name().to_string(),
                seed,
                steps: leap.steps,
                looks: leap.looks,
                moves: leap.moves,
                steps_per_sec,
                baseline_steps_per_sec,
                speedup_x100: steps_per_sec * 100 / baseline_steps_per_sec.max(1),
                looks_per_sec: per_sec(leap.looks, leap.nanos),
                allocs_per_kstep: leap.allocs * 1000 / leap.steps.max(1),
                look_allocs_per_kstep: 0,
                ok: agree,
                detail: if agree {
                    String::new()
                } else {
                    format!(
                        "step paths diverged: leap (steps {}, looks {}, moves {}) \
                         vs baseline (steps {}, looks {}, moves {})",
                        leap.steps, leap.looks, leap.moves, step.steps, step.looks, step.moves
                    )
                },
                wall_nanos: cell_started.elapsed().as_nanos(),
            });
        }
    }
    records
}

fn main() {
    let args = ExpArgs::parse(0xE12);
    let budget: u64 = args
        .value("--steps")
        .map_or(if args.quick { 20_000 } else { 100_000 }, |s| {
            s.parse().expect("--steps takes a u64")
        });

    let mut records = Vec::new();
    for (n, k) in grid(args.quick) {
        for (si, &kind) in SchedulerKind::ALL.iter().enumerate() {
            let seed = cell_seed(args.root_seed, n, k, si);
            let cell_started = Instant::now();
            let incremental = run_pipeline(n, k, kind, seed, budget, LookPath::Incremental);
            let baseline = run_pipeline(n, k, kind, seed, budget, LookPath::ScanBaseline);
            let (micro_steps, micro_looks, micro_nanos, micro_allocs) =
                run_look_microloop(n, k, budget);

            let agree = incremental.steps == baseline.steps
                && incremental.looks == baseline.looks
                && incremental.moves == baseline.moves
                && incremental.positions == baseline.positions;
            let steps_per_sec = per_sec(incremental.steps, incremental.nanos);
            let baseline_steps_per_sec = per_sec(baseline.steps, baseline.nanos);
            records.push(ThroughputRecord {
                experiment: "E12".to_string(),
                task: "throughput".to_string(),
                n,
                k,
                scheduler: kind.name().to_string(),
                seed,
                steps: incremental.steps,
                looks: incremental.looks,
                moves: incremental.moves,
                steps_per_sec,
                baseline_steps_per_sec,
                speedup_x100: steps_per_sec * 100 / baseline_steps_per_sec.max(1),
                looks_per_sec: per_sec(micro_looks, micro_nanos),
                allocs_per_kstep: incremental.allocs * 1000 / incremental.steps.max(1),
                look_allocs_per_kstep: micro_allocs * 1000 / micro_steps.max(1),
                ok: agree,
                detail: if agree {
                    String::new()
                } else {
                    format!(
                        "pipelines diverged: incremental (steps {}, looks {}, moves {}) \
                         vs baseline (steps {}, looks {}, moves {})",
                        incremental.steps,
                        incremental.looks,
                        incremental.moves,
                        baseline.steps,
                        baseline.looks,
                        baseline.moves
                    )
                },
                wall_nanos: cell_started.elapsed().as_nanos(),
            });
        }
    }

    println!("# E12 — engine throughput: incremental O(k) Look pipeline vs O(n) scan baseline");
    println!("# budget {budget} scheduler steps per run; speedup = incremental / baseline");
    println!(
        "{:>5} {:>3} {:>12} {:>12} {:>12} {:>8} {:>11} {:>10}",
        "n", "k", "scheduler", "steps/s", "base/s", "speedup", "looks/s", "lk-alloc/k"
    );
    for r in &records {
        println!(
            "{:>5} {:>3} {:>12} {:>12} {:>12} {:>7}x {:>11} {:>10}",
            r.n,
            r.k,
            r.scheduler,
            r.steps_per_sec,
            r.baseline_steps_per_sec,
            format!("{}.{:02}", r.speedup_x100 / 100, r.speedup_x100 % 100),
            r.looks_per_sec,
            r.look_allocs_per_kstep,
        );
    }
    let min_large = records
        .iter()
        .filter(|r| r.n >= 256)
        .map(|r| r.speedup_x100)
        .min();
    if let Some(min) = min_large {
        println!();
        println!(
            "# minimum speedup on n >= 256 cells: {}.{:02}x (acceptance target: >= 3x)",
            min / 100,
            min % 100
        );
    }
    let zero_alloc = records.iter().all(|r| r.look_allocs_per_kstep == 0);
    println!(
        "# look micro-loop allocations: {}",
        if zero_alloc {
            "0 per step on every cell (zero-allocation Look pipeline)"
        } else {
            "NON-ZERO on some cell — see look_allocs_per_kstep"
        }
    );

    args.write_json("E12", &records);
    let failures = records.iter().filter(|r| !r.ok).count();

    // E13 — round leaping on the quiescent gathering endgame.
    let leap_records = run_leap_experiment(args.quick, args.root_seed);
    println!();
    println!(
        "# E13 — round leaping: StepPath::Leap vs StepPath::StepBaseline on the gathering endgame"
    );
    println!("# speedup = leap / baseline in scheduler-steps-equivalent per second");
    println!(
        "{:>5} {:>3} {:>12} {:>14} {:>14} {:>9} {:>9}",
        "n", "k", "scheduler", "leap steq/s", "base steq/s", "speedup", "allocs/k"
    );
    for r in &leap_records {
        println!(
            "{:>5} {:>3} {:>12} {:>14} {:>14} {:>8}x {:>9}",
            r.n,
            r.k,
            r.scheduler,
            r.steps_per_sec,
            r.baseline_steps_per_sec,
            format!("{}.{:02}", r.speedup_x100 / 100, r.speedup_x100 % 100),
            r.allocs_per_kstep,
        );
    }
    let min_fsync_large = leap_records
        .iter()
        .filter(|r| r.n >= 1024 && r.scheduler == "fsync")
        .map(|r| r.speedup_x100)
        .min();
    if let Some(min) = min_fsync_large {
        println!();
        println!(
            "# minimum fsync speedup on n >= 1024 cells: {}.{:02}x (acceptance target: >= 20x)",
            min / 100,
            min % 100
        );
    }
    if let Some(path) = args.value("--leap-json") {
        write_json_records(
            std::path::Path::new(path),
            "E13",
            args.root_seed,
            &leap_records,
        );
    }
    let leap_failures = leap_records.iter().filter(|r| !r.ok).count();
    exit_if_failed(
        "E12+E13",
        failures + leap_failures,
        records.len() + leap_records.len(),
    );
}
