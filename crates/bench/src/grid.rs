//! Durable grid declarations and the one grid-execution path.
//!
//! A [`GridSpec`] is a [`crate::sweep::Sweep`] (or an Align
//! measurement grid) **as data**: it has a canonical line-oriented text
//! encoding (`rr-sweepd-grid/v1`) that round-trips through
//! [`GridSpec::canonical_encoding`] / [`GridSpec::parse`], lands in the
//! sweep service's spool as a file, and — hashed together with the engine's
//! semantic version — addresses the job's result in the content-addressed
//! [`ResultCache`].
//!
//! [`execute_grid`] is the single execution path: the `rr-sweepd` daemon
//! calls it for every spooled job, and the `exp_*` binaries call it through
//! [`ExpArgs::run_grid`](crate::sweep::ExpArgs::run_grid) — so an
//! experiment run at the shell and a job submitted to the service produce
//! the same ledger bytes by construction.  It consults the cache, resumes a
//! partial ledger at the first missing cell, streams completed records into
//! the ledger (fsync'd per contiguous batch) and publishes the completed
//! ledger back to the cache.
//!
//! The encoding is deliberately *not* JSON: the vendored serde stack is
//! serialize-only, and a line-oriented `key=value` format keeps hand-written
//! spec files reviewable.  Example:
//!
//! ```text
//! rr-sweepd-grid/v1
//! experiment=E6
//! root_seed=230
//! instances=8x4,10x3,12x5
//! kind=sweep
//! task=gathering
//! schedulers=round-robin,ssync,async
//! seeds_per_cell=1
//! clearings=0
//! explorations=0
//! budget_per_n=100000
//! budget_flat=0
//! async_budget_factor=2
//! ```

use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;
use serde::Serialize;

use crate::cache::{cache_key, ResultCache};
use crate::ledger::{self, Ledger, LedgerResume};
use crate::sweep::{grid_map, task_slug, ExecMode, RunOptions, RunRecord, Sweep, SweepHeader};

/// First line of every encoded grid.
pub const GRID_MAGIC: &str = "rr-sweepd-grid/v1";

/// One Align convergence measurement (schema `rr-sweep/v1`, experiment
/// `E3`): moves to reach `C*` over a set of rigid starts.
///
/// Lives here (not in `exp_align`) because Align grids are first-class
/// sweep-service jobs: their records flow through the same ledgers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AlignRecord {
    /// Experiment identifier (e.g. "E3").
    pub experiment: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Starting configurations measured.
    pub starts: usize,
    /// Minimum moves to reach `C*`.
    pub min_moves: u64,
    /// Maximum moves to reach `C*`.
    pub max_moves: u64,
    /// Total moves over all starts (for averaging).
    pub total_moves: u64,
    /// Whether every start converged to `C*`.
    pub ok: bool,
}

/// What kind of cells a grid expands to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridKind {
    /// A [`Sweep`] over the batch driver: one [`RunRecord`] per
    /// (instance, scheduler, seed) cell.
    Sweep {
        /// The task every cell runs.
        task: Task,
        /// Scheduler families, in declaration order.
        schedulers: Vec<SchedulerKind>,
        /// Seeded repetitions per (instance, scheduler) cell.
        seeds_per_cell: u64,
        /// Early-stop targets (0/0 = open-ended).
        targets: TaskTargets,
        /// Step budget: `budget_per_n * n + budget_flat`.
        budget_per_n: u64,
        /// Flat part of the step budget.
        budget_flat: u64,
        /// Extra budget factor for the asynchronous adversary.
        async_budget_factor: u64,
    },
    /// An Align convergence grid: one [`AlignRecord`] per `(n, k)` instance
    /// (exhaustive starts for `n <= 14`, `sample_starts` random rigid starts
    /// otherwise — mirroring `measure_align`).
    Align {
        /// Random-start sample size for large rings.
        sample_starts: usize,
    },
}

/// A complete, durable grid declaration: experiment id, root seed, the
/// `(n, k)` instance list and the cell family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// Experiment identifier stamped into every record (e.g. "E6").  Also
    /// used in spool file names, so it is restricted to `[A-Za-z0-9._-]`.
    pub experiment: String,
    /// Root seed; all cell randomness derives from it.
    pub root_seed: u64,
    /// The `(n, k)` instance list, in declaration order.
    pub instances: Vec<(usize, usize)>,
    /// The cell family.
    pub kind: GridKind,
}

fn parse_task(slug: &str) -> Option<Task> {
    [Task::Exploration, Task::GraphSearching, Task::Gathering]
        .into_iter()
        .find(|&t| task_slug(t) == slug)
}

fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    SchedulerKind::ALL.into_iter().find(|k| k.name() == name)
}

impl GridSpec {
    /// The canonical `rr-sweepd-grid/v1` encoding: fixed key order, no
    /// comments, one trailing newline.  These exact bytes are what the
    /// content-addressed cache key hashes, so two specs are interchangeable
    /// iff their canonical encodings are byte-equal.
    #[must_use]
    pub fn canonical_encoding(&self) -> String {
        let mut out = String::new();
        out.push_str(GRID_MAGIC);
        out.push('\n');
        out.push_str(&format!("experiment={}\n", self.experiment));
        out.push_str(&format!("root_seed={}\n", self.root_seed));
        let instances: Vec<String> = self
            .instances
            .iter()
            .map(|(n, k)| format!("{n}x{k}"))
            .collect();
        out.push_str(&format!("instances={}\n", instances.join(",")));
        match &self.kind {
            GridKind::Sweep {
                task,
                schedulers,
                seeds_per_cell,
                targets,
                budget_per_n,
                budget_flat,
                async_budget_factor,
            } => {
                out.push_str("kind=sweep\n");
                out.push_str(&format!("task={}\n", task_slug(*task)));
                let names: Vec<&str> = schedulers.iter().map(|s| s.name()).collect();
                out.push_str(&format!("schedulers={}\n", names.join(",")));
                out.push_str(&format!("seeds_per_cell={seeds_per_cell}\n"));
                out.push_str(&format!("clearings={}\n", targets.clearings));
                out.push_str(&format!("explorations={}\n", targets.explorations));
                out.push_str(&format!("budget_per_n={budget_per_n}\n"));
                out.push_str(&format!("budget_flat={budget_flat}\n"));
                out.push_str(&format!("async_budget_factor={async_budget_factor}\n"));
            }
            GridKind::Align { sample_starts } => {
                out.push_str("kind=align\n");
                out.push_str(&format!("sample_starts={sample_starts}\n"));
            }
        }
        out
    }

    /// Parses an `rr-sweepd-grid/v1` document.  Accepts blank lines and `#`
    /// comments (hand-written spec files), but [`GridSpec::canonical_encoding`]
    /// of the result is canonical regardless of the input formatting.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn parse(text: &str) -> Result<GridSpec, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(GRID_MAGIC) {
            return Err(format!("missing magic first line `{GRID_MAGIC}`"));
        }
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for line in lines {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line `{line}` (expected key=value)"))?;
            pairs.push((key.trim(), value.trim()));
        }
        let get = |key: &str| -> Result<&str, String> {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing key `{key}`"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            get(key)?.parse().map_err(|e| format!("key `{key}`: {e}"))
        };

        let experiment = get("experiment")?.to_string();
        if experiment.is_empty()
            || !experiment
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
        {
            return Err(format!(
                "experiment id `{experiment}` must be non-empty [A-Za-z0-9._-]"
            ));
        }
        let root_seed = get_u64("root_seed")?;
        let mut instances = Vec::new();
        for item in get("instances")?.split(',') {
            let (n, k) = item
                .split_once('x')
                .ok_or_else(|| format!("instance `{item}` is not NxK"))?;
            let n: usize = n.parse().map_err(|e| format!("instance `{item}`: {e}"))?;
            let k: usize = k.parse().map_err(|e| format!("instance `{item}`: {e}"))?;
            if k == 0 || k >= n {
                return Err(format!("instance `{item}`: need 1 <= k < n"));
            }
            instances.push((n, k));
        }
        if instances.is_empty() {
            return Err("empty instance list".to_string());
        }

        let kind = match get("kind")? {
            "sweep" => {
                let task_name = get("task")?;
                let task =
                    parse_task(task_name).ok_or_else(|| format!("unknown task `{task_name}`"))?;
                let mut schedulers = Vec::new();
                for name in get("schedulers")?.split(',') {
                    schedulers.push(
                        parse_scheduler(name.trim())
                            .ok_or_else(|| format!("unknown scheduler `{name}`"))?,
                    );
                }
                if schedulers.is_empty() {
                    return Err("empty scheduler list".to_string());
                }
                GridKind::Sweep {
                    task,
                    schedulers,
                    seeds_per_cell: get_u64("seeds_per_cell")?.max(1),
                    targets: TaskTargets {
                        clearings: get_u64("clearings")?,
                        explorations: get_u64("explorations")?,
                    },
                    budget_per_n: get_u64("budget_per_n")?,
                    budget_flat: get_u64("budget_flat")?,
                    async_budget_factor: get_u64("async_budget_factor")?,
                }
            }
            "align" => GridKind::Align {
                sample_starts: usize::try_from(get_u64("sample_starts")?)
                    .map_err(|e| e.to_string())?,
            },
            other => return Err(format!("unknown kind `{other}`")),
        };
        Ok(GridSpec {
            experiment,
            root_seed,
            instances,
            kind,
        })
    }

    /// The number of cells (= ledger records) this grid expands to.
    #[must_use]
    pub fn cells(&self) -> usize {
        match &self.kind {
            GridKind::Sweep {
                schedulers,
                seeds_per_cell,
                ..
            } => self.instances.len() * schedulers.len() * *seeds_per_cell as usize,
            GridKind::Align { .. } => self.instances.len(),
        }
    }

    /// The content-address of this grid's result under the current engine:
    /// FNV-1a over the canonical encoding folded with
    /// [`rr_corda::ENGINE_VERSION`].
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        cache_key(&self.canonical_encoding(), rr_corda::ENGINE_VERSION)
    }

    /// A stable job identifier for spool file names:
    /// `<experiment>-<cache key in hex>`.  Identical grids get identical
    /// ids, which is what makes submission idempotent.
    #[must_use]
    pub fn job_id(&self) -> String {
        format!("{}-{:016x}", self.experiment, self.cache_key())
    }

    /// The `rr-sweep/v1` header every ledger of this grid opens with —
    /// **bound to the grid's content**: the header line carries the grid's
    /// [`cache_key`](GridSpec::cache_key) in hex and its declared cell
    /// count, so two grids sharing an experiment id and root seed but
    /// differing in shape (a `--quick` preset vs the full one, say) can
    /// never byte-match each other's ledgers on resume or in the cache.
    #[must_use]
    pub fn header(&self) -> SweepHeader {
        SweepHeader::new(&self.experiment, self.root_seed)
            .for_grid(self.cache_key(), self.cells() as u64)
    }

    /// The [`Sweep`] this grid declares.
    ///
    /// # Panics
    ///
    /// Panics when called on an Align grid — dispatch on [`GridSpec::kind`]
    /// first.
    #[must_use]
    pub fn to_sweep(&self) -> Sweep {
        let GridKind::Sweep {
            task,
            schedulers,
            seeds_per_cell,
            targets,
            budget_per_n,
            budget_flat,
            async_budget_factor,
        } = &self.kind
        else {
            panic!("to_sweep on an align grid");
        };
        Sweep {
            experiment: self.experiment.clone(),
            task: *task,
            instances: self.instances.clone(),
            schedulers: schedulers.clone(),
            seeds_per_cell: *seeds_per_cell,
            root_seed: self.root_seed,
            targets: *targets,
            budget_per_n: *budget_per_n,
            budget_flat: *budget_flat,
            async_budget_factor: *async_budget_factor,
        }
    }
}

/// The built-in grid presets: exactly the grids the `exp_*` binaries run,
/// by name.  Because the preset and the binary build the same [`GridSpec`]
/// (hence the same canonical encoding), a grid submitted to the sweep
/// service by preset name and an `exp_* --quick` run with a `--cache`
/// share one content-addressed cache entry.
///
/// Recognized names (case-insensitive): `e3`/`align`, `e4`/`clearing`,
/// `e5`/`nminus3`, `e6`/`gathering`.  `quick` applies the binaries'
/// `--quick` instance filter (`n <= 16`); `root_seed: None` uses the
/// experiment's canonical default seed (`0xE3`, `0xE4`, ...).
#[must_use]
pub fn preset(name: &str, quick: bool, root_seed: Option<u64>) -> Option<GridSpec> {
    let filtered = |instances: &[(usize, usize)]| -> Vec<(usize, usize)> {
        if quick {
            instances
                .iter()
                .copied()
                .filter(|&(n, _)| n <= 16)
                .collect()
        } else {
            instances.to_vec()
        }
    };
    let sweep_kind = |task, schedulers: &[SchedulerKind], targets, budget_per_n| GridKind::Sweep {
        task,
        schedulers: schedulers.to_vec(),
        seeds_per_cell: 1,
        targets,
        budget_per_n,
        budget_flat: 0,
        async_budget_factor: 2,
    };
    let spec = |experiment: &str, default_seed, instances, kind| GridSpec {
        experiment: experiment.to_string(),
        root_seed: root_seed.unwrap_or(default_seed),
        instances,
        kind,
    };
    match name.to_ascii_lowercase().as_str() {
        "e3" | "align" => Some(spec(
            "E3",
            0xE3,
            filtered(crate::ALIGN_INSTANCES),
            GridKind::Align { sample_starts: 64 },
        )),
        "e4" | "clearing" => Some(spec(
            "E4",
            0xE4,
            filtered(crate::CLEARING_INSTANCES),
            sweep_kind(
                Task::GraphSearching,
                &SchedulerKind::ALL,
                TaskTargets::demonstrate(10, 1),
                30_000,
            ),
        )),
        "e5" | "nminus3" => Some(spec(
            "E5",
            0xE5,
            crate::NMINUS3_RINGS
                .iter()
                .copied()
                .filter(|&n| !quick || n <= 16)
                .map(|n| (n, n - 3))
                .collect(),
            sweep_kind(
                Task::GraphSearching,
                &[SchedulerKind::RoundRobin],
                TaskTargets::demonstrate(20, 1),
                60_000,
            ),
        )),
        "e6" | "gathering" => Some(spec(
            "E6",
            0xE6,
            filtered(crate::GATHERING_INSTANCES),
            sweep_kind(
                Task::Gathering,
                &SchedulerKind::ALL,
                TaskTargets::open_ended(),
                100_000,
            ),
        )),
        _ => None,
    }
}

/// One executed Align cell (mirrors `exp_align`'s historical behaviour:
/// exhaustive starts on small rings, seeded samples on large ones).
fn run_align_cell(experiment: &str, n: usize, k: usize, sample_starts: usize) -> AlignRecord {
    let max_starts = if n <= 14 { usize::MAX } else { sample_starts };
    let stats = rr_checker::verify::measure_align(n, k, max_starts);
    AlignRecord {
        experiment: experiment.to_string(),
        n,
        k,
        starts: stats.starts,
        min_moves: stats.min_moves,
        max_moves: stats.max_moves,
        total_moves: stats.total_moves,
        ok: stats.all_converged,
    }
}

/// The records produced by one [`execute_grid`] call (executed cells only —
/// cells served from the cache or already durable in a resumed ledger are
/// in the ledger, not here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridRecords {
    /// Records of a [`GridKind::Sweep`] grid.
    Sweep(Vec<RunRecord>),
    /// Records of a [`GridKind::Align`] grid.
    Align(Vec<AlignRecord>),
}

impl GridRecords {
    /// The sweep records, when this was a sweep grid.
    #[must_use]
    pub fn sweep(&self) -> Option<&[RunRecord]> {
        match self {
            GridRecords::Sweep(r) => Some(r),
            GridRecords::Align(_) => None,
        }
    }

    /// The align records, when this was an align grid.
    #[must_use]
    pub fn align(&self) -> Option<&[AlignRecord]> {
        match self {
            GridRecords::Align(r) => Some(r),
            GridRecords::Sweep(_) => None,
        }
    }

    /// Number of records held here.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            GridRecords::Sweep(r) => r.len(),
            GridRecords::Align(r) => r.len(),
        }
    }

    /// Whether no records were executed by this call.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What one [`execute_grid`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Cells the grid declares.
    pub cells_total: usize,
    /// Cells actually run by this call.
    pub cells_executed: usize,
    /// Cells that were already durable (resumed ledger prefix, a cache hit,
    /// or an already-complete ledger).
    pub cells_reused: usize,
    /// Failed cells over the **whole** grid (durable prefix included).
    pub failures: u64,
    /// Whether the result was served from the content-addressed cache.
    pub from_cache: bool,
}

/// Outcome of [`execute_grid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRun {
    /// What happened.
    pub stats: ExecutionStats,
    /// The executed cells' records.
    pub records: GridRecords,
}

/// Options for [`execute_grid`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions<'a> {
    /// Cell execution mode (sequential by default).
    pub mode: Option<ExecMode>,
    /// Ledger file to stream records into (resuming any durable prefix).
    /// Without one, the run is in-memory only (and the cache, if any, is
    /// consulted but a miss is executed without producing a durable ledger).
    pub ledger: Option<PathBuf>,
    /// Content-addressed result cache to consult and publish to.
    pub cache: Option<&'a ResultCache>,
}

fn empty_records_for(spec: &GridSpec) -> GridRecords {
    match spec.kind {
        GridKind::Sweep { .. } => GridRecords::Sweep(Vec::new()),
        GridKind::Align { .. } => GridRecords::Align(Vec::new()),
    }
}

/// **The** grid-execution path, shared by the `rr-sweepd` daemon and the
/// `exp_*` binaries (via [`ExpArgs::run_grid`](crate::sweep::ExpArgs::run_grid)).
///
/// Order of business: serve the whole grid from the cache if possible;
/// otherwise open (or resume) the ledger, run the cells that are not yet
/// durable — streaming each completed record into the ledger, which fsyncs
/// per contiguous batch — write the completion footer, and publish the
/// completed ledger to the cache.
///
/// # Errors
///
/// Propagates ledger/cache I/O errors.
///
/// # Panics
///
/// Panics when the grid declares an instance no rigid configuration exists
/// for (a spec-validation escape, not a runtime condition), or when a
/// ledger append fails inside a worker thread.
pub fn execute_grid(spec: &GridSpec, opts: &ExecOptions<'_>) -> io::Result<GridRun> {
    let cells_total = spec.cells();
    let mode = opts.mode.unwrap_or(ExecMode::Sequential);
    let header = spec.header();

    // A cache hit serves the whole grid without touching an engine.
    if let Some(cache) = opts.cache {
        let key = spec.cache_key();
        if let Some(ledger_path) = &opts.ledger {
            let existing = ledger::scan(ledger_path)?;
            let dest_complete = existing.is_complete()
                && existing.header.as_deref() == Some(header.to_json_line().as_str())
                && existing.footer.map(|(cells, _)| cells) == Some(cells_total as u64);
            if !dest_complete && cache.serve(key, &header, ledger_path)? {
                let found = ledger::scan(ledger_path)?;
                let (cells, failures) = found.footer.unwrap_or((0, 0));
                return Ok(GridRun {
                    stats: ExecutionStats {
                        cells_total,
                        cells_executed: 0,
                        cells_reused: usize::try_from(cells).unwrap_or(usize::MAX),
                        failures,
                        from_cache: true,
                    },
                    records: empty_records_for(spec),
                });
            }
        } else if cache.lookup(key, &header).is_some() {
            return Ok(GridRun {
                stats: ExecutionStats {
                    cells_total,
                    cells_executed: 0,
                    cells_reused: cells_total,
                    failures: 0,
                    from_cache: true,
                },
                records: empty_records_for(spec),
            });
        }
    }

    match &opts.ledger {
        Some(ledger_path) => {
            let (ledger, resume) = Ledger::open_or_create(ledger_path, &header)?;
            if let LedgerResume::Complete { cells, failures } = resume {
                if cells == cells_total as u64 {
                    // Repair a crash that hit between `Ledger::finish` and
                    // the publish below: the completed ledger enters the
                    // cache now, so the entry is never permanently missing.
                    if let Some(cache) = opts.cache {
                        if cache.lookup(spec.cache_key(), &header).is_none() {
                            cache.publish(spec.cache_key(), ledger_path)?;
                        }
                    }
                    return Ok(GridRun {
                        stats: ExecutionStats {
                            cells_total,
                            cells_executed: 0,
                            cells_reused: usize::try_from(cells).unwrap_or(usize::MAX),
                            failures,
                            from_cache: false,
                        },
                        records: empty_records_for(spec),
                    });
                }
            }
            // The header byte-match already binds the grid's content (cache
            // key + cell count), so a footer or record count disagreeing
            // with the declared shape can only be corruption: restart the
            // ledger rather than adopt foreign records.
            let (ledger, skip) = match resume {
                LedgerResume::Partial { records } if records <= cells_total => (ledger, records),
                LedgerResume::Fresh => (ledger, 0),
                LedgerResume::Partial { .. } | LedgerResume::Complete { .. } => {
                    drop(ledger);
                    (Ledger::create(ledger_path, &header)?, 0)
                }
            };
            let shared = Mutex::new(ledger);
            let records = run_cells(spec, mode, skip, Some(&shared));
            let mut ledger = shared.into_inner().expect("ledger lock");
            ledger.finish()?;
            let failures = ledger.failures();
            if let Some(cache) = opts.cache {
                cache.publish(spec.cache_key(), ledger_path)?;
            }
            Ok(GridRun {
                stats: ExecutionStats {
                    cells_total,
                    cells_executed: records.len(),
                    cells_reused: skip,
                    failures,
                    from_cache: false,
                },
                records,
            })
        }
        None => {
            let records = run_cells(spec, mode, 0, None);
            let failures = match &records {
                GridRecords::Sweep(r) => r.iter().filter(|r| !r.ok).count() as u64,
                GridRecords::Align(r) => r.iter().filter(|r| !r.ok).count() as u64,
            };
            Ok(GridRun {
                stats: ExecutionStats {
                    cells_total,
                    cells_executed: records.len(),
                    cells_reused: 0,
                    failures,
                    from_cache: false,
                },
                records,
            })
        }
    }
}

/// Runs cells `skip..` of the grid, streaming records into `ledger` (when
/// present) in cell order.
fn run_cells(
    spec: &GridSpec,
    mode: ExecMode,
    skip: usize,
    ledger: Option<&Mutex<Ledger>>,
) -> GridRecords {
    let append = |cell: usize, line_of: &dyn Fn() -> String| {
        if let Some(shared) = ledger {
            let mut guard = shared.lock().expect("ledger lock");
            guard
                .append_line(cell, line_of())
                .expect("appending to the sweep ledger");
        }
    };
    match &spec.kind {
        GridKind::Sweep { .. } => {
            let sweep = spec.to_sweep();
            let sink = |cell: usize, record: &RunRecord| {
                append(cell, &|| {
                    serde_json::to_string(record).expect("serializing a RunRecord")
                });
            };
            let options = RunOptions::new().mode(mode).resume_at(skip).progress(&sink);
            GridRecords::Sweep(sweep.run_with(&options))
        }
        GridKind::Align { sample_starts } => {
            let sample_starts = *sample_starts;
            let cells: Vec<(usize, (usize, usize))> = spec
                .instances
                .iter()
                .copied()
                .enumerate()
                .skip(skip)
                .collect();
            let records = grid_map(cells, mode, |(cell, (n, k))| {
                let record = run_align_cell(&spec.experiment, n, k, sample_starts);
                append(cell, &|| {
                    serde_json::to_string(&record).expect("serializing an AlignRecord")
                });
                record
            });
            GridRecords::Align(records)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> GridSpec {
        GridSpec {
            experiment: "E6".into(),
            root_seed: 230,
            instances: vec![(8, 4), (10, 3)],
            kind: GridKind::Sweep {
                task: Task::Gathering,
                schedulers: SchedulerKind::ALL.to_vec(),
                seeds_per_cell: 1,
                targets: TaskTargets::open_ended(),
                budget_per_n: 100_000,
                budget_flat: 0,
                async_budget_factor: 2,
            },
        }
    }

    #[test]
    fn canonical_encoding_roundtrips() {
        let spec = sample_spec();
        let encoded = spec.canonical_encoding();
        let parsed = GridSpec::parse(&encoded).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.canonical_encoding(), encoded);

        let align = GridSpec {
            experiment: "E3".into(),
            root_seed: 0xE3,
            instances: vec![(10, 4), (12, 5)],
            kind: GridKind::Align { sample_starts: 64 },
        };
        let parsed = GridSpec::parse(&align.canonical_encoding()).unwrap();
        assert_eq!(parsed, align);
    }

    #[test]
    fn parse_accepts_comments_and_canonicalizes() {
        let text = "\n# a hand-written spec\nrr-sweepd-grid/v1\n\nexperiment=E3\n\
                    root_seed=5\ninstances=10x4\nkind=align\n# trailing\nsample_starts=8\n";
        let spec = GridSpec::parse(text).unwrap();
        assert_eq!(spec.experiment, "E3");
        assert!(spec.canonical_encoding().starts_with(GRID_MAGIC));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(GridSpec::parse("nope").is_err());
        let no_instances = "rr-sweepd-grid/v1\nexperiment=E\nroot_seed=1\ninstances=\nkind=align\nsample_starts=4\n";
        assert!(GridSpec::parse(no_instances).is_err());
        let bad_instance = "rr-sweepd-grid/v1\nexperiment=E\nroot_seed=1\ninstances=4x9\nkind=align\nsample_starts=4\n";
        assert!(
            GridSpec::parse(bad_instance).is_err(),
            "k >= n must be rejected"
        );
        let bad_exp = "rr-sweepd-grid/v1\nexperiment=a/b\nroot_seed=1\ninstances=9x4\nkind=align\nsample_starts=4\n";
        assert!(
            GridSpec::parse(bad_exp).is_err(),
            "path-unsafe experiment id"
        );
    }

    #[test]
    fn cache_key_tracks_content() {
        let spec = sample_spec();
        let mut other = sample_spec();
        assert_eq!(spec.cache_key(), other.cache_key());
        other.root_seed += 1;
        assert_ne!(spec.cache_key(), other.cache_key());
        let mut quick = sample_spec();
        quick.instances.pop();
        assert_ne!(spec.cache_key(), quick.cache_key());
        assert!(spec.job_id().starts_with("E6-"));
    }

    #[test]
    fn cells_counts_both_kinds() {
        assert_eq!(sample_spec().cells(), 6);
        let align = GridSpec {
            experiment: "E3".into(),
            root_seed: 1,
            instances: vec![(10, 4), (12, 5), (14, 6)],
            kind: GridKind::Align { sample_starts: 4 },
        };
        assert_eq!(align.cells(), 3);
    }
}
