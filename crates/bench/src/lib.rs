//! # rr-bench — benchmark harness and experiment binaries
//!
//! One Criterion bench target and/or one experiment binary (`exp_*`) per
//! table/figure-shaped result of the paper; see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured records.
//!
//! This library crate only holds small shared helpers so the benches and the
//! binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod grid;
pub mod ledger;
pub mod sweep;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rr_ring::enumerate::{enumerate_rigid_configurations, random_rigid_configuration};
use rr_ring::Configuration;

/// The `(n, k)` pairs used by the Ring Clearing experiments (E4).
pub const CLEARING_INSTANCES: &[(usize, usize)] = &[
    (11, 5),
    (12, 5),
    (13, 6),
    (16, 8),
    (20, 10),
    (24, 7),
    (32, 12),
    (40, 20),
];

/// The ring sizes used by the NminusThree experiments (E5), with `k = n - 3`.
pub const NMINUS3_RINGS: &[usize] = &[10, 12, 14, 16, 20, 24, 32, 40];

/// The `(n, k)` pairs used by the gathering experiments (E6).
pub const GATHERING_INSTANCES: &[(usize, usize)] = &[
    (8, 4),
    (10, 3),
    (12, 5),
    (16, 7),
    (20, 9),
    (24, 11),
    (32, 13),
    (48, 9),
    (60, 21),
];

/// The `(n, k)` pairs used by the Align experiments (E3).
pub const ALIGN_INSTANCES: &[(usize, usize)] = &[
    (10, 4),
    (12, 5),
    (14, 6),
    (16, 7),
    (20, 9),
    (24, 11),
    (32, 8),
    (48, 12),
    (64, 16),
];

/// The small cases of Theorem 5 (Figures 4–9), as `(k, n)` like in the paper.
pub const THEOREM5_CASES: &[(usize, usize)] = &[(4, 7), (4, 8), (5, 8), (6, 9), (4, 9), (5, 9)];

/// A deterministic rigid starting configuration for `(n, k)`.
///
/// Small instances use the exhaustive enumeration; larger ones draw a rigid
/// configuration with a seeded RNG (exhaustive enumeration is exponential in
/// `n`).
///
/// # Panics
///
/// Panics if no rigid configuration exists for these parameters.
#[must_use]
pub fn rigid_start(n: usize, k: usize) -> Configuration {
    if n <= 14 {
        enumerate_rigid_configurations(n, k)
            .into_iter()
            .next()
            .unwrap_or_else(|| panic!("no rigid configuration for n={n}, k={k}"))
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64((n as u64) * 1_000 + k as u64);
        random_rigid_configuration(n, k, &mut rng)
            .unwrap_or_else(|| panic!("no rigid configuration for n={n}, k={k}"))
    }
}

/// A deterministic rigid starting configuration that is *far* from `C*`
/// (robots spread out rather than blocked together), used to stress the Align
/// phase.
///
/// # Panics
///
/// Panics if no rigid configuration exists for these parameters.
#[must_use]
pub fn spread_out_rigid_start(n: usize, k: usize) -> Configuration {
    if n <= 14 {
        enumerate_rigid_configurations(n, k)
            .into_iter()
            .max_by_key(Configuration::canonical_key)
            .unwrap_or_else(|| panic!("no rigid configuration for n={n}, k={k}"))
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64((n as u64) * 7_919 + k as u64);
        random_rigid_configuration(n, k, &mut rng)
            .unwrap_or_else(|| panic!("no rigid configuration for n={n}, k={k}"))
    }
}

/// Formats a mean with two decimals from a sum and a count.
#[must_use]
pub fn mean(total: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::symmetry;

    #[test]
    fn instance_tables_are_well_formed() {
        for &(n, k) in CLEARING_INSTANCES {
            assert!(
                rr_core::clearing::RingClearingProtocol::supports(n, k),
                "({n},{k})"
            );
        }
        for &n in NMINUS3_RINGS {
            assert!(rr_core::nminus_three::NminusThreeProtocol::supports(
                n,
                n - 3
            ));
        }
        for &(n, k) in GATHERING_INSTANCES {
            assert!(
                rr_core::gathering::GatheringProtocol::supports(n, k),
                "({n},{k})"
            );
        }
        for &(n, k) in ALIGN_INSTANCES {
            assert!(k >= 3 && k + 2 < n, "({n},{k})");
        }
    }

    #[test]
    fn rigid_starts_are_rigid() {
        for &(n, k) in &[(12usize, 5usize), (16, 7), (20, 17)] {
            assert!(symmetry::is_rigid(&rigid_start(n, k)));
            assert!(symmetry::is_rigid(&spread_out_rigid_start(n, k)));
        }
    }

    #[test]
    fn mean_handles_zero() {
        assert_eq!(mean(0, 0), 0.0);
        assert_eq!(mean(10, 4), 2.5);
    }
}
