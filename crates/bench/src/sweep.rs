//! The sweep subsystem: parallel batch experiment runs with deterministic,
//! machine-readable results.
//!
//! A [`Sweep`] declares an instance grid — `(n, k)` pairs × scheduler
//! families × seeds — and expands it into [`BatchJob`]s for the `rr-core`
//! batch driver.  Execution either walks the jobs sequentially or shards them
//! over a rayon worker pool ([`ExecMode`]); each shard recycles **one**
//! engine allocation through a [`BatchRunner`].  Every job's randomness is
//! derived from the sweep's root seed and the job's grid coordinates alone
//! (never from shard layout or thread identity), so **a sharded sweep and a
//! sequential sweep with the same root seed produce byte-identical JSON
//! records** — the property CI's bench-regression gate and the
//! `sweep_determinism` test suite rest on.
//!
//! The `exp_*` binaries are thin grid declarations over this module:
//! they parse the shared [`ExpArgs`] CLI (`--quick`, `--json <path>`,
//! `--seed <u64>`, `--sequential`), run their sweep, print the human table,
//! write the JSON report, and exit non-zero when any instance fails
//! verification (see [`exit_if_failed`]).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rayon::prelude::*;
use rr_corda::{SchedulerKind, StepPath};
use rr_core::driver::{BatchJob, BatchRunner, TaskTargets};
use rr_core::unified::Task;
use serde::Serialize;

/// Stable short slug for a task, used in records and file names.
#[must_use]
pub fn task_slug(task: Task) -> &'static str {
    match task {
        Task::Exploration => "exploration",
        Task::GraphSearching => "graph-searching",
        Task::Gathering => "gathering",
    }
}

/// How a sweep executes its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One worker, one engine, jobs in declaration order.
    Sequential,
    /// Jobs sharded over the rayon pool (one recycled engine per shard);
    /// results are reassembled in declaration order.
    Sharded,
}

/// A declarative instance grid: the cross product of `(n, k)` instances,
/// scheduler kinds and per-cell seeds, run as one task with uniform targets
/// and a linear step budget.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Experiment identifier recorded in every run record (e.g. "E6").
    pub experiment: &'static str,
    /// The task every instance runs.
    pub task: Task,
    /// The `(n, k)` grid.
    pub instances: Vec<(usize, usize)>,
    /// Scheduler families to run each instance under.
    pub schedulers: Vec<SchedulerKind>,
    /// Number of seeded repetitions per (instance, scheduler) cell.
    pub seeds_per_cell: u64,
    /// Root seed; every job's randomness is derived from it and the job's
    /// grid coordinates.
    pub root_seed: u64,
    /// Early-stop targets passed to the driver.
    pub targets: TaskTargets,
    /// Scheduler-step budget: `budget_per_n * n + budget_flat`.
    pub budget_per_n: u64,
    /// Flat part of the step budget.
    pub budget_flat: u64,
    /// Extra budget factor for the asynchronous adversary (it interleaves
    /// Look and Move steps, so it needs roughly twice the steps for the same
    /// progress).
    pub async_budget_factor: u64,
}

/// SplitMix64 finalizer: the per-job seed derivation.  Deterministic in the
/// root seed and the job's grid coordinates only.
#[must_use]
fn splitmix64(z: u64) -> u64 {
    rand::RngCore::next_u64(&mut rand::SplitMix64::new(z))
}

/// One measured instance run, as recorded in the JSON report.
///
/// `wall_nanos` is measured but **excluded from serialization** — it is the
/// one field that legitimately differs between a sharded and a sequential
/// execution of the same sweep, and the JSON records are guaranteed
/// byte-identical across execution modes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RunRecord {
    /// Experiment identifier (e.g. "E6").
    pub experiment: String,
    /// Task slug ("graph-searching", "gathering", ...).
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Scheduler name ("round-robin", "ssync", "async").
    pub scheduler: String,
    /// The derived per-job seed the scheduler was built from.
    pub seed: u64,
    /// Scheduler steps (rounds) applied.
    pub rounds: u64,
    /// Completed Look–Compute–Move cycles summed over all robots.
    pub cycles: u64,
    /// Robot moves executed.
    pub moves: u64,
    /// Full ring clearings demonstrated (searching tasks; 0 for gathering).
    pub clearings: u64,
    /// Steady-state clearing period: max moves between consecutive clearings
    /// after the first (searching tasks; 0 otherwise).
    pub steady_period: u64,
    /// Minimum full exploration sweeps completed by any robot (searching
    /// tasks; 0 otherwise).
    pub explorations: u64,
    /// Whether the configuration ended gathered (gathering task only).
    pub gathered: bool,
    /// Whether this run demonstrated the property the experiment verifies.
    pub ok: bool,
    /// Failure detail (empty on success).
    pub detail: String,
    /// Wall-clock nanoseconds for this instance (not serialized).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One exhaustively model-checked cell, as recorded in the JSON report
/// (schema `rr-sweep/v1`, experiment `E10`).
///
/// Where a [`RunRecord`] says "this seed succeeded", a `ModelCheckRecord`
/// says "**every** schedule of this interleaving mode succeeds" — `states`/
/// `edges` quantify the exhausted state space, and a non-verified cell
/// carries its minimal counterexample schedule in `counterexample`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModelCheckRecord {
    /// Experiment identifier (e.g. "E10").
    pub experiment: String,
    /// Task slug ("gathering", "alignment", "graph-searching").
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Interleaving mode ("ssync" = all activation subsets, "async" = all
    /// Look/Move phase interleavings).
    pub mode: String,
    /// Rigid initial configuration classes checked (one exhaustive search
    /// each).
    pub initial_classes: u64,
    /// Concrete states explored, summed over the initial classes.
    pub states: u64,
    /// Canonical (rotation/reflection/relabeling) engine-state classes among
    /// them (auxiliary contamination state excluded from the class key).
    pub quotient_states: u64,
    /// Edges of the explored state graphs.
    pub edges: u64,
    /// Liveness-target states seen (Reach invariants).
    pub target_states: u64,
    /// Progress edges seen (ReachRepeatedly invariants).
    pub progress_edges: u64,
    /// Peak resident nodes (stored packed states + buffered successors at
    /// the search's high-water mark), maximized over the initial classes —
    /// the checker's memory footprint.  Deterministic.
    pub peak_resident_nodes: u64,
    /// Exploration throughput in states per second over the cell's wall
    /// time.  **Not deterministic** (machine- and load-dependent): this is
    /// the one record field excluded from cross-run comparisons; it exists
    /// to accumulate the perf trajectory in the CI artifacts.
    pub states_per_sec: u64,
    /// Whether the paper claims no algorithm for this cell (nothing to
    /// check; `ok` is vacuously true).
    pub vacuous: bool,
    /// Whether every schedule of every initial class was verified.
    pub ok: bool,
    /// Rendered minimal counterexample schedule (empty when `ok`).
    pub counterexample: String,
    /// Wall-clock nanoseconds (not serialized; may differ across execution
    /// modes).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One engine-throughput cell (schema `rr-sweep/v1`, experiment `E12`).
///
/// Written by `exp_throughput`: a fixed scheduler-step budget is driven
/// through `Engine::step` twice per cell — once on the incremental O(k)
/// Look pipeline and once on the `LookPath::ScanBaseline` pre-incremental
/// pipeline — plus a Look/Execute micro-loop that isolates the Look phase.
/// The two pipelines must agree on every deterministic counter and on the
/// final configuration (`ok` is false otherwise), so the speedup figures
/// are measured against a provably equivalent baseline.  Like
/// `states_per_sec` in [`ModelCheckRecord`], the `*_per_sec` and allocation
/// fields are machine-dependent: they accumulate the perf trajectory in the
/// CI artifacts and are excluded from cross-run byte comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThroughputRecord {
    /// Experiment identifier (e.g. "E12").
    pub experiment: String,
    /// Workload slug ("throughput": greedy walker, exclusivity off).
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Scheduler name ("round-robin", "ssync", "async").
    pub scheduler: String,
    /// The derived per-cell seed the scheduler was built from.
    pub seed: u64,
    /// Scheduler steps applied per pipeline run (the cell's budget).
    pub steps: u64,
    /// Fresh Look + Compute phases performed during the scheduler run.
    pub looks: u64,
    /// Robot moves executed during the scheduler run.
    pub moves: u64,
    /// Scheduler steps per second on the incremental pipeline.
    pub steps_per_sec: u64,
    /// Scheduler steps per second on the `ScanBaseline` pipeline.
    pub baseline_steps_per_sec: u64,
    /// Incremental / baseline steps-per-second ratio, in hundredths
    /// (`350` = 3.5×).
    pub speedup_x100: u64,
    /// Looks per second in the Look/Execute micro-loop (Look phase isolated
    /// from scheduler overhead).
    pub looks_per_sec: u64,
    /// Heap allocations per 1000 scheduler steps over the full engine loop
    /// (includes the scheduler's step materialization); 0 when the binary's
    /// counting allocator is not installed.
    pub allocs_per_kstep: u64,
    /// Heap allocations per 1000 steps of the Look/Execute micro-loop — the
    /// zero-allocation Look pipeline claim, measured.
    pub look_allocs_per_kstep: u64,
    /// Whether the incremental and baseline runs agreed on every
    /// deterministic counter and the final configuration.
    pub ok: bool,
    /// Failure detail (empty on success).
    pub detail: String,
    /// Wall-clock nanoseconds for the cell (not serialized; machine
    /// dependent).
    #[serde(skip)]
    pub wall_nanos: u128,
}

impl Sweep {
    /// Expands the grid into batch jobs, in deterministic declaration order
    /// (instances outermost, then schedulers, then seeds).
    #[must_use]
    pub fn jobs(&self) -> Vec<BatchJob> {
        let mut jobs = Vec::new();
        for &(n, k) in &self.instances {
            for (si, &scheduler) in self.schedulers.iter().enumerate() {
                for rep in 0..self.seeds_per_cell {
                    let coords = (n as u64) << 40 | (k as u64) << 24 | (si as u64) << 16 | rep;
                    let seed = splitmix64(self.root_seed ^ coords);
                    let budget = self.budget_per_n * n as u64 + self.budget_flat;
                    let budget = if scheduler == SchedulerKind::Asynchronous {
                        budget * self.async_budget_factor.max(1)
                    } else {
                        budget
                    };
                    jobs.push(BatchJob {
                        task: self.task,
                        start: crate::rigid_start(n, k),
                        scheduler,
                        seed,
                        targets: self.targets,
                        max_scheduler_steps: budget,
                    });
                }
            }
        }
        jobs
    }

    /// Runs one job on `runner` and turns the outcome into a record.
    fn run_job(&self, runner: &mut BatchRunner, job: &BatchJob) -> RunRecord {
        let started = Instant::now();
        let (n, k) = (job.start.n(), job.start.num_robots());
        let mut record = RunRecord {
            experiment: self.experiment.to_string(),
            task: task_slug(job.task).to_string(),
            n,
            k,
            scheduler: job.scheduler.name().to_string(),
            seed: job.seed,
            rounds: 0,
            cycles: 0,
            moves: 0,
            clearings: 0,
            steady_period: 0,
            explorations: 0,
            gathered: false,
            ok: false,
            detail: String::new(),
            wall_nanos: 0,
        };
        match runner.run(job) {
            Ok(outcome) => {
                record.rounds = outcome.report.report.steps;
                record.moves = outcome.report.report.moves;
                record.cycles = outcome.cycles;
                match &outcome.report.stats {
                    rr_core::driver::TaskStats::Searching(stats) => {
                        record.clearings = stats.clearings;
                        record.steady_period = stats
                            .clearing_intervals
                            .iter()
                            .skip(1)
                            .copied()
                            .max()
                            .unwrap_or(0);
                        record.explorations = stats.min_exploration_completions;
                        record.ok = outcome.report.report.succeeded();
                        if !record.ok {
                            record.detail =
                                format!("budget exhausted after {} clearings", stats.clearings);
                        }
                    }
                    rr_core::driver::TaskStats::Gathering(stats) => {
                        record.gathered = stats.gathered;
                        record.ok = stats.gathered && !stats.broke_gathering;
                        if !record.ok {
                            record.detail = if stats.broke_gathering {
                                "left a gathered configuration".to_string()
                            } else {
                                "budget exhausted before gathering".to_string()
                            };
                        }
                    }
                }
            }
            Err(e) => {
                record.detail = e.to_string();
            }
        }
        record.wall_nanos = started.elapsed().as_nanos();
        record
    }

    /// Runs the sweep, returning one record per job in declaration order.
    #[must_use]
    pub fn run(&self, mode: ExecMode) -> Vec<RunRecord> {
        self.run_with(mode, BatchRunner::new)
    }

    /// [`Sweep::run`] with every job forced onto `path`, overriding the
    /// driver's per-task step-path default.  This is the knob the
    /// round-leaping lockstep harness turns: the same sweep run with leaping
    /// forced on and forced off must produce byte-identical JSON records.
    #[must_use]
    pub fn run_forced(&self, mode: ExecMode, path: StepPath) -> Vec<RunRecord> {
        self.run_with(mode, move || BatchRunner::with_step_path(path))
    }

    fn run_with(
        &self,
        mode: ExecMode,
        make_runner: impl Fn() -> BatchRunner + Sync,
    ) -> Vec<RunRecord> {
        let jobs = self.jobs();
        match mode {
            ExecMode::Sequential => {
                let mut runner = make_runner();
                jobs.iter()
                    .map(|job| self.run_job(&mut runner, job))
                    .collect()
            }
            ExecMode::Sharded => {
                let workers = std::thread::available_parallelism()
                    .map_or(4, usize::from)
                    .min(jobs.len().max(1));
                let shard_len = jobs.len().div_ceil(workers).max(1);
                let shards: Vec<Vec<BatchJob>> =
                    jobs.chunks(shard_len).map(<[BatchJob]>::to_vec).collect();
                let nested: Vec<Vec<RunRecord>> = shards
                    .into_par_iter()
                    .map(|shard| {
                        let mut runner = make_runner();
                        shard
                            .iter()
                            .map(|job| self.run_job(&mut runner, job))
                            .collect()
                    })
                    .collect();
                nested.into_iter().flatten().collect()
            }
        }
    }
}

/// An order-preserving parallel (or sequential) map, for experiment grids
/// that do not go through the batch driver (Align statistics, configuration
/// graphs, ...).  Sharded results equal sequential results whenever `f` is a
/// pure function of its item.
pub fn grid_map<T: Send, O: Send>(
    items: Vec<T>,
    mode: ExecMode,
    f: impl Fn(T) -> O + Sync,
) -> Vec<O> {
    match mode {
        ExecMode::Sequential => items.into_iter().map(f).collect(),
        ExecMode::Sharded => items.into_par_iter().map(f).collect(),
    }
}

// ---------------------------------------------------------------------------
// JSON reports.
// ---------------------------------------------------------------------------

/// Envelope written by [`write_json_records`].
#[derive(Debug, Serialize)]
struct SweepReport<'a, T> {
    schema: &'static str,
    experiment: &'a str,
    root_seed: u64,
    records: &'a [T],
}

/// Renders a JSON report document (schema `rr-sweep/v1`) for `records`.
pub fn json_report<T: Serialize>(
    experiment: &str,
    root_seed: u64,
    records: &[T],
) -> Result<String, serde_json::Error> {
    serde_json::to_string(&SweepReport {
        schema: "rr-sweep/v1",
        experiment,
        root_seed,
        records,
    })
}

/// Writes a JSON report to `path` (a trailing newline is appended).
///
/// # Panics
///
/// Panics when the file cannot be written or a record fails to serialize —
/// in an experiment binary either is a fatal configuration error.
pub fn write_json_records<T: Serialize>(
    path: &Path,
    experiment: &str,
    root_seed: u64,
    records: &[T],
) {
    let body = json_report(experiment, root_seed, records)
        .unwrap_or_else(|e| panic!("serializing {experiment} records: {e}"));
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
    file.write_all(body.as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("# wrote {} records to {}", records.len(), path.display());
}

// ---------------------------------------------------------------------------
// Shared experiment CLI.
// ---------------------------------------------------------------------------

/// The command-line arguments shared by every `exp_*` binary.
///
/// ```text
/// exp_foo [--quick] [--json <path>] [--seed <u64>] [--sequential] [binary-specific flags]
/// ```
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Run the reduced CI-smoke grid instead of the full grid.
    pub quick: bool,
    /// Write the machine-readable JSON report here.
    pub json: Option<PathBuf>,
    /// Root seed for the sweep (each binary sets its own default).
    pub root_seed: u64,
    /// Force sequential execution (the default is sharded).
    pub sequential: bool,
    rest: Vec<String>,
}

impl ExpArgs {
    /// Parses the process arguments; unrecognized flags are kept for
    /// binary-specific lookup via [`ExpArgs::flag`] / [`ExpArgs::value`].
    #[must_use]
    pub fn parse(default_seed: u64) -> Self {
        Self::from_args(std::env::args().skip(1), default_seed)
    }

    /// [`ExpArgs::parse`] over an explicit argument list (testable).
    #[must_use]
    pub fn from_args(args: impl Iterator<Item = String>, default_seed: u64) -> Self {
        let mut parsed = ExpArgs {
            quick: false,
            json: None,
            root_seed: default_seed,
            sequential: false,
            rest: Vec::new(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--sequential" => parsed.sequential = true,
                "--json" => {
                    let path = args.next().expect("--json requires a path");
                    parsed.json = Some(PathBuf::from(path));
                }
                "--seed" => {
                    let seed = args.next().expect("--seed requires a value");
                    parsed.root_seed = seed.parse().expect("--seed takes a u64");
                }
                _ => parsed.rest.push(arg),
            }
        }
        parsed
    }

    /// The execution mode implied by the flags.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        if self.sequential {
            ExecMode::Sequential
        } else {
            ExecMode::Sharded
        }
    }

    /// Whether a binary-specific boolean flag was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// The value following a binary-specific `--name value` pair.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    /// Writes the JSON report if `--json` was passed.
    pub fn write_json<T: Serialize>(&self, experiment: &str, records: &[T]) {
        if let Some(path) = &self.json {
            write_json_records(path, experiment, self.root_seed, records);
        }
    }
}

/// Exits with status 1 when any record failed verification, printing a
/// summary first — this is what makes the CI smoke job an actual gate.
pub fn exit_if_failed(experiment: &str, failures: usize, total: usize) {
    if failures > 0 {
        eprintln!("{experiment}: {failures}/{total} instances FAILED verification");
        std::process::exit(1);
    }
    println!("# {experiment}: all {total} instances verified");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_depend_on_coordinates_not_order() {
        let sweep = Sweep {
            experiment: "T",
            task: Task::Gathering,
            instances: vec![(8, 4), (10, 3)],
            schedulers: vec![SchedulerKind::RoundRobin, SchedulerKind::SemiSynchronous],
            seeds_per_cell: 2,
            root_seed: 7,
            targets: TaskTargets::open_ended(),
            budget_per_n: 1_000,
            budget_flat: 0,
            async_budget_factor: 2,
        };
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 8);
        // All seeds distinct.
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
        // Reversing the instance list permutes jobs but keeps per-cell seeds.
        let mut reversed = sweep.clone();
        reversed.instances.reverse();
        let rjobs = reversed.jobs();
        assert_eq!(jobs[0].seed, rjobs[4].seed);
    }

    #[test]
    fn exp_args_parse_all_flags() {
        let args = ExpArgs::from_args(
            [
                "--quick",
                "--json",
                "out.json",
                "--seed",
                "99",
                "--max-n",
                "14",
                "--sequential",
            ]
            .iter()
            .map(ToString::to_string),
            5,
        );
        assert!(args.quick);
        assert!(args.sequential);
        assert_eq!(args.mode(), ExecMode::Sequential);
        assert_eq!(args.root_seed, 99);
        assert_eq!(args.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(args.value("--max-n"), Some("14"));
        assert!(!args.flag("--no-validate"));
    }

    #[test]
    fn run_record_json_skips_wall_time() {
        let record = RunRecord {
            experiment: "T".into(),
            task: "gathering".into(),
            n: 8,
            k: 4,
            scheduler: "round-robin".into(),
            seed: 1,
            rounds: 10,
            cycles: 10,
            moves: 5,
            clearings: 0,
            steady_period: 0,
            explorations: 0,
            gathered: true,
            ok: true,
            detail: String::new(),
            wall_nanos: 123_456,
        };
        let json = serde_json::to_string(&record).unwrap();
        assert!(!json.contains("wall"));
        assert!(json.contains("\"task\":\"gathering\""));
        assert!(json.contains("\"ok\":true"));
    }
}
