//! The sweep subsystem: parallel batch experiment runs with deterministic,
//! machine-readable results.
//!
//! A [`Sweep`] declares an instance grid — `(n, k)` pairs × scheduler
//! families × seeds — and expands it into [`BatchJob`]s for the `rr-core`
//! batch driver.  Execution either walks the jobs sequentially or shards them
//! over a rayon worker pool ([`ExecMode`]); each shard recycles **one**
//! engine allocation through a [`BatchRunner`].  Every job's randomness is
//! derived from the sweep's root seed and the job's grid coordinates alone
//! (never from shard layout or thread identity), so **a sharded sweep and a
//! sequential sweep with the same root seed produce byte-identical JSON
//! records** — the property CI's bench-regression gate and the
//! `sweep_determinism` test suite rest on.
//!
//! The `exp_*` binaries are thin grid declarations over this module:
//! they parse the shared [`ExpArgs`] CLI (`--quick`, `--json <path>`,
//! `--seed <u64>`, `--sequential`), run their sweep, print the human table,
//! write the JSON report, and exit non-zero when any instance fails
//! verification (see [`exit_if_failed`]).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rayon::prelude::*;
use rr_corda::{SchedulerKind, StepPath};
use rr_core::driver::{BatchJob, BatchRunner, TaskTargets};
use rr_core::unified::Task;
use serde::Serialize;

/// Stable short slug for a task, used in records and file names.
#[must_use]
pub fn task_slug(task: Task) -> &'static str {
    match task {
        Task::Exploration => "exploration",
        Task::GraphSearching => "graph-searching",
        Task::Gathering => "gathering",
    }
}

/// How a sweep executes its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One worker, one engine, jobs in declaration order.
    Sequential,
    /// Jobs sharded over the rayon pool (one recycled engine per shard);
    /// results are reassembled in declaration order.
    Sharded,
}

/// A per-record progress callback: `(cell_index, record)`.
///
/// Under [`ExecMode::Sharded`] the sink is invoked from worker threads and
/// cell indices arrive out of order (within one shard they are ascending);
/// sinks that need declaration order reorder on the index — which is exactly
/// what [`Ledger::append`](crate::ledger::Ledger::append) does.
pub type ProgressSink<'a> = &'a (dyn Fn(usize, &RunRecord) + Sync);

/// Options for one [`Sweep::run_with`] call — the single run entry point
/// that replaced the old `run(mode)` / `run_forced(mode, path)` pair.
///
/// ```
/// # use rr_bench::sweep::{ExecMode, RunOptions};
/// let opts = RunOptions::new().sharded();
/// # let _ = opts;
/// ```
#[derive(Default)]
pub struct RunOptions<'a> {
    mode: Option<ExecMode>,
    step_path: Option<StepPath>,
    progress: Option<ProgressSink<'a>>,
    skip_cells: usize,
}

impl<'a> RunOptions<'a> {
    /// Sequential execution, per-task step paths, no progress sink.
    #[must_use]
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Sets the execution mode explicitly.
    #[must_use]
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Shorthand for [`RunOptions::mode`]`(ExecMode::Sharded)`.
    #[must_use]
    pub fn sharded(self) -> Self {
        self.mode(ExecMode::Sharded)
    }

    /// Forces every job onto `path`, overriding the driver's per-task
    /// step-path default.  This is the knob the round-leaping lockstep
    /// harness turns: the same sweep run with leaping forced on and forced
    /// off must produce byte-identical JSON records.
    #[must_use]
    pub fn step_path(mut self, path: StepPath) -> Self {
        self.step_path = Some(path);
        self
    }

    /// Streams each completed record to `sink` as `(cell_index, record)`.
    /// This is how the sweep service's ledger observes a run incrementally
    /// instead of waiting for the full record vector.
    #[must_use]
    pub fn progress(mut self, sink: ProgressSink<'a>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Skips the first `cells` jobs of the declaration order — the resume
    /// primitive.  Because every job's seed derives from the root seed and
    /// the job's grid coordinates alone, the records for cells `cells..` are
    /// byte-identical whether or not the earlier cells were run in the same
    /// process.
    #[must_use]
    pub fn resume_at(mut self, cells: usize) -> Self {
        self.skip_cells = cells;
        self
    }

    fn exec_mode(&self) -> ExecMode {
        self.mode.unwrap_or(ExecMode::Sequential)
    }
}

/// A declarative instance grid: the cross product of `(n, k)` instances,
/// scheduler kinds and per-cell seeds, run as one task with uniform targets
/// and a linear step budget.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Experiment identifier recorded in every run record (e.g. "E6").
    pub experiment: String,
    /// The task every instance runs.
    pub task: Task,
    /// The `(n, k)` grid.
    pub instances: Vec<(usize, usize)>,
    /// Scheduler families to run each instance under.
    pub schedulers: Vec<SchedulerKind>,
    /// Number of seeded repetitions per (instance, scheduler) cell.
    pub seeds_per_cell: u64,
    /// Root seed; every job's randomness is derived from it and the job's
    /// grid coordinates.
    pub root_seed: u64,
    /// Early-stop targets passed to the driver.
    pub targets: TaskTargets,
    /// Scheduler-step budget: `budget_per_n * n + budget_flat`.
    pub budget_per_n: u64,
    /// Flat part of the step budget.
    pub budget_flat: u64,
    /// Extra budget factor for the asynchronous adversary (it interleaves
    /// Look and Move steps, so it needs roughly twice the steps for the same
    /// progress).
    pub async_budget_factor: u64,
}

/// SplitMix64 finalizer: the per-job seed derivation.  Deterministic in the
/// root seed and the job's grid coordinates only.
#[must_use]
fn splitmix64(z: u64) -> u64 {
    rand::RngCore::next_u64(&mut rand::SplitMix64::new(z))
}

/// One measured instance run, as recorded in the JSON report.
///
/// `wall_nanos` is measured but **excluded from serialization** — it is the
/// one field that legitimately differs between a sharded and a sequential
/// execution of the same sweep, and the JSON records are guaranteed
/// byte-identical across execution modes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RunRecord {
    /// Experiment identifier (e.g. "E6").
    pub experiment: String,
    /// Task slug ("graph-searching", "gathering", ...).
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Scheduler name ("round-robin", "ssync", "async").
    pub scheduler: String,
    /// The derived per-job seed the scheduler was built from.
    pub seed: u64,
    /// Scheduler steps (rounds) applied.
    pub rounds: u64,
    /// Completed Look–Compute–Move cycles summed over all robots.
    pub cycles: u64,
    /// Robot moves executed.
    pub moves: u64,
    /// Full ring clearings demonstrated (searching tasks; 0 for gathering).
    pub clearings: u64,
    /// Steady-state clearing period: max moves between consecutive clearings
    /// after the first (searching tasks; 0 otherwise).
    pub steady_period: u64,
    /// Minimum full exploration sweeps completed by any robot (searching
    /// tasks; 0 otherwise).
    pub explorations: u64,
    /// Whether the configuration ended gathered (gathering task only).
    pub gathered: bool,
    /// Whether this run demonstrated the property the experiment verifies.
    pub ok: bool,
    /// Failure detail (empty on success).
    pub detail: String,
    /// Wall-clock nanoseconds for this instance (not serialized).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One exhaustively model-checked cell, as recorded in the JSON report
/// (schema `rr-sweep/v1`, experiment `E10`).
///
/// Where a [`RunRecord`] says "this seed succeeded", a `ModelCheckRecord`
/// says "**every** schedule of this interleaving mode succeeds" — `states`/
/// `edges` quantify the exhausted state space, and a non-verified cell
/// carries its minimal counterexample schedule in `counterexample`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModelCheckRecord {
    /// Experiment identifier (e.g. "E10").
    pub experiment: String,
    /// Task slug ("gathering", "alignment", "graph-searching").
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Interleaving mode ("ssync" = all activation subsets, "async" = all
    /// Look/Move phase interleavings).
    pub mode: String,
    /// Rigid initial configuration classes checked (one exhaustive search
    /// each).
    pub initial_classes: u64,
    /// Concrete states explored, summed over the initial classes.
    pub states: u64,
    /// Canonical (rotation/reflection/relabeling) engine-state classes among
    /// them (auxiliary contamination state excluded from the class key).
    pub quotient_states: u64,
    /// Edges of the explored state graphs.
    pub edges: u64,
    /// Liveness-target states seen (Reach invariants).
    pub target_states: u64,
    /// Progress edges seen (ReachRepeatedly invariants).
    pub progress_edges: u64,
    /// Peak resident nodes (stored packed states + buffered successors at
    /// the search's high-water mark, sampled immediately before each
    /// window's sequential merge), maximized over the initial classes —
    /// the checker's memory footprint.  Deterministic.
    pub peak_resident_nodes: u64,
    /// Peak resident packed-state payload bytes at the same sample point,
    /// maximized over the initial classes.  Deterministic and
    /// backend-independent (the spill backend changes where the bytes live,
    /// not how many are live).
    pub peak_resident_bytes: u64,
    /// Packed payload bytes per stored state (`state_bytes / states`,
    /// summed over the initial classes before dividing).  Deterministic.
    pub bytes_per_state: u64,
    /// Bytes written to the spill files (states + edges), summed over the
    /// initial classes; 0 under the in-memory backend.  Deterministic for a
    /// given backend — sealed clusters are always written, whatever the
    /// budget — but naturally differs between backends, so cross-backend
    /// report comparisons normalize it away alongside `store`.
    pub spilled_bytes: u64,
    /// Bytes the visited map sealed to sorted on-disk runs (including
    /// compaction rewrites), summed over the initial classes; 0 under the
    /// in-memory backend.  Deterministic for a given backend *and* memory
    /// budget — the seal schedule is a pure function of the insert sequence
    /// — but budget-dependent, so cross-backend comparisons normalize it
    /// away alongside `store` and `spilled_bytes`.
    pub visited_spilled_bytes: u64,
    /// Storage backend the cell ran under ("mem" or "spill").
    pub store: String,
    /// Exploration throughput in states per second over the cell's wall
    /// time.  **Not deterministic** (machine- and load-dependent): this is
    /// the one record field excluded from cross-run comparisons; it exists
    /// to accumulate the perf trajectory in the CI artifacts.
    pub states_per_sec: u64,
    /// Whether the paper claims no algorithm for this cell (nothing to
    /// check; `ok` is vacuously true).
    pub vacuous: bool,
    /// Whether every schedule of every initial class was verified.
    pub ok: bool,
    /// Rendered minimal counterexample schedule (empty when `ok`).
    pub counterexample: String,
    /// Wall-clock nanoseconds (not serialized; may differ across execution
    /// modes).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One fault-adversary cell (schema `rr-sweep/v1`, experiment `E14`).
///
/// Written by `exp_faults`: the degradation table behind the "paper vs
/// faults" feasibility matrix.  Model-checked rows (`fault` ∈ `"none"`,
/// `"crash"`, `"corrupt-look"`) quantify over **every** schedule *and*
/// every fault placement within the budget; a cell is `ok` when the checker
/// either proves its invariant or produces a minimal counterexample that
/// replays on the engine (`replayed`) — an unexplained verdict (budget
/// blow-up, non-reproducing trace) fails the cell.  Engine-measured rows
/// (`fault` = `"unfair"`) run the bounded-unfair scheduler and gate on the
/// clearing/gathering latency staying within the `c·B` degradation bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultRecord {
    /// Experiment identifier (e.g. "E14").
    pub experiment: String,
    /// Task slug ("gathering", "alignment").
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Interleaving mode for model-checked rows ("ssync"/"async"), scheduler
    /// name ("unfair") for engine-measured rows.
    pub mode: String,
    /// Fault family ("none", "crash", "corrupt-look", "unfair").
    pub fault: String,
    /// Fault parameters ("f=1", "looks=1", "B=64", ...; empty for "none").
    pub fault_detail: String,
    /// The invariant or degradation property the cell was checked against.
    pub property: String,
    /// Rigid initial configuration classes checked.
    pub initial_classes: u64,
    /// Concrete states explored (0 for engine-measured rows).
    pub states: u64,
    /// Edges of the explored state graphs (0 for engine-measured rows).
    pub edges: u64,
    /// Initial classes the invariant was proved for (all schedules, all
    /// fault placements within the budget).
    pub proved: u64,
    /// Initial classes falsified with a minimal counterexample.
    pub falsified: u64,
    /// Whether every counterexample replayed on the engine with its fault
    /// directives honoured (vacuously true when `falsified == 0`).
    pub replayed: bool,
    /// Whether the cell has a valid verdict: proved, degraded-with-replaying-
    /// counterexample, or (unfair rows) latency within the degradation bound.
    pub ok: bool,
    /// Rendered counterexample / failure detail (empty when clean).
    pub counterexample: String,
    /// Wall-clock nanoseconds (not serialized; may differ across execution
    /// modes).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One engine-throughput cell (schema `rr-sweep/v1`, experiment `E12`).
///
/// Written by `exp_throughput`: a fixed scheduler-step budget is driven
/// through `Engine::step` twice per cell — once on the incremental O(k)
/// Look pipeline and once on the `LookPath::ScanBaseline` pre-incremental
/// pipeline — plus a Look/Execute micro-loop that isolates the Look phase.
/// The two pipelines must agree on every deterministic counter and on the
/// final configuration (`ok` is false otherwise), so the speedup figures
/// are measured against a provably equivalent baseline.  Like
/// `states_per_sec` in [`ModelCheckRecord`], the `*_per_sec` and allocation
/// fields are machine-dependent: they accumulate the perf trajectory in the
/// CI artifacts and are excluded from cross-run byte comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThroughputRecord {
    /// Experiment identifier (e.g. "E12").
    pub experiment: String,
    /// Workload slug ("throughput": greedy walker, exclusivity off).
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Scheduler name ("round-robin", "ssync", "async").
    pub scheduler: String,
    /// The derived per-cell seed the scheduler was built from.
    pub seed: u64,
    /// Scheduler steps applied per pipeline run (the cell's budget).
    pub steps: u64,
    /// Fresh Look + Compute phases performed during the scheduler run.
    pub looks: u64,
    /// Robot moves executed during the scheduler run.
    pub moves: u64,
    /// Scheduler steps per second on the incremental pipeline.
    pub steps_per_sec: u64,
    /// Scheduler steps per second on the `ScanBaseline` pipeline.
    pub baseline_steps_per_sec: u64,
    /// Incremental / baseline steps-per-second ratio, in hundredths
    /// (`350` = 3.5×).
    pub speedup_x100: u64,
    /// Looks per second in the Look/Execute micro-loop (Look phase isolated
    /// from scheduler overhead).
    pub looks_per_sec: u64,
    /// Heap allocations per 1000 scheduler steps over the full engine loop
    /// (includes the scheduler's step materialization); 0 when the binary's
    /// counting allocator is not installed.
    pub allocs_per_kstep: u64,
    /// Heap allocations per 1000 steps of the Look/Execute micro-loop — the
    /// zero-allocation Look pipeline claim, measured.
    pub look_allocs_per_kstep: u64,
    /// Whether the incremental and baseline runs agreed on every
    /// deterministic counter and the final configuration.
    pub ok: bool,
    /// Failure detail (empty on success).
    pub detail: String,
    /// Wall-clock nanoseconds for the cell (not serialized; machine
    /// dependent).
    #[serde(skip)]
    pub wall_nanos: u128,
}

/// One worker-scaling measurement (schema `rr-sweep/v1`, experiment `E16`).
///
/// Written by `exp_modelcheck --scale-bench`: a fixed spill cell is
/// re-explored at each worker count under the same tight memory budget, the
/// binary gates on every deterministic report field being identical across
/// the counts (`report_digest` pins what was compared), and the phase
/// timers record where the wall-clock went.  The `*_nanos` and
/// `states_per_sec` fields are machine-dependent perf trajectory, excluded
/// from cross-run byte comparisons like every other throughput figure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScaleRecord {
    /// Experiment identifier (e.g. "E16").
    pub experiment: String,
    /// Task slug ("gathering", "alignment", "graph-searching").
    pub task: String,
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Interleaving mode ("ssync" or "async").
    pub mode: String,
    /// Storage backend ("spill" for the scaling cell).
    pub store: String,
    /// Worker threads this row ran with.
    pub workers: usize,
    /// Resident byte budget shared by the packed-state cache and the
    /// visited-map memtables.
    pub mem_budget: u64,
    /// Concrete states explored (identical across rows, by the gate).
    pub states: u64,
    /// Edges of the explored state graph (identical across rows).
    pub edges: u64,
    /// Peak resident bytes — payload + buffered batch + visited entries
    /// (identical across rows).
    pub peak_resident_bytes: u64,
    /// Bytes spilled by the state store + edge sink (identical across rows).
    pub spilled_bytes: u64,
    /// Bytes the visited map sealed to disk runs (identical across rows).
    pub visited_spilled_bytes: u64,
    /// Wall nanoseconds spent in parallel batch expansion.  Machine
    /// dependent.
    pub expand_nanos: u64,
    /// Wall nanoseconds spent in the batch merge (partition, parallel
    /// per-shard dedup, ordering pass, commit + seal).  Machine dependent.
    pub merge_nanos: u64,
    /// Exploration throughput over the row's wall time.  Machine dependent.
    pub states_per_sec: u64,
    /// FNV-1a digest over the row's deterministic report fields; the
    /// scale-bench gate requires it to be identical across worker counts.
    pub report_digest: u64,
    /// Whether this row's digest matched the single-worker reference.
    pub ok: bool,
    /// Wall-clock nanoseconds for the row (not serialized).
    #[serde(skip)]
    pub wall_nanos: u128,
}

impl Sweep {
    /// Expands the grid into batch jobs, in deterministic declaration order
    /// (instances outermost, then schedulers, then seeds).
    #[must_use]
    pub fn jobs(&self) -> Vec<BatchJob> {
        let mut jobs = Vec::new();
        for &(n, k) in &self.instances {
            for (si, &scheduler) in self.schedulers.iter().enumerate() {
                for rep in 0..self.seeds_per_cell {
                    let coords = (n as u64) << 40 | (k as u64) << 24 | (si as u64) << 16 | rep;
                    let seed = splitmix64(self.root_seed ^ coords);
                    let budget = self.budget_per_n * n as u64 + self.budget_flat;
                    let budget = if scheduler == SchedulerKind::Asynchronous {
                        budget * self.async_budget_factor.max(1)
                    } else {
                        budget
                    };
                    jobs.push(BatchJob {
                        task: self.task,
                        start: crate::rigid_start(n, k),
                        scheduler,
                        seed,
                        targets: self.targets,
                        max_scheduler_steps: budget,
                    });
                }
            }
        }
        jobs
    }

    /// Runs one job on `runner` and turns the outcome into a record.
    fn run_job(&self, runner: &mut BatchRunner, job: &BatchJob) -> RunRecord {
        let started = Instant::now();
        let (n, k) = (job.start.n(), job.start.num_robots());
        let mut record = RunRecord {
            experiment: self.experiment.clone(),
            task: task_slug(job.task).to_string(),
            n,
            k,
            scheduler: job.scheduler.name().to_string(),
            seed: job.seed,
            rounds: 0,
            cycles: 0,
            moves: 0,
            clearings: 0,
            steady_period: 0,
            explorations: 0,
            gathered: false,
            ok: false,
            detail: String::new(),
            wall_nanos: 0,
        };
        match runner.run(job) {
            Ok(outcome) => {
                record.rounds = outcome.report.report.steps;
                record.moves = outcome.report.report.moves;
                record.cycles = outcome.cycles;
                match &outcome.report.stats {
                    rr_core::driver::TaskStats::Searching(stats) => {
                        record.clearings = stats.clearings;
                        record.steady_period = stats
                            .clearing_intervals
                            .iter()
                            .skip(1)
                            .copied()
                            .max()
                            .unwrap_or(0);
                        record.explorations = stats.min_exploration_completions;
                        record.ok = outcome.report.report.succeeded();
                        if !record.ok {
                            record.detail =
                                format!("budget exhausted after {} clearings", stats.clearings);
                        }
                    }
                    rr_core::driver::TaskStats::Gathering(stats) => {
                        record.gathered = stats.gathered;
                        record.ok = stats.gathered && !stats.broke_gathering;
                        if !record.ok {
                            record.detail = if stats.broke_gathering {
                                "left a gathered configuration".to_string()
                            } else {
                                "budget exhausted before gathering".to_string()
                            };
                        }
                    }
                }
            }
            Err(e) => {
                record.detail = e.to_string();
            }
        }
        record.wall_nanos = started.elapsed().as_nanos();
        record
    }

    /// **The** run entry point: executes the grid as declared by `options`
    /// and returns one record per executed job, in declaration order.
    ///
    /// With [`RunOptions::resume_at`]`(c)` the first `c` cells are skipped
    /// and the returned vector covers cells `c..` only; their contents are
    /// byte-for-byte what an uninterrupted run would have produced for those
    /// cells (per-cell seeds derive from the root seed and grid coordinates,
    /// never from execution history).  A [`RunOptions::progress`] sink
    /// observes every record as it completes, tagged with its cell index.
    #[must_use]
    pub fn run_with(&self, options: &RunOptions<'_>) -> Vec<RunRecord> {
        let make_runner = || match options.step_path {
            Some(path) => BatchRunner::with_step_path(path),
            None => BatchRunner::new(),
        };
        let report = |index: usize, record: &RunRecord| {
            if let Some(sink) = options.progress {
                sink(index, record);
            }
        };
        let skip = options.skip_cells;
        let all_jobs = self.jobs();
        let jobs = &all_jobs[skip.min(all_jobs.len())..];
        match options.exec_mode() {
            ExecMode::Sequential => {
                let mut runner = make_runner();
                jobs.iter()
                    .enumerate()
                    .map(|(i, job)| {
                        let record = self.run_job(&mut runner, job);
                        report(skip + i, &record);
                        record
                    })
                    .collect()
            }
            ExecMode::Sharded => {
                let workers = std::thread::available_parallelism()
                    .map_or(4, usize::from)
                    .min(jobs.len().max(1));
                let shard_len = jobs.len().div_ceil(workers).max(1);
                let shards: Vec<(usize, Vec<BatchJob>)> = jobs
                    .chunks(shard_len)
                    .enumerate()
                    .map(|(s, shard)| (skip + s * shard_len, shard.to_vec()))
                    .collect();
                let nested: Vec<Vec<RunRecord>> = shards
                    .into_par_iter()
                    .map(|(base, shard)| {
                        let mut runner = make_runner();
                        shard
                            .iter()
                            .enumerate()
                            .map(|(i, job)| {
                                let record = self.run_job(&mut runner, job);
                                report(base + i, &record);
                                record
                            })
                            .collect()
                    })
                    .collect();
                nested.into_iter().flatten().collect()
            }
        }
    }

    /// The number of cells (= records) this sweep's grid expands to.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.instances.len() * self.schedulers.len() * self.seeds_per_cell as usize
    }
}

/// An order-preserving parallel (or sequential) map, for experiment grids
/// that do not go through the batch driver (Align statistics, configuration
/// graphs, ...).  Sharded results equal sequential results whenever `f` is a
/// pure function of its item.
pub fn grid_map<T: Send, O: Send>(
    items: Vec<T>,
    mode: ExecMode,
    f: impl Fn(T) -> O + Sync,
) -> Vec<O> {
    match mode {
        ExecMode::Sequential => items.into_iter().map(f).collect(),
        ExecMode::Sharded => items.into_par_iter().map(f).collect(),
    }
}

// ---------------------------------------------------------------------------
// JSON reports.
// ---------------------------------------------------------------------------

/// The grid identity a ledger header is bound to: the grid's
/// content-address and its declared cell count.  See
/// [`SweepHeader::for_grid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridBinding {
    /// The grid's [`cache_key`](crate::cache::cache_key) in zero-padded hex
    /// — the same 16 characters that name the job and its cache entry.
    pub grid: String,
    /// The number of cells (= record lines) the grid declares.
    pub cells: u64,
}

/// The shared `rr-sweep/v1` preamble: schema tag, explicit schema version,
/// the engine's semantic version, the experiment id and the root seed.
///
/// Every producer of `rr-sweep/v1` bytes goes through this one type instead
/// of hand-rolling its own preamble: [`json_report`] opens its envelope with
/// these fields (in this declaration order), and a sweep
/// [`Ledger`](crate::ledger::Ledger) writes [`SweepHeader::to_json_line`] as
/// its first line.  Consumers can therefore dispatch on
/// `(schema, schema_version)` and detect stale cached results on
/// `engine_version` without knowing which record family follows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SweepHeader {
    /// Schema family tag; always `"rr-sweep/v1"`.
    pub schema: &'static str,
    /// Explicit schema version within the family (this is version 1).
    pub schema_version: u32,
    /// [`rr_corda::ENGINE_VERSION`]: the semantic version of the engine that
    /// produced the records.  Part of the result-cache key — two ledgers
    /// with different engine versions are never interchangeable.
    pub engine_version: &'static str,
    /// Experiment identifier (e.g. "E6").
    pub experiment: String,
    /// Root seed every per-cell seed was derived from.
    pub root_seed: u64,
    /// The grid identity a **ledger** header carries (rendered by
    /// [`SweepHeader::to_json_line`] as trailing `"grid"`/`"cells"` fields).
    /// `None` for free-form report envelopes, which are not content-addressed.
    ///
    /// This is what makes ledger resume and cache validation sound: two
    /// grids of the same experiment and root seed but different shapes
    /// (e.g. a `--quick` and a full preset) produce different header lines,
    /// so one can never silently adopt the other's records.
    #[serde(skip)]
    pub grid: Option<GridBinding>,
}

impl SweepHeader {
    /// The header for `experiment` under the current engine.
    #[must_use]
    pub fn new(experiment: &str, root_seed: u64) -> Self {
        SweepHeader {
            schema: "rr-sweep/v1",
            schema_version: 1,
            engine_version: rr_corda::ENGINE_VERSION,
            experiment: experiment.to_string(),
            root_seed,
            grid: None,
        }
    }

    /// Binds this header to a grid's content-address and cell count — the
    /// form every ledger header takes (see [`GridSpec::header`](crate::grid::GridSpec::header)).
    #[must_use]
    pub fn for_grid(mut self, cache_key: u64, cells: u64) -> Self {
        self.grid = Some(GridBinding {
            grid: format!("{cache_key:016x}"),
            cells,
        });
        self
    }

    /// The bound grid's declared cell count, when this is a ledger header.
    #[must_use]
    pub fn grid_cells(&self) -> Option<u64> {
        self.grid.as_ref().map(|b| b.cells)
    }

    /// The header as one JSON object, **without** a trailing newline —
    /// exactly the first line of a sweep ledger.  A grid binding is rendered
    /// as trailing `"grid"` and `"cells"` fields.
    ///
    /// # Panics
    ///
    /// Serialization of this plain struct cannot fail; a panic indicates a
    /// broken vendored serializer.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut doc = serde_json::to_string(self).expect("serializing a SweepHeader");
        if let Some(binding) = &self.grid {
            let closing = doc.pop();
            debug_assert_eq!(closing, Some('}'));
            doc.push_str(&format!(
                ",\"grid\":\"{}\",\"cells\":{}}}",
                binding.grid, binding.cells
            ));
        }
        doc
    }
}

/// Renders a JSON report document (schema `rr-sweep/v1`) for `records`.
///
/// The envelope is the [`SweepHeader`] object with one extra trailing
/// `records` field — the bytes up to that field are literally
/// [`SweepHeader::to_json_line`], so the report envelope and the ledger
/// header cannot drift apart.
pub fn json_report<T: Serialize>(
    experiment: &str,
    root_seed: u64,
    records: &[T],
) -> Result<String, serde_json::Error> {
    let mut doc = SweepHeader::new(experiment, root_seed).to_json_line();
    let closing = doc.pop();
    debug_assert_eq!(closing, Some('}'));
    doc.push_str(",\"records\":");
    doc.push_str(&serde_json::to_string(&records)?);
    doc.push('}');
    Ok(doc)
}

/// Writes a JSON report to `path` (a trailing newline is appended).
///
/// # Panics
///
/// Panics when the file cannot be written or a record fails to serialize —
/// in an experiment binary either is a fatal configuration error.
pub fn write_json_records<T: Serialize>(
    path: &Path,
    experiment: &str,
    root_seed: u64,
    records: &[T],
) {
    let body = json_report(experiment, root_seed, records)
        .unwrap_or_else(|e| panic!("serializing {experiment} records: {e}"));
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
    file.write_all(body.as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("# wrote {} records to {}", records.len(), path.display());
}

// ---------------------------------------------------------------------------
// Shared experiment CLI.
// ---------------------------------------------------------------------------

/// The command-line arguments shared by every `exp_*` binary.
///
/// ```text
/// exp_foo [--quick] [--json <path>] [--seed <u64>] [--sequential]
///         [--ledger <path>] [--cache <dir>] [binary-specific flags]
/// ```
///
/// `--ledger` streams records into a durable, resumable `rr-sweep/v1`
/// ledger and `--cache` consults/feeds a content-addressed result cache —
/// both via [`execute_grid`](crate::grid::execute_grid), the same path the
/// `rr-sweepd` service runs jobs through.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Run the reduced CI-smoke grid instead of the full grid.
    pub quick: bool,
    /// Write the machine-readable JSON report here.
    pub json: Option<PathBuf>,
    /// Root seed for the sweep (each binary sets its own default).
    pub root_seed: u64,
    /// Force sequential execution (the default is sharded).
    pub sequential: bool,
    /// Stream records into this durable ledger file (resuming any durable
    /// prefix left by an interrupted run).
    pub ledger: Option<PathBuf>,
    /// Consult and feed the content-addressed result cache in this
    /// directory.
    pub cache: Option<PathBuf>,
    rest: Vec<String>,
}

impl ExpArgs {
    /// Parses the process arguments; unrecognized flags are kept for
    /// binary-specific lookup via [`ExpArgs::flag`] / [`ExpArgs::value`].
    #[must_use]
    pub fn parse(default_seed: u64) -> Self {
        Self::from_args(std::env::args().skip(1), default_seed)
    }

    /// [`ExpArgs::parse`] over an explicit argument list (testable).
    #[must_use]
    pub fn from_args(args: impl Iterator<Item = String>, default_seed: u64) -> Self {
        let mut parsed = ExpArgs {
            quick: false,
            json: None,
            root_seed: default_seed,
            sequential: false,
            ledger: None,
            cache: None,
            rest: Vec::new(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--sequential" => parsed.sequential = true,
                "--json" => {
                    let path = args.next().expect("--json requires a path");
                    parsed.json = Some(PathBuf::from(path));
                }
                "--ledger" => {
                    let path = args.next().expect("--ledger requires a path");
                    parsed.ledger = Some(PathBuf::from(path));
                }
                "--cache" => {
                    let dir = args.next().expect("--cache requires a directory");
                    parsed.cache = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    let seed = args.next().expect("--seed requires a value");
                    parsed.root_seed = seed.parse().expect("--seed takes a u64");
                }
                _ => parsed.rest.push(arg),
            }
        }
        parsed
    }

    /// The execution mode implied by the flags.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        if self.sequential {
            ExecMode::Sequential
        } else {
            ExecMode::Sharded
        }
    }

    /// Whether a binary-specific boolean flag was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// The value following a binary-specific `--name value` pair.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    /// Writes the JSON report if `--json` was passed.
    pub fn write_json<T: Serialize>(&self, experiment: &str, records: &[T]) {
        if let Some(path) = &self.json {
            write_json_records(path, experiment, self.root_seed, records);
        }
    }

    /// Runs `spec` through [`execute_grid`](crate::grid::execute_grid) —
    /// the same path the `rr-sweepd` daemon runs spooled jobs through —
    /// honouring `--sequential`, `--ledger` and `--cache`.  This is the one
    /// grid-execution entry point the `exp_*` binaries share.
    ///
    /// # Panics
    ///
    /// Panics on ledger/cache I/O errors — in an experiment binary these
    /// are fatal configuration errors.
    #[must_use]
    pub fn run_grid(&self, spec: &crate::grid::GridSpec) -> crate::grid::GridRun {
        let cache = self.cache.as_deref().map(|dir| {
            crate::cache::ResultCache::open(dir)
                .unwrap_or_else(|e| panic!("opening cache {}: {e}", dir.display()))
        });
        let options = crate::grid::ExecOptions {
            mode: Some(self.mode()),
            ledger: self.ledger.clone(),
            cache: cache.as_ref(),
        };
        let run = crate::grid::execute_grid(spec, &options)
            .unwrap_or_else(|e| panic!("executing {}: {e}", spec.experiment));
        if run.stats.from_cache {
            println!(
                "# {}: served from result cache ({} cells, key {:016x})",
                spec.experiment,
                run.stats.cells_reused,
                spec.cache_key()
            );
        } else if run.stats.cells_reused > 0 {
            println!(
                "# {}: resumed ledger with {} durable cells, executed {}",
                spec.experiment, run.stats.cells_reused, run.stats.cells_executed
            );
        }
        run
    }

    /// The shared tail of every grid binary: write the `--json` report
    /// (when this invocation executed the full grid — a cache-served or
    /// resumed run's complete artifact is the ledger), then exit non-zero
    /// if any cell of the whole grid failed verification.
    pub fn finish_grid(&self, spec: &crate::grid::GridSpec, run: &crate::grid::GridRun) {
        if run.records.len() == run.stats.cells_total {
            match &run.records {
                crate::grid::GridRecords::Sweep(records) => {
                    self.write_json(&spec.experiment, records);
                }
                crate::grid::GridRecords::Align(records) => {
                    self.write_json(&spec.experiment, records);
                }
            }
        } else if self.json.is_some() {
            println!(
                "# {}: skipping --json ({} of {} cells executed here; the ledger holds the full record stream)",
                spec.experiment,
                run.records.len(),
                run.stats.cells_total
            );
        }
        exit_if_failed(
            &spec.experiment,
            usize::try_from(run.stats.failures).unwrap_or(usize::MAX),
            run.stats.cells_total,
        );
    }
}

/// Parses a byte-size CLI value: a plain integer (bytes) or an integer with
/// a binary suffix — `KiB`/`MiB`/`GiB`, or the shorthands `K`/`M`/`G`
/// (case-insensitive).  `None` on malformed input or overflow.
#[must_use]
pub fn parse_byte_size(input: &str) -> Option<u64> {
    let lower = input.trim().to_ascii_lowercase();
    let units: [(&str, u64); 6] = [
        ("kib", 1 << 10),
        ("mib", 1 << 20),
        ("gib", 1 << 30),
        ("k", 1 << 10),
        ("m", 1 << 20),
        ("g", 1 << 30),
    ];
    for (suffix, mult) in units {
        if let Some(number) = lower.strip_suffix(suffix) {
            let value: u64 = number.trim().parse().ok()?;
            return value.checked_mul(mult);
        }
    }
    lower.parse().ok()
}

/// Exits with status 1 when any record failed verification, printing a
/// summary first — this is what makes the CI smoke job an actual gate.
pub fn exit_if_failed(experiment: &str, failures: usize, total: usize) {
    if failures > 0 {
        eprintln!("{experiment}: {failures}/{total} instances FAILED verification");
        std::process::exit(1);
    }
    println!("# {experiment}: all {total} instances verified");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_depend_on_coordinates_not_order() {
        let sweep = Sweep {
            experiment: "T".into(),
            task: Task::Gathering,
            instances: vec![(8, 4), (10, 3)],
            schedulers: vec![SchedulerKind::RoundRobin, SchedulerKind::SemiSynchronous],
            seeds_per_cell: 2,
            root_seed: 7,
            targets: TaskTargets::open_ended(),
            budget_per_n: 1_000,
            budget_flat: 0,
            async_budget_factor: 2,
        };
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 8);
        // All seeds distinct.
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
        // Reversing the instance list permutes jobs but keeps per-cell seeds.
        let mut reversed = sweep.clone();
        reversed.instances.reverse();
        let rjobs = reversed.jobs();
        assert_eq!(jobs[0].seed, rjobs[4].seed);
    }

    #[test]
    fn exp_args_parse_all_flags() {
        let args = ExpArgs::from_args(
            [
                "--quick",
                "--json",
                "out.json",
                "--seed",
                "99",
                "--max-n",
                "14",
                "--sequential",
                "--ledger",
                "out.jsonl",
                "--cache",
                "cachedir",
            ]
            .iter()
            .map(ToString::to_string),
            5,
        );
        assert!(args.quick);
        assert!(args.sequential);
        assert_eq!(args.mode(), ExecMode::Sequential);
        assert_eq!(args.root_seed, 99);
        assert_eq!(args.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(args.ledger.as_deref(), Some(Path::new("out.jsonl")));
        assert_eq!(args.cache.as_deref(), Some(Path::new("cachedir")));
        assert_eq!(args.value("--max-n"), Some("14"));
        assert!(!args.flag("--no-validate"));
    }

    #[test]
    fn byte_sizes_parse_with_and_without_suffixes() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("4096"), Some(4096));
        assert_eq!(parse_byte_size("64KiB"), Some(64 << 10));
        assert_eq!(parse_byte_size("64MiB"), Some(64 << 20));
        assert_eq!(parse_byte_size("2gib"), Some(2 << 30));
        assert_eq!(parse_byte_size(" 8 M "), Some(8 << 20));
        assert_eq!(parse_byte_size("1G"), Some(1 << 30));
        assert_eq!(parse_byte_size("banana"), None);
        assert_eq!(parse_byte_size("12.5MiB"), None);
        assert_eq!(parse_byte_size(&format!("{}GiB", u64::MAX)), None);
    }

    #[test]
    fn run_record_json_skips_wall_time() {
        let record = RunRecord {
            experiment: "T".into(),
            task: "gathering".into(),
            n: 8,
            k: 4,
            scheduler: "round-robin".into(),
            seed: 1,
            rounds: 10,
            cycles: 10,
            moves: 5,
            clearings: 0,
            steady_period: 0,
            explorations: 0,
            gathered: true,
            ok: true,
            detail: String::new(),
            wall_nanos: 123_456,
        };
        let json = serde_json::to_string(&record).unwrap();
        assert!(!json.contains("wall"));
        assert!(json.contains("\"task\":\"gathering\""));
        assert!(json.contains("\"ok\":true"));
    }
}
