//! The content-addressed sweep result cache.
//!
//! A completed ledger is immutable, and a sweep is a pure function of its
//! grid declaration, its root seed and the engine's semantic version — so a
//! completed ledger can be **addressed by content**: the cache key is a hash
//! of the grid's canonical encoding (which embeds the root seed) folded with
//! [`rr_corda::ENGINE_VERSION`].  Submitting a grid whose key is cached is
//! served by copying the cached ledger's bytes — zero engine work, proven by
//! the `cache_hit_runs_zero_engine_steps` test against the engine's debug
//! step probe.
//!
//! Entries are published atomically (write to a dot-tempfile, fsync,
//! rename), and an entry is only served after validation against the
//! requesting grid's bound header (header line byte-equality + footer cell
//! count), so a 64-bit key collision or a corrupted entry is a miss, not
//! wrong bytes; [`ResultCache::gc`] sweeps out incomplete or torn entries,
//! leaving recent tempfiles alone so it cannot race a concurrent publish.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::ledger;
use crate::sweep::SweepHeader;

/// Folds `bytes` into an FNV-1a 64-bit hash.
fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The content-address of a sweep result: hash of the grid's canonical
/// encoding folded with the engine's semantic version.
#[must_use]
pub fn cache_key(canonical_grid_encoding: &str, engine_version: &str) -> u64 {
    let hash = fnv1a64(FNV_OFFSET, canonical_grid_encoding.as_bytes());
    let hash = fnv1a64(hash, b"\0");
    fnv1a64(hash, engine_version.as_bytes())
}

/// A directory of completed ledgers addressed by [`cache_key`].
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory creation errors.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an entry for `key` would live at.
    #[must_use]
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.jsonl"))
    }

    /// Whether a scanned entry actually belongs to the grid asking for it:
    /// complete, header line byte-equal to the requesting grid's header
    /// (which binds the grid's content-address and cell count), and footer
    /// cell count in agreement.  This is what makes a 64-bit key collision
    /// — or an entry poisoned by external corruption — a cache **miss**
    /// instead of silently served wrong bytes.
    fn entry_matches(found: &ledger::LedgerScan, header: &SweepHeader) -> bool {
        found.is_complete()
            && found.header.as_deref() == Some(header.to_json_line().as_str())
            && header
                .grid_cells()
                .is_none_or(|cells| found.footer.map(|(c, _)| c) == Some(cells))
    }

    /// The cached ledger for `key`, if a **complete** one matching
    /// `header` (the requesting grid's bound header) is present.
    #[must_use]
    pub fn lookup(&self, key: u64, header: &SweepHeader) -> Option<PathBuf> {
        let path = self.entry_path(key);
        match ledger::scan(&path) {
            Ok(found) if Self::entry_matches(&found, header) => Some(path),
            _ => None,
        }
    }

    /// Publishes the completed ledger at `source` under `key` (atomically;
    /// concurrent publishers of the same key are idempotent — the content is
    /// identical by construction).  Refuses a ledger without a completion
    /// footer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; publishing an incomplete ledger is
    /// `InvalidInput`.
    pub fn publish(&self, key: u64, source: &Path) -> io::Result<PathBuf> {
        let found = ledger::scan(source)?;
        if !found.is_complete() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("refusing to cache incomplete ledger {}", source.display()),
            ));
        }
        let bytes = std::fs::read(source)?;
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}-{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        let dest = self.entry_path(key);
        std::fs::rename(&tmp, &dest)?;
        Ok(dest)
    }

    /// Serves the cached ledger for `key` into `dest` (atomically, via a
    /// sibling tempfile), after validating the entry against `header` — a
    /// non-matching entry is a miss, never served.  Returns whether there
    /// was a hit.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn serve(&self, key: u64, header: &SweepHeader, dest: &Path) -> io::Result<bool> {
        let Some(entry) = self.lookup(key, header) else {
            return Ok(false);
        };
        let bytes = std::fs::read(&entry)?;
        let tmp = dest.with_extension("serving");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, dest)?;
        Ok(true)
    }

    /// Removes incomplete entries and stale tempfiles, returning how many
    /// files were deleted.  Tempfiles younger than [`GC_TMP_GRACE`] are
    /// kept: they may belong to a publish that is happening right now, and
    /// deleting one under it would fail that publish's rename.
    ///
    /// # Errors
    ///
    /// Propagates directory reading errors (individual unlink races are
    /// ignored).
    pub fn gc(&self) -> io::Result<usize> {
        self.gc_with_grace(GC_TMP_GRACE)
    }

    /// [`ResultCache::gc`] with an explicit tempfile grace period (tests use
    /// zero to force collection).
    ///
    /// # Errors
    ///
    /// Propagates directory reading errors.
    pub fn gc_with_grace(&self, grace: std::time::Duration) -> io::Result<usize> {
        let mut removed = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let is_tmp = name.starts_with(".tmp-") || name.ends_with(".serving");
            let stale_tmp = is_tmp && file_older_than(&path, grace);
            let incomplete = name.ends_with(".jsonl")
                && !matches!(ledger::scan(&path), Ok(found) if found.is_complete());
            if (stale_tmp || incomplete) && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// How long a dot-tempfile must sit untouched before [`ResultCache::gc`]
/// considers it abandoned rather than a publish in flight.
pub const GC_TMP_GRACE: std::time::Duration = std::time::Duration::from_secs(300);

/// Whether the file at `path` was last modified at least `grace` ago.  A
/// missing file, an unreadable mtime or a clock that says the file is from
/// the future all answer `false` — never delete what cannot be aged.
#[must_use]
pub fn file_older_than(path: &Path, grace: std::time::Duration) -> bool {
    std::fs::metadata(path)
        .and_then(|meta| meta.modified())
        .ok()
        .and_then(|mtime| mtime.elapsed().ok())
        .is_some_and(|age| age >= grace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;
    use crate::sweep::SweepHeader;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Rec {
        experiment: &'static str,
        ok: bool,
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rr-cache-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn key_depends_on_encoding_and_engine_version() {
        let a = cache_key("grid-a", "1.0.0");
        assert_eq!(a, cache_key("grid-a", "1.0.0"));
        assert_ne!(a, cache_key("grid-b", "1.0.0"));
        assert_ne!(a, cache_key("grid-a", "1.0.1"));
    }

    #[test]
    fn publish_serve_roundtrip_and_gc() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let source = dir.join("source.ledger");
        let header = SweepHeader::new("T", 5);
        let mut ledger = Ledger::create(&source, &header).unwrap();
        ledger
            .append(
                0,
                &Rec {
                    experiment: "T",
                    ok: true,
                },
            )
            .unwrap();

        // Incomplete ledgers are refused.
        let key = cache_key("g", "v");
        assert!(cache.publish(key, &source).is_err());
        assert!(cache.lookup(key, &header).is_none());

        ledger.finish().unwrap();
        cache.publish(key, &source).unwrap();
        assert!(cache.lookup(key, &header).is_some());

        let dest = dir.join("served.ledger");
        assert!(cache.serve(key, &header, &dest).unwrap());
        assert_eq!(
            std::fs::read(&source).unwrap(),
            std::fs::read(&dest).unwrap()
        );
        assert!(!cache
            .serve(cache_key("other", "v"), &header, &dest)
            .unwrap());

        // gc removes a hand-planted incomplete entry but keeps the good one.
        let bad = cache.entry_path(cache_key("bad", "v"));
        std::fs::write(&bad, "{\"schema\":\"rr-sweep/v1\"}\n{\"experiment\"").unwrap();
        let removed = cache.gc().unwrap();
        assert_eq!(removed, 1);
        assert!(cache.lookup(key, &header).is_some());
        assert!(!bad.exists());
    }

    #[test]
    fn mismatched_entry_is_a_miss_not_wrong_bytes() {
        let dir = tmp_dir("validate");
        let cache = ResultCache::open(&dir).unwrap();
        let key = cache_key("colliding", "v");

        // An entry written by a *different* grid landing under this key (a
        // key collision, or a poisoned entry) must never be served.
        let other_header = SweepHeader::new("OTHER", 9).for_grid(key, 1);
        let source = dir.join("other.ledger");
        let mut ledger = Ledger::create(&source, &other_header).unwrap();
        ledger
            .append(
                0,
                &Rec {
                    experiment: "OTHER",
                    ok: true,
                },
            )
            .unwrap();
        ledger.finish().unwrap();
        cache.publish(key, &source).unwrap();

        let asking = SweepHeader::new("MINE", 9).for_grid(key, 1);
        assert!(cache.lookup(key, &asking).is_none(), "header must match");
        let dest = dir.join("dest.ledger");
        assert!(!cache.serve(key, &asking, &dest).unwrap());
        assert!(!dest.exists(), "a miss must not touch the destination");
        assert!(
            cache.lookup(key, &other_header).is_some(),
            "the rightful owner still hits"
        );

        // A grid of the same experiment and seed but a different shape
        // (different declared cell count) is also a miss.
        let short = SweepHeader::new("OTHER", 9).for_grid(key, 2);
        assert!(cache.lookup(key, &short).is_none());
    }

    #[test]
    fn gc_spares_recent_tempfiles() {
        let dir = tmp_dir("tmp-grace");
        let cache = ResultCache::open(&dir).unwrap();
        let tmp = dir.join(".tmp-0000000000000001-99999");
        std::fs::write(&tmp, "half a publish").unwrap();
        // Default grace: a freshly written tempfile survives gc...
        cache.gc().unwrap();
        assert!(tmp.exists(), "gc raced a publish in flight");
        // ...but with the grace elapsed (forced to zero) it is collected.
        let removed = cache.gc_with_grace(std::time::Duration::ZERO).unwrap();
        assert_eq!(removed, 1);
        assert!(!tmp.exists());
    }
}
