//! The sweep service's durability contract, proven at the byte level:
//!
//! 1. Kill a grid execution at **any** point — any byte prefix of its
//!    ledger, torn lines included — and resuming produces a ledger
//!    byte-identical to an uninterrupted run.
//! 2. Re-running an identical grid against the result cache performs
//!    **zero** engine work (no `Engine::step_into` / `Engine::leap` calls,
//!    counted by the engine's debug step probe) and serves byte-identical
//!    ledger bytes.

use std::path::PathBuf;

use proptest::prelude::*;
use rr_bench::cache::ResultCache;
use rr_bench::grid::{execute_grid, ExecOptions, GridKind, GridSpec};
use rr_bench::sweep::ExecMode;
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr-resume-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but non-trivial grid: 2 instances × 3 schedulers = 6 cells.
fn small_spec(root_seed: u64) -> GridSpec {
    GridSpec {
        experiment: "T-resume".to_string(),
        root_seed,
        instances: vec![(8, 4), (10, 3)],
        kind: GridKind::Sweep {
            task: Task::Gathering,
            schedulers: SchedulerKind::ALL.to_vec(),
            seeds_per_cell: 1,
            targets: TaskTargets::open_ended(),
            budget_per_n: 20_000,
            budget_flat: 0,
            async_budget_factor: 2,
        },
    }
}

fn run_to_ledger(spec: &GridSpec, path: &PathBuf, mode: ExecMode) -> Vec<u8> {
    let options = ExecOptions {
        mode: Some(mode),
        ledger: Some(path.clone()),
        cache: None,
    };
    let run = execute_grid(spec, &options).unwrap();
    assert!(!run.stats.from_cache);
    std::fs::read(path).unwrap()
}

#[test]
fn resume_at_every_record_boundary_is_byte_identical() {
    let dir = tmp_dir("boundaries");
    let spec = small_spec(42);
    let full = run_to_ledger(
        &spec,
        &dir.join("uninterrupted.jsonl"),
        ExecMode::Sequential,
    );

    // Cut after the header and after each record line (the footer boundary
    // makes the last iteration a resume-of-complete no-op check).
    let newline_offsets: Vec<usize> = full
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(
        newline_offsets.len(),
        1 + spec.cells() + 1,
        "header + records + footer"
    );
    for (i, &cut) in newline_offsets.iter().enumerate() {
        let path = dir.join(format!("cut-{i}.jsonl"));
        std::fs::write(&path, &full[..cut]).unwrap();
        let resumed = run_to_ledger(&spec, &path, ExecMode::Sequential);
        assert_eq!(
            resumed, full,
            "ledger resumed from record boundary {i} must be byte-identical"
        );
    }
}

#[test]
fn sharded_resume_is_byte_identical_to_sequential() {
    let dir = tmp_dir("sharded");
    let spec = small_spec(7);
    let full = run_to_ledger(&spec, &dir.join("sequential.jsonl"), ExecMode::Sequential);

    let cut = full
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .nth(2)
        .unwrap(); // header + 2 records
    let path = dir.join("resume-sharded.jsonl");
    std::fs::write(&path, &full[..cut]).unwrap();
    let resumed = run_to_ledger(&spec, &path, ExecMode::Sharded);
    assert_eq!(resumed, full);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full kill-at-ANY-byte property: truncating the ledger at an
    /// arbitrary byte offset — torn lines, a torn header, an empty file, a
    /// torn footer — and resuming reproduces the uninterrupted bytes.
    #[test]
    fn resume_from_any_byte_prefix_is_byte_identical(permille in 0usize..=1000) {
        let dir = tmp_dir("anybyte");
        let spec = small_spec(1234);
        let full_path = dir.join("full.jsonl");
        let full = if full_path.exists() {
            std::fs::read(&full_path).unwrap()
        } else {
            run_to_ledger(&spec, &full_path, ExecMode::Sequential)
        };
        let cut = (full.len() * permille / 1000).min(full.len());
        let path = dir.join(format!("cut-{cut}.jsonl"));
        std::fs::write(&path, &full[..cut]).unwrap();
        let resumed = run_to_ledger(&spec, &path, ExecMode::Sequential);
        prop_assert_eq!(resumed, full, "cut at byte {}", cut);
    }
}

#[test]
fn cache_hit_runs_zero_engine_steps() {
    let dir = tmp_dir("cache-hit");
    let spec = small_spec(99);
    let cache = ResultCache::open(&dir.join("cache")).unwrap();

    // First run executes and publishes.
    let first_path = dir.join("first.jsonl");
    let options = ExecOptions {
        mode: Some(ExecMode::Sequential),
        ledger: Some(first_path.clone()),
        cache: Some(&cache),
    };
    let first = execute_grid(&spec, &options).unwrap();
    assert!(!first.stats.from_cache);
    assert_eq!(first.stats.cells_executed, spec.cells());
    assert!(
        cache.lookup(spec.cache_key(), &spec.header()).is_some(),
        "published"
    );

    // Second run of the identical grid into a fresh ledger path: served
    // entirely from the cache, with zero engine work.
    let probe_before = rr_corda::debug_step_probe();
    let second_path = dir.join("second.jsonl");
    let options = ExecOptions {
        mode: Some(ExecMode::Sequential),
        ledger: Some(second_path.clone()),
        cache: Some(&cache),
    };
    let second = execute_grid(&spec, &options).unwrap();
    let probe_after = rr_corda::debug_step_probe();

    assert!(second.stats.from_cache, "identical grid must hit the cache");
    assert_eq!(second.stats.cells_executed, 0);
    assert_eq!(second.stats.cells_reused, spec.cells());
    if cfg!(debug_assertions) {
        assert_eq!(
            probe_after - probe_before,
            0,
            "a cache hit must not call Engine::step_into or Engine::leap"
        );
    }
    assert_eq!(
        std::fs::read(&first_path).unwrap(),
        std::fs::read(&second_path).unwrap(),
        "served bytes must equal executed bytes"
    );

    // A different root seed is a different content address: cache miss.
    let other = small_spec(100);
    assert!(cache.lookup(other.cache_key(), &other.header()).is_none());
}

/// The conflation regression: two grids of the same experiment and root
/// seed but different shapes (think `--quick` vs the full preset, whose
/// default seeds are identical) sharing one `--ledger` path must never
/// adopt each other's records — the ledger header binds the grid's
/// content-address and cell count, so the shape mismatch restarts the
/// ledger instead of silently serving or extending the wrong grid.
#[test]
fn same_seed_different_shape_grids_never_share_a_ledger() {
    let dir = tmp_dir("shape");
    let quick = small_spec(42);
    let mut full = small_spec(42);
    // Differ at the *front* so adopted-prefix bytes could never coincide.
    full.instances.insert(0, (12, 5));
    assert_eq!(quick.experiment, full.experiment);
    assert_eq!(quick.root_seed, full.root_seed);
    assert_ne!(quick.cache_key(), full.cache_key());
    assert_ne!(
        quick.header().to_json_line(),
        full.header().to_json_line(),
        "ledger headers must bind the grid shape"
    );

    // The quick grid completes into the shared ledger path...
    let shared = dir.join("shared.jsonl");
    let quick_bytes = run_to_ledger(&quick, &shared, ExecMode::Sequential);

    // ...and the full grid at the same path must NOT resume it as complete:
    // it restarts and executes every one of its own cells.
    let options = ExecOptions {
        mode: Some(ExecMode::Sequential),
        ledger: Some(shared.clone()),
        cache: None,
    };
    let run = execute_grid(&full, &options).unwrap();
    assert_eq!(run.stats.cells_executed, full.cells());
    assert_eq!(run.stats.cells_reused, 0);
    let full_bytes = std::fs::read(&shared).unwrap();
    let reference = run_to_ledger(&full, &dir.join("full-fresh.jsonl"), ExecMode::Sequential);
    assert_eq!(full_bytes, reference, "restarted ledger = fresh full run");

    // The reverse direction: a partial full-grid ledger is not a resumable
    // prefix for the quick grid — the quick run restarts it and reproduces
    // exactly the fresh quick bytes (no foreign records adopted).
    let cut = reference
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .nth(2)
        .unwrap(); // header + 2 full-grid records
    let partial = dir.join("partial-full.jsonl");
    std::fs::write(&partial, &reference[..cut]).unwrap();
    let resumed = run_to_ledger(&quick, &partial, ExecMode::Sequential);
    assert_eq!(
        resumed, quick_bytes,
        "quick grid must restart a foreign partial ledger, not extend it"
    );
}

/// A crash between `Ledger::finish` and the cache publish leaves a complete
/// ledger with no cache entry; the next run over that ledger must repair
/// the publish instead of skipping it forever.
#[test]
fn complete_ledger_resume_publishes_to_the_cache() {
    let dir = tmp_dir("late-publish");
    let spec = small_spec(55);
    let path = dir.join("ledger.jsonl");
    // Completes without a cache configured — as if the publish was lost.
    run_to_ledger(&spec, &path, ExecMode::Sequential);

    let cache = ResultCache::open(&dir.join("cache")).unwrap();
    assert!(cache.lookup(spec.cache_key(), &spec.header()).is_none());
    let options = ExecOptions {
        mode: Some(ExecMode::Sequential),
        ledger: Some(path.clone()),
        cache: Some(&cache),
    };
    let run = execute_grid(&spec, &options).unwrap();
    assert!(!run.stats.from_cache);
    assert_eq!(run.stats.cells_executed, 0);
    assert_eq!(run.stats.cells_reused, spec.cells());
    assert!(
        cache.lookup(spec.cache_key(), &spec.header()).is_some(),
        "resuming a complete ledger must publish the missing cache entry"
    );
}

#[test]
fn engine_version_partitions_the_cache_key() {
    let spec = small_spec(5);
    let enc = spec.canonical_encoding();
    let current = rr_bench::cache::cache_key(&enc, rr_corda::ENGINE_VERSION);
    let future = rr_bench::cache::cache_key(&enc, "999.0.0");
    assert_ne!(
        current, future,
        "an engine version bump must invalidate cached ledgers"
    );
    assert_eq!(spec.cache_key(), current);
}
