//! Golden-file test for the `rr-sweep/v1` JSON record schema.
//!
//! The sweep reports are consumed downstream (CI's BENCH.json artifacts, the
//! perf-trajectory tooling), so their **exact bytes** — field order, field
//! names, string escaping, float/bool rendering — are a contract.  The
//! vendored serde/serde_json stand-ins serialize struct fields in
//! declaration order; these tests pin that order and the escaping rules
//! against checked-in golden files, so a vendored-serializer change (or an
//! accidental field reorder in `RunRecord`/`ModelCheckRecord`) cannot
//! silently break BENCH.json consumers.
//!
//! If a change here is *intentional*, regenerate the golden files with
//! `UPDATE_GOLDEN=1 cargo test -p rr-bench --test sweep_schema_golden` and
//! bump the schema consumers.

use std::path::PathBuf;

use rr_bench::sweep::{
    json_report, FaultRecord, ModelCheckRecord, RunRecord, ScaleRecord, ThroughputRecord,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "\n{} drifted from the golden bytes — field order or escaping changed; \
         if intentional, regenerate with UPDATE_GOLDEN=1 and update consumers",
        path.display()
    );
}

/// Two run records: a vanilla success and a failure whose `detail` exercises
/// every escaping rule of the serializer (quote, backslash, newline, tab,
/// carriage return, a sub-0x20 control character, and non-ASCII passthrough).
fn sample_run_records() -> Vec<RunRecord> {
    vec![
        RunRecord {
            experiment: "E-golden".into(),
            task: "gathering".into(),
            n: 12,
            k: 5,
            scheduler: "round-robin".into(),
            seed: 0xDEAD_BEEF,
            rounds: 120,
            cycles: 120,
            moves: 37,
            clearings: 0,
            steady_period: 0,
            explorations: 0,
            gathered: true,
            ok: true,
            detail: String::new(),
            wall_nanos: 123_456_789,
        },
        RunRecord {
            experiment: "E-golden".into(),
            task: "graph-searching".into(),
            n: 13,
            k: 6,
            scheduler: "async".into(),
            seed: 1,
            rounds: 99_999,
            cycles: 4_002,
            moves: 3_000,
            clearings: 2,
            steady_period: 41,
            explorations: 1,
            gathered: false,
            ok: false,
            detail: "budget \"exhausted\"\\after 2 clearings\n\ttab & unit\u{1}; naïve ✓".into(),
            wall_nanos: 1,
        },
    ]
}

fn sample_modelcheck_records() -> Vec<ModelCheckRecord> {
    vec![
        ModelCheckRecord {
            experiment: "E-golden".into(),
            task: "gathering".into(),
            n: 8,
            k: 4,
            mode: "async".into(),
            initial_classes: 2,
            states: 320,
            quotient_states: 202,
            edges: 1280,
            target_states: 4,
            progress_edges: 0,
            peak_resident_nodes: 352,
            peak_resident_bytes: 8448,
            bytes_per_state: 24,
            spilled_bytes: 7680,
            visited_spilled_bytes: 4096,
            store: "spill".into(),
            states_per_sec: 160_000,
            vacuous: false,
            ok: true,
            counterexample: String::new(),
            wall_nanos: 55,
        },
        ModelCheckRecord {
            experiment: "E-golden".into(),
            task: "alignment".into(),
            n: 8,
            k: 4,
            mode: "ssync".into(),
            initial_classes: 1,
            states: 9,
            quotient_states: 7,
            edges: 60,
            target_states: 0,
            progress_edges: 0,
            peak_resident_nodes: 16,
            peak_resident_bytes: 384,
            bytes_per_state: 24,
            spilled_bytes: 0,
            visited_spilled_bytes: 0,
            store: "mem".into(),
            states_per_sec: 0,
            vacuous: false,
            ok: false,
            counterexample: "from [o.o\"o\\o...]: collision: R{0,1}\r\n(L2 E2)*".into(),
            wall_nanos: 55,
        },
    ]
}

/// Two fault records: a proved crash cell and a degraded cell whose
/// counterexample exercises the escaping rules (quotes, backslash, newline,
/// control char, non-ASCII passthrough) plus the `unfair` row shape.
fn sample_fault_records() -> Vec<FaultRecord> {
    vec![
        FaultRecord {
            experiment: "E-golden".into(),
            task: "alignment".into(),
            n: 8,
            k: 4,
            mode: "async".into(),
            fault: "crash".into(),
            fault_detail: "f=1".into(),
            property: "exclusivity + alignment under one crash".into(),
            initial_classes: 2,
            states: 360,
            edges: 1440,
            proved: 2,
            falsified: 0,
            replayed: true,
            ok: true,
            counterexample: String::new(),
            wall_nanos: 99,
        },
        FaultRecord {
            experiment: "E-golden".into(),
            task: "gathering".into(),
            n: 6,
            k: 3,
            mode: "ssync".into(),
            fault: "corrupt-look".into(),
            fault_detail: "looks=1".into(),
            property: "eventual gathering despite one corrupted Look".into(),
            initial_classes: 1,
            states: 15,
            edges: 45,
            proved: 0,
            falsified: 1,
            replayed: true,
            ok: true,
            counterexample:
                "from [oo.o..]: \"fair\" schedule\\lasso\r\n(R{0} R{2})* [corrupt 1 phantom @0]\u{1}; naïve ✓"
                    .into(),
            wall_nanos: 99,
        },
    ]
}

fn sample_throughput_records() -> Vec<ThroughputRecord> {
    vec![
        ThroughputRecord {
            experiment: "E-golden".into(),
            task: "throughput".into(),
            n: 256,
            k: 8,
            scheduler: "round-robin".into(),
            seed: 0xBEEF,
            steps: 100_000,
            looks: 50_000,
            moves: 49_999,
            steps_per_sec: 9_000_000,
            baseline_steps_per_sec: 500_000,
            speedup_x100: 1_800,
            looks_per_sec: 20_000_000,
            allocs_per_kstep: 1_000,
            look_allocs_per_kstep: 0,
            ok: true,
            detail: String::new(),
            wall_nanos: 123,
        },
        ThroughputRecord {
            experiment: "E-golden".into(),
            task: "throughput".into(),
            n: 16,
            k: 4,
            scheduler: "async".into(),
            seed: 7,
            steps: 100,
            looks: 60,
            moves: 40,
            steps_per_sec: 1,
            baseline_steps_per_sec: 1,
            speedup_x100: 100,
            looks_per_sec: 2,
            allocs_per_kstep: 990,
            look_allocs_per_kstep: 3,
            ok: false,
            detail: "pipelines diverged: incremental (steps 100, looks 60, moves 40) \
                     vs baseline (steps 100, looks 61, moves 39)"
                .into(),
            wall_nanos: 55,
        },
    ]
}

/// Two scale records: the single-worker reference row and a multi-worker
/// row, digests equal (the scale-bench gate's happy path).
fn sample_scale_records() -> Vec<ScaleRecord> {
    vec![
        ScaleRecord {
            experiment: "E-golden".into(),
            task: "gathering".into(),
            n: 9,
            k: 4,
            mode: "async".into(),
            store: "spill".into(),
            workers: 1,
            mem_budget: 1 << 20,
            states: 250_000,
            edges: 1_000_000,
            peak_resident_bytes: 17_408_000,
            spilled_bytes: 6_000_000,
            visited_spilled_bytes: 14_000_000,
            expand_nanos: 4_000_000_000,
            merge_nanos: 2_000_000_000,
            states_per_sec: 41_000,
            report_digest: 0xDEAD_BEEF_CAFE_F00D,
            ok: true,
            wall_nanos: 77,
        },
        ScaleRecord {
            experiment: "E-golden".into(),
            task: "gathering".into(),
            n: 9,
            k: 4,
            mode: "async".into(),
            store: "spill".into(),
            workers: 4,
            mem_budget: 1 << 20,
            states: 250_000,
            edges: 1_000_000,
            peak_resident_bytes: 17_408_000,
            spilled_bytes: 6_000_000,
            visited_spilled_bytes: 14_000_000,
            expand_nanos: 1_100_000_000,
            merge_nanos: 700_000_000,
            states_per_sec: 138_000,
            report_digest: 0xDEAD_BEEF_CAFE_F00D,
            ok: true,
            wall_nanos: 33,
        },
    ]
}

#[test]
fn scale_record_report_matches_golden_bytes() {
    let json = json_report("E-golden", 16, &sample_scale_records()).unwrap() + "\n";
    assert_matches_golden("rr_sweep_v1_scale.json", &json);
}

#[test]
fn scale_record_skips_wall_time_and_pins_digest_field() {
    let json = json_report("E-golden", 16, &sample_scale_records()).unwrap();
    assert!(!json.contains("wall_nanos"), "skipped field leaked");
    assert!(json.contains("\"report_digest\":16045690984503111693"));
    assert!(json.contains("\"visited_spilled_bytes\":14000000"));
}

#[test]
fn throughput_record_report_matches_golden_bytes() {
    let json = json_report("E-golden", 18, &sample_throughput_records()).unwrap() + "\n";
    assert_matches_golden("rr_sweep_v1_throughput.json", &json);
}

#[test]
fn throughput_record_skips_wall_time() {
    let json = json_report("E-golden", 18, &sample_throughput_records()).unwrap();
    assert!(!json.contains("wall_nanos"), "skipped field leaked");
    assert!(json.contains("\"speedup_x100\":1800"));
    assert!(json.contains("\"look_allocs_per_kstep\":0"));
}

#[test]
fn fault_record_report_matches_golden_bytes() {
    let json = json_report("E-golden", 14, &sample_fault_records()).unwrap() + "\n";
    assert_matches_golden("rr_sweep_v1_faults.json", &json);
}

#[test]
fn fault_record_field_order_and_wall_skip_are_pinned() {
    let json = json_report("E-golden", 14, &sample_fault_records()).unwrap();
    assert!(!json.contains("wall_nanos"), "skipped field leaked");
    let key_order = [
        "\"experiment\"",
        "\"task\"",
        "\"n\"",
        "\"k\"",
        "\"mode\"",
        "\"fault\"",
        "\"fault_detail\"",
        "\"property\"",
        "\"initial_classes\"",
        "\"states\"",
        "\"edges\"",
        "\"proved\"",
        "\"falsified\"",
        "\"replayed\"",
        "\"ok\"",
        "\"counterexample\"",
    ];
    let records_at = json.find("\"records\"").expect("records field");
    let mut cursor = records_at;
    for key in key_order {
        let at = json[cursor..]
            .find(key)
            .unwrap_or_else(|| panic!("key {key} missing or out of order"));
        cursor += at;
    }
    assert!(json.contains("\"fault\":\"crash\""));
    assert!(json.contains("\"fault_detail\":\"looks=1\""));
}

#[test]
fn run_record_report_matches_golden_bytes() {
    let json = json_report("E-golden", 42, &sample_run_records()).unwrap() + "\n";
    assert_matches_golden("rr_sweep_v1_run.json", &json);
}

#[test]
fn modelcheck_record_report_matches_golden_bytes() {
    let json = json_report("E-golden", 7, &sample_modelcheck_records()).unwrap() + "\n";
    assert_matches_golden("rr_sweep_v1_modelcheck.json", &json);
}

#[test]
fn envelope_and_field_order_are_pinned() {
    // Belt and braces next to the byte-for-byte golden: the envelope keys
    // and the record keys appear in their declared order, `wall_nanos` is
    // skipped, and the schema tag is the `rr-sweep/v1` contract.
    let json = json_report("E-golden", 42, &sample_run_records()).unwrap();
    let key_order = [
        "\"schema\"",
        "\"schema_version\"",
        "\"engine_version\"",
        "\"experiment\"",
        "\"root_seed\"",
        "\"records\"",
        "\"task\"",
        "\"n\"",
        "\"k\"",
        "\"scheduler\"",
        "\"seed\"",
        "\"rounds\"",
        "\"cycles\"",
        "\"moves\"",
        "\"clearings\"",
        "\"steady_period\"",
        "\"explorations\"",
        "\"gathered\"",
        "\"ok\"",
        "\"detail\"",
    ];
    let mut cursor = 0usize;
    for key in key_order {
        let at = json[cursor..]
            .find(key)
            .unwrap_or_else(|| panic!("key {key} missing or out of order"));
        cursor += at;
    }
    assert!(json.starts_with("{\"schema\":\"rr-sweep/v1\""));
    assert!(!json.contains("wall_nanos"), "skipped field leaked");
}

#[test]
fn escaping_rules_are_pinned() {
    let json = json_report("E-golden", 42, &sample_run_records()).unwrap();
    // Quote, backslash, newline, tab, control char as \u00XX; non-ASCII
    // passes through unescaped.
    let expected = r#"budget \"exhausted\"\\after 2 clearings\n\ttab & unit\u0001; na"#;
    assert!(json.contains(expected), "escaping drifted: {json}");
}
