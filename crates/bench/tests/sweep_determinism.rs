//! The sweep subsystem's headline guarantee: a sharded (rayon) sweep and a
//! sequential sweep with the same root seed emit **byte-identical** JSON
//! records, for every task family and scheduler kind.

use proptest::prelude::*;
use rr_bench::sweep::{json_report, RunOptions, RunRecord, Sweep};
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn strip_wall(mut records: Vec<RunRecord>) -> Vec<RunRecord> {
    for r in &mut records {
        r.wall_nanos = 0;
    }
    records
}

fn gathering_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "T-gathering".into(),
        task: Task::Gathering,
        instances: vec![(8, 4), (10, 3), (12, 5)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 2,
        root_seed,
        targets: TaskTargets::open_ended(),
        budget_per_n: 20_000,
        budget_flat: 0,
        async_budget_factor: 2,
    }
}

fn searching_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "T-searching".into(),
        task: Task::GraphSearching,
        instances: vec![(12, 5), (13, 6)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed,
        targets: TaskTargets::demonstrate(3, 0),
        budget_per_n: 10_000,
        budget_flat: 10_000,
        async_budget_factor: 2,
    }
}

#[test]
fn sharded_equals_sequential_for_gathering() {
    let sweep = gathering_sweep(42);
    let sequential = sweep.run_with(&RunOptions::new());
    let sharded = sweep.run_with(&RunOptions::new().sharded());
    assert_eq!(sequential.len(), sweep.jobs().len());
    assert_eq!(strip_wall(sequential.clone()), strip_wall(sharded.clone()));
    let a = json_report("T-gathering", 42, &sequential).unwrap();
    let b = json_report("T-gathering", 42, &sharded).unwrap();
    assert_eq!(a, b, "JSON reports must be byte-identical");
    assert!(sequential.iter().all(|r| r.ok), "{sequential:?}");
}

#[test]
fn sharded_equals_sequential_for_searching() {
    let sweep = searching_sweep(7);
    let sequential = sweep.run_with(&RunOptions::new());
    let sharded = sweep.run_with(&RunOptions::new().sharded());
    let a = json_report("T-searching", 7, &sequential).unwrap();
    let b = json_report("T-searching", 7, &sharded).unwrap();
    assert_eq!(a, b, "JSON reports must be byte-identical");
    assert!(sequential.iter().all(|r| r.ok && r.clearings >= 3));
}

#[test]
fn rerunning_the_same_sweep_is_reproducible() {
    let sweep = gathering_sweep(1234);
    let first = sweep.run_with(&RunOptions::new().sharded());
    let second = sweep.run_with(&RunOptions::new().sharded());
    assert_eq!(strip_wall(first), strip_wall(second));
}

/// `resume_at(c)` must produce exactly the suffix an uninterrupted run
/// produces — the primitive the sweep service's crash resume rests on.
#[test]
fn resume_at_reproduces_the_suffix() {
    let sweep = gathering_sweep(99);
    let full = strip_wall(sweep.run_with(&RunOptions::new()));
    for skip in [0, 1, full.len() / 2, full.len() - 1, full.len()] {
        let suffix = strip_wall(sweep.run_with(&RunOptions::new().resume_at(skip)));
        assert_eq!(suffix, full[skip..], "resume at {skip}");
        let sharded = strip_wall(sweep.run_with(&RunOptions::new().sharded().resume_at(skip)));
        assert_eq!(sharded, full[skip..], "sharded resume at {skip}");
    }
}

/// The progress sink sees every record exactly once, tagged with its cell
/// index, under both execution modes.
#[test]
fn progress_sink_observes_every_cell() {
    use std::sync::Mutex;
    let sweep = gathering_sweep(5);
    for options in [RunOptions::new(), RunOptions::new().sharded()] {
        let seen: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let sink = |i: usize, r: &RunRecord| seen.lock().unwrap().push((i, r.seed));
        let records = sweep.run_with(&options.progress(&sink));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let expected: Vec<(usize, u64)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.seed))
            .collect();
        assert_eq!(seen, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identical sharded vs sequential JSON for arbitrary root seeds
    /// (small grid to keep the property affordable).
    #[test]
    fn sharded_equals_sequential_for_any_root_seed(root_seed in 0u64..u64::MAX) {
        let sweep = Sweep {
            instances: vec![(8, 4), (10, 3)],
            seeds_per_cell: 1,
            ..gathering_sweep(root_seed)
        };
        let a = json_report("T", root_seed, &sweep.run_with(&RunOptions::new())).unwrap();
        let b = json_report("T", root_seed, &sweep.run_with(&RunOptions::new().sharded())).unwrap();
        prop_assert_eq!(a, b);
    }
}
