//! The sweep subsystem's headline guarantee: a sharded (rayon) sweep and a
//! sequential sweep with the same root seed emit **byte-identical** JSON
//! records, for every task family and scheduler kind.

use proptest::prelude::*;
use rr_bench::sweep::{json_report, ExecMode, RunRecord, Sweep};
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn strip_wall(mut records: Vec<RunRecord>) -> Vec<RunRecord> {
    for r in &mut records {
        r.wall_nanos = 0;
    }
    records
}

fn gathering_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "T-gathering",
        task: Task::Gathering,
        instances: vec![(8, 4), (10, 3), (12, 5)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 2,
        root_seed,
        targets: TaskTargets::open_ended(),
        budget_per_n: 20_000,
        budget_flat: 0,
        async_budget_factor: 2,
    }
}

fn searching_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "T-searching",
        task: Task::GraphSearching,
        instances: vec![(12, 5), (13, 6)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed,
        targets: TaskTargets::demonstrate(3, 0),
        budget_per_n: 10_000,
        budget_flat: 10_000,
        async_budget_factor: 2,
    }
}

#[test]
fn sharded_equals_sequential_for_gathering() {
    let sweep = gathering_sweep(42);
    let sequential = sweep.run(ExecMode::Sequential);
    let sharded = sweep.run(ExecMode::Sharded);
    assert_eq!(sequential.len(), sweep.jobs().len());
    assert_eq!(strip_wall(sequential.clone()), strip_wall(sharded.clone()));
    let a = json_report("T-gathering", 42, &sequential).unwrap();
    let b = json_report("T-gathering", 42, &sharded).unwrap();
    assert_eq!(a, b, "JSON reports must be byte-identical");
    assert!(sequential.iter().all(|r| r.ok), "{sequential:?}");
}

#[test]
fn sharded_equals_sequential_for_searching() {
    let sweep = searching_sweep(7);
    let sequential = sweep.run(ExecMode::Sequential);
    let sharded = sweep.run(ExecMode::Sharded);
    let a = json_report("T-searching", 7, &sequential).unwrap();
    let b = json_report("T-searching", 7, &sharded).unwrap();
    assert_eq!(a, b, "JSON reports must be byte-identical");
    assert!(sequential.iter().all(|r| r.ok && r.clearings >= 3));
}

#[test]
fn rerunning_the_same_sweep_is_reproducible() {
    let sweep = gathering_sweep(1234);
    let first = sweep.run(ExecMode::Sharded);
    let second = sweep.run(ExecMode::Sharded);
    assert_eq!(strip_wall(first), strip_wall(second));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identical sharded vs sequential JSON for arbitrary root seeds
    /// (small grid to keep the property affordable).
    #[test]
    fn sharded_equals_sequential_for_any_root_seed(root_seed in 0u64..u64::MAX) {
        let sweep = Sweep {
            instances: vec![(8, 4), (10, 3)],
            seeds_per_cell: 1,
            ..gathering_sweep(root_seed)
        };
        let a = json_report("T", root_seed, &sweep.run(ExecMode::Sequential)).unwrap();
        let b = json_report("T", root_seed, &sweep.run(ExecMode::Sharded)).unwrap();
        prop_assert_eq!(a, b);
    }
}
