//! The round-leaping engine's headline guarantee: a sweep run with
//! `StepPath::Leap` forced on emits **byte-identical** JSON records to the
//! same sweep with `StepPath::StepBaseline` forced on (and to the per-task
//! default), for every task family and scheduler kind.
//!
//! Leaping is a pure execution-strategy change: when the leap certificate
//! holds the engine replays memoized decisions (or jumps whole rounds under
//! the fully synchronous scheduler), and when it does not hold the engine
//! falls back to baseline stepping.  Either way every counter, report and
//! trace event must be exactly what the step-by-step pipeline would have
//! produced, so the sweep records — which fold in rounds, cycles, moves,
//! clearings, steady periods and gathering verdicts — must not move by a
//! single byte.

use proptest::prelude::*;
use rr_bench::sweep::{json_report, RunOptions, RunRecord, Sweep};
use rr_corda::{SchedulerKind, StepPath};
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;

fn strip_wall(mut records: Vec<RunRecord>) -> Vec<RunRecord> {
    for r in &mut records {
        r.wall_nanos = 0;
    }
    records
}

/// E6-shaped grid: gathering, the task whose driver defaults to
/// `StepPath::Leap` and whose endgame certificate actually fires.
fn gathering_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "L-gathering".into(),
        task: Task::Gathering,
        instances: vec![(8, 4), (10, 3), (12, 5)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 2,
        root_seed,
        targets: TaskTargets::open_ended(),
        budget_per_n: 20_000,
        budget_flat: 0,
        async_budget_factor: 2,
    }
}

/// E4-shaped grid: exclusive perpetual graph searching (the greedy-gap
/// walker certificate path, with clearing targets checked per record).
fn searching_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "L-searching".into(),
        task: Task::GraphSearching,
        instances: vec![(12, 5), (13, 6)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed,
        targets: TaskTargets::demonstrate(3, 0),
        budget_per_n: 10_000,
        budget_flat: 10_000,
        async_budget_factor: 2,
    }
}

/// E5-shaped grid: the dense `k = n - 3` searching teams.
fn dense_searching_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "L-nminus3".into(),
        task: Task::GraphSearching,
        instances: vec![(10, 7), (12, 9)],
        schedulers: vec![SchedulerKind::RoundRobin],
        seeds_per_cell: 1,
        root_seed,
        targets: TaskTargets::demonstrate(5, 1),
        budget_per_n: 60_000,
        budget_flat: 0,
        async_budget_factor: 2,
    }
}

/// Exploration rides the same unified protocol stack; include it so every
/// task variant is pinned.
fn exploration_sweep(root_seed: u64) -> Sweep {
    Sweep {
        experiment: "L-exploration".into(),
        task: Task::Exploration,
        instances: vec![(12, 5), (13, 6)],
        schedulers: SchedulerKind::ALL.to_vec(),
        seeds_per_cell: 1,
        root_seed,
        targets: TaskTargets::demonstrate(3, 1),
        budget_per_n: 10_000,
        budget_flat: 10_000,
        async_budget_factor: 2,
    }
}

/// Run one sweep under forced-Leap, forced-baseline and the per-task
/// default, and require byte-identical JSON from all three.
fn assert_lockstep(sweep: &Sweep, label: &str) -> Vec<RunRecord> {
    let leap = sweep.run_with(&RunOptions::new().step_path(StepPath::Leap));
    let baseline = sweep.run_with(&RunOptions::new().step_path(StepPath::StepBaseline));
    let default = sweep.run_with(&RunOptions::new());
    assert_eq!(leap.len(), sweep.jobs().len(), "{label}: job coverage");
    assert_eq!(
        strip_wall(leap.clone()),
        strip_wall(baseline.clone()),
        "{label}: leap vs baseline records"
    );
    assert_eq!(
        strip_wall(leap.clone()),
        strip_wall(default),
        "{label}: leap vs default records"
    );
    let a = json_report(&sweep.experiment, sweep.root_seed, &leap).unwrap();
    let b = json_report(&sweep.experiment, sweep.root_seed, &baseline).unwrap();
    assert_eq!(a, b, "{label}: JSON reports must be byte-identical");
    leap
}

#[test]
fn leap_matches_baseline_on_gathering_grid() {
    let records = assert_lockstep(&gathering_sweep(42), "gathering");
    assert!(records.iter().all(|r| r.ok), "{records:?}");
    assert!(
        records.iter().any(|r| r.gathered),
        "the grid should contain gathered runs for the comparison to bite"
    );
}

#[test]
fn leap_matches_baseline_on_searching_grid() {
    let records = assert_lockstep(&searching_sweep(7), "searching");
    assert!(
        records.iter().all(|r| r.ok && r.clearings >= 3),
        "{records:?}"
    );
}

#[test]
fn leap_matches_baseline_on_dense_searching_grid() {
    let records = assert_lockstep(&dense_searching_sweep(11), "n-3 searching");
    assert!(records.iter().all(|r| r.ok), "{records:?}");
}

#[test]
fn leap_matches_baseline_on_exploration_grid() {
    let records = assert_lockstep(&exploration_sweep(3), "exploration");
    assert!(
        records.iter().all(|r| r.ok && r.explorations >= 1),
        "{records:?}"
    );
}

#[test]
fn sharded_leap_sweeps_stay_deterministic() {
    let sweep = gathering_sweep(1234);
    let sequential = sweep.run_with(&RunOptions::new().step_path(StepPath::Leap));
    let sharded = sweep.run_with(&RunOptions::new().sharded().step_path(StepPath::Leap));
    assert_eq!(strip_wall(sequential), strip_wall(sharded));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identical leap vs baseline JSON for arbitrary root seeds (small
    /// grid to keep the property affordable).
    #[test]
    fn leap_matches_baseline_for_any_root_seed(root_seed in 0u64..u64::MAX) {
        let sweep = Sweep {
            instances: vec![(8, 4), (10, 3)],
            seeds_per_cell: 1,
            ..gathering_sweep(root_seed)
        };
        let a = json_report("L", root_seed, &sweep.run_with(&RunOptions::new().step_path(StepPath::Leap))).unwrap();
        let b = json_report("L", root_seed, &sweep.run_with(&RunOptions::new().step_path(StepPath::StepBaseline))).unwrap();
        prop_assert_eq!(a, b);
    }
}
