//! End-to-end tests of the sweep-job service: submit → drain → done,
//! orphaned-job resume after a simulated crash, cache-served resubmission,
//! rejected jobs, gc — and a real `kill -9` of the daemon binary mid-job
//! followed by a resume that must reproduce the uninterrupted ledger bytes.

use std::path::{Path, PathBuf};
use std::process::Command;

use rr_bench::grid::{GridKind, GridSpec};
use rr_bench::ledger;
use rr_corda::SchedulerKind;
use rr_core::driver::TaskTargets;
use rr_core::unified::Task;
use rr_sweepd::{run_daemon, DaemonOptions, JobState, Spool};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr-sweepd-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast 6-cell gathering grid.
fn small_spec(root_seed: u64) -> GridSpec {
    GridSpec {
        experiment: "T-svc".to_string(),
        root_seed,
        instances: vec![(8, 4), (10, 3)],
        kind: GridKind::Sweep {
            task: Task::Gathering,
            schedulers: SchedulerKind::ALL.to_vec(),
            seeds_per_cell: 1,
            targets: TaskTargets::open_ended(),
            budget_per_n: 20_000,
            budget_flat: 0,
            async_budget_factor: 2,
        },
    }
}

fn drain_opts() -> DaemonOptions {
    DaemonOptions {
        sequential: true,
        poll_ms: 10,
        drain: true,
    }
}

/// Runs the grid through a throwaway spool and returns the ledger bytes an
/// uninterrupted service run produces.
fn uninterrupted_ledger(spec: &GridSpec, dir: &Path) -> Vec<u8> {
    let spool = Spool::open(dir).unwrap();
    let outcome = spool.submit(spec).unwrap();
    run_daemon(&spool, &drain_opts()).unwrap();
    std::fs::read(spool.ledger_path(&outcome.job_id)).unwrap()
}

#[test]
fn submit_drain_status_roundtrip() {
    let spool = Spool::open(&tmp_dir("roundtrip")).unwrap();
    let spec = small_spec(42);

    let outcome = spool.submit(&spec).unwrap();
    assert!(outcome.fresh);
    assert_eq!(outcome.state, JobState::Queued);
    assert_eq!(outcome.job_id, spec.job_id());

    // Submission is idempotent.
    let again = spool.submit(&spec).unwrap();
    assert!(!again.fresh);
    assert_eq!(again.state, JobState::Queued);

    run_daemon(&spool, &drain_opts()).unwrap();

    assert_eq!(spool.job_state(&outcome.job_id), Some(JobState::Done));
    let rows = spool.list().unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.state, JobState::Done);
    assert_eq!(row.cells_total, Some(spec.cells()));
    assert_eq!(row.records, spec.cells());
    assert_eq!(row.failures, 0);
    assert!(row.complete);

    let found = ledger::scan(&spool.ledger_path(&outcome.job_id)).unwrap();
    assert_eq!(found.footer, Some((spec.cells() as u64, 0)));

    // Resubmitting a done job stays a no-op.
    let done = spool.submit(&spec).unwrap();
    assert!(!done.fresh);
    assert_eq!(done.state, JobState::Done);
}

#[test]
fn orphaned_job_resumes_to_identical_bytes() {
    let spec = small_spec(7);
    let full = uninterrupted_ledger(&spec, &tmp_dir("orphan-ref"));

    // Simulate a daemon killed mid-job: the grid is claimed (in jobs/) and
    // the ledger holds a durable prefix ending in a torn line.
    let spool = Spool::open(&tmp_dir("orphan")).unwrap();
    let outcome = spool.submit(&spec).unwrap();
    let claimed = spool.claim_next().unwrap();
    assert_eq!(claimed.as_deref(), Some(outcome.job_id.as_str()));
    assert_eq!(spool.job_state(&outcome.job_id), Some(JobState::Running));
    let newline_offsets: Vec<usize> = full
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let cut = newline_offsets[2] + 17; // 2 durable records + a torn third
    std::fs::write(spool.ledger_path(&outcome.job_id), &full[..cut]).unwrap();

    // A restarted daemon picks the orphan up before touching the queue.
    run_daemon(&spool, &drain_opts()).unwrap();
    assert_eq!(spool.job_state(&outcome.job_id), Some(JobState::Done));
    let resumed = std::fs::read(spool.ledger_path(&outcome.job_id)).unwrap();
    assert_eq!(resumed, full, "resumed ledger must be byte-identical");
}

#[test]
fn resubmitted_grid_is_served_from_cache() {
    let spool = Spool::open(&tmp_dir("cache-serve")).unwrap();
    let spec = small_spec(99);
    let outcome = spool.submit(&spec).unwrap();
    run_daemon(&spool, &drain_opts()).unwrap();
    let first = std::fs::read(spool.ledger_path(&outcome.job_id)).unwrap();

    // Wipe the job and its ledger; the content-addressed cache survives.
    std::fs::remove_file(spool.grid_path(&outcome.job_id, JobState::Done)).unwrap();
    std::fs::remove_file(spool.ledger_path(&outcome.job_id)).unwrap();
    let probe_before = rr_corda::debug_step_probe();
    let again = spool.submit(&spec).unwrap();
    assert!(again.fresh);
    run_daemon(&spool, &drain_opts()).unwrap();
    let probe_after = rr_corda::debug_step_probe();

    assert_eq!(spool.job_state(&outcome.job_id), Some(JobState::Done));
    let served = std::fs::read(spool.ledger_path(&outcome.job_id)).unwrap();
    assert_eq!(served, first, "cache must serve the original bytes");
    if cfg!(debug_assertions) {
        assert_eq!(probe_after - probe_before, 0, "zero engine work on a hit");
    }
}

#[test]
fn unparseable_grid_lands_in_failed_with_reason() {
    let spool = Spool::open(&tmp_dir("reject")).unwrap();
    std::fs::write(
        spool.grid_path("bogus", JobState::Queued),
        "not a grid at all\n",
    )
    .unwrap();
    run_daemon(&spool, &drain_opts()).unwrap();
    assert_eq!(spool.job_state("bogus"), Some(JobState::Failed));
    let why = std::fs::read_to_string(spool.error_path("bogus")).unwrap();
    assert!(why.contains("rejected"), "{why}");

    // gc clears failed records and their orphaned ledgers.
    let removed = spool.gc().unwrap();
    assert!(removed >= 2, "grid + error file, got {removed}");
    assert_eq!(spool.job_state("bogus"), None);
}

#[test]
fn gc_spares_fresh_submit_tempfiles() {
    let spool = Spool::open(&tmp_dir("gc-tmp")).unwrap();
    // A submit in flight: written to queue/ but not yet renamed.
    let tmp = spool.root().join("queue").join(".tmp-inflight-1");
    std::fs::write(&tmp, "half a grid").unwrap();
    spool.gc().unwrap();
    assert!(
        tmp.exists(),
        "gc must not race a concurrent submit's rename"
    );
    // With the grace forced to zero the abandoned tempfile is collected.
    let removed = spool.gc_with_grace(std::time::Duration::ZERO).unwrap();
    assert!(removed >= 1);
    assert!(!tmp.exists());
}

/// `tail --follow` of a job that lands in `failed/` must terminate with the
/// failure reason instead of polling forever for a footer that will never
/// be written.
#[test]
fn tail_follow_stops_on_failed_job() {
    let spool = Spool::open(&tmp_dir("tail-failed")).unwrap();
    std::fs::write(
        spool.grid_path("bogus-tail", JobState::Queued),
        "not a grid at all\n",
    )
    .unwrap();
    run_daemon(&spool, &drain_opts()).unwrap();
    assert_eq!(spool.job_state("bogus-tail"), Some(JobState::Failed));

    let tail = Command::new(env!("CARGO_BIN_EXE_rr-sweep"))
        .args(["--spool"])
        .arg(spool.root())
        .args(["tail", "bogus-tail", "--follow"])
        .output()
        .unwrap();
    assert!(!tail.status.success(), "a failed job's tail must exit 1");
    let err = String::from_utf8(tail.stderr).unwrap();
    assert!(err.contains("failed"), "{err}");
    assert!(err.contains("rejected"), "{err}");
}

#[test]
fn gc_keeps_done_jobs_and_their_artifacts() {
    let spool = Spool::open(&tmp_dir("gc-keep")).unwrap();
    let spec = small_spec(5);
    let outcome = spool.submit(&spec).unwrap();
    run_daemon(&spool, &drain_opts()).unwrap();
    spool.gc().unwrap();
    assert_eq!(spool.job_state(&outcome.job_id), Some(JobState::Done));
    assert!(spool.ledger_path(&outcome.job_id).is_file());
    let found = ledger::scan(&spool.ledger_path(&outcome.job_id)).unwrap();
    assert!(found.is_complete());
}

/// The real thing: `kill -9` the daemon binary mid-job, restart it with
/// `--drain`, and require the resumed ledger to be byte-identical to an
/// uninterrupted service run of the same grid.
#[test]
fn killed_daemon_binary_resumes_to_identical_bytes() {
    let spec = small_spec(1234);
    let full = uninterrupted_ledger(&spec, &tmp_dir("kill-ref"));

    let dir = tmp_dir("kill");
    let spool = Spool::open(&dir).unwrap();

    // Submit through the client binary (exercises the CLI path).
    let grid_file = dir.join("job.grid");
    std::fs::write(&grid_file, spec.canonical_encoding()).unwrap();
    let submit = Command::new(env!("CARGO_BIN_EXE_rr-sweep"))
        .args(["--spool"])
        .arg(&dir)
        .arg("submit")
        .arg(&grid_file)
        .output()
        .unwrap();
    assert!(submit.status.success(), "{submit:?}");

    // Start the daemon (no --drain: it would only exit when killed),
    // let it get into the job, then SIGKILL it.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_rr-sweepd"))
        .args(["--spool"])
        .arg(&dir)
        .args(["--sequential", "--poll-ms", "10"])
        .spawn()
        .unwrap();
    let ledger_path = spool.ledger_path(&spec.job_id());
    for _ in 0..600 {
        if ledger_path.is_file() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // The grid must not be lost: it is either still claimed (killed
    // mid-job) or already done (the job won the race).
    let state = spool.job_state(&spec.job_id());
    assert!(
        matches!(state, Some(JobState::Running | JobState::Done)),
        "job lost after kill: {state:?}"
    );

    // Restart in drain mode: resumes the orphan and exits.
    let restart = Command::new(env!("CARGO_BIN_EXE_rr-sweepd"))
        .args(["--spool"])
        .arg(&dir)
        .args(["--sequential", "--drain"])
        .output()
        .unwrap();
    assert!(restart.status.success(), "{restart:?}");

    assert_eq!(spool.job_state(&spec.job_id()), Some(JobState::Done));
    let resumed = std::fs::read(&ledger_path).unwrap();
    assert_eq!(
        resumed, full,
        "ledger after kill -9 + resume must be byte-identical to an uninterrupted run"
    );

    // And the client can stream it back.
    let tail = Command::new(env!("CARGO_BIN_EXE_rr-sweep"))
        .args(["--spool"])
        .arg(&dir)
        .args(["tail", &spec.job_id()])
        .output()
        .unwrap();
    assert!(tail.status.success());
    let text = String::from_utf8(tail.stdout).unwrap();
    assert_eq!(text.lines().count(), 1 + spec.cells() + 1);
    assert!(text
        .lines()
        .next()
        .unwrap()
        .contains("\"schema\":\"rr-sweep/v1\""));
    assert!(text
        .lines()
        .last()
        .unwrap()
        .starts_with(ledger::FOOTER_PREFIX));
}

#[test]
fn client_grid_preset_roundtrips_through_submit() {
    let output = Command::new(env!("CARGO_BIN_EXE_rr-sweep"))
        .args(["grid", "e6", "--quick", "--seed", "7"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    let spec = GridSpec::parse(&text).unwrap();
    assert_eq!(spec.experiment, "E6");
    assert_eq!(spec.root_seed, 7);
    assert_eq!(
        spec,
        rr_bench::grid::preset("e6", true, Some(7)).unwrap(),
        "client preset must equal the in-process preset"
    );
}
