//! The filesystem spool: durable job records and their lifecycle.
//!
//! A job is one canonical `rr-sweepd-grid/v1` file whose location encodes
//! its state:
//!
//! ```text
//! <spool>/queue/<id>.grid    submitted, waiting for a daemon
//! <spool>/jobs/<id>.grid     claimed by a daemon (a crash leaves it here;
//!                            the next daemon resumes it from its ledger)
//! <spool>/done/<id>.grid     completed (ledger carries its footer)
//! <spool>/failed/<id>.grid   rejected or crashed (+ <id>.error with why)
//! <spool>/ledgers/<id>.jsonl the job's append-only result ledger
//! <spool>/cache/<key>.jsonl  content-addressed completed-ledger cache
//! ```
//!
//! Every state transition is a single same-directory-tree `rename`, so it
//! is atomic on any POSIX filesystem and two daemons sharing one spool
//! never run the same job: exactly one `rename(queue/x, jobs/x)` wins.
//!
//! The job id is content-derived ([`GridSpec::job_id`]: experiment plus the
//! result-cache key in hex), which makes submission idempotent — submitting
//! the same grid twice is one job — and ties the job, its ledger and its
//! cache entry together by name.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use rr_bench::grid::GridSpec;
use rr_bench::ledger;

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In `queue/`, waiting for a daemon.
    Queued,
    /// In `jobs/` — being executed, or orphaned by a killed daemon and
    /// awaiting resumption.
    Running,
    /// In `done/` — the ledger is complete.
    Done,
    /// In `failed/` — rejected (unparseable grid) or crashed; see the
    /// `.error` file.
    Failed,
}

impl JobState {
    /// Stable lower-case name for tables and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// What [`Spool::submit`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job's content-derived id.
    pub job_id: String,
    /// The job's state after the submit.
    pub state: JobState,
    /// Whether this call created the job (false: it already existed in some
    /// state, and the submit was a no-op).
    pub fresh: bool,
}

/// One row of [`Spool::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Cells the grid declares (`None` when the grid file no longer
    /// parses).
    pub cells_total: Option<usize>,
    /// Durable records in the job's ledger.
    pub records: usize,
    /// Durable records that failed verification.
    pub failures: u64,
    /// Whether the ledger carries its completion footer.
    pub complete: bool,
}

/// An open spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

const STATE_DIRS: [(&str, JobState); 4] = [
    ("queue", JobState::Queued),
    ("jobs", JobState::Running),
    ("done", JobState::Done),
    ("failed", JobState::Failed),
];

impl Spool {
    /// Opens `root` as a spool, creating the directory layout if needed.
    ///
    /// # Errors
    ///
    /// Propagates directory creation errors.
    pub fn open(root: &Path) -> io::Result<Spool> {
        for (dir, _) in STATE_DIRS {
            fs::create_dir_all(root.join(dir))?;
        }
        fs::create_dir_all(root.join("ledgers"))?;
        fs::create_dir_all(root.join("cache"))?;
        Ok(Spool {
            root: root.to_path_buf(),
        })
    }

    /// The spool root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content-addressed result cache directory.
    #[must_use]
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// The ledger path owned by `job_id`.
    #[must_use]
    pub fn ledger_path(&self, job_id: &str) -> PathBuf {
        self.root.join("ledgers").join(format!("{job_id}.jsonl"))
    }

    /// The grid-file path for `job_id` in `state`.
    #[must_use]
    pub fn grid_path(&self, job_id: &str, state: JobState) -> PathBuf {
        let dir = STATE_DIRS
            .iter()
            .find(|(_, s)| *s == state)
            .map(|(d, _)| *d)
            .unwrap_or("queue");
        self.root.join(dir).join(format!("{job_id}.grid"))
    }

    /// The `.error` file written when a job fails.
    #[must_use]
    pub fn error_path(&self, job_id: &str) -> PathBuf {
        self.root.join("failed").join(format!("{job_id}.error"))
    }

    /// The state `job_id` is currently in, if the job exists.
    #[must_use]
    pub fn job_state(&self, job_id: &str) -> Option<JobState> {
        STATE_DIRS
            .iter()
            .find(|(_, state)| self.grid_path(job_id, *state).is_file())
            .map(|(_, state)| *state)
    }

    /// Submits `spec`: writes its canonical encoding to `queue/` under its
    /// content-derived id (via a dot-tempfile and an atomic rename).
    /// Submitting a grid that already exists in any state is a no-op that
    /// reports the existing state.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn submit(&self, spec: &GridSpec) -> io::Result<SubmitOutcome> {
        let job_id = spec.job_id();
        if let Some(state) = self.job_state(&job_id) {
            return Ok(SubmitOutcome {
                job_id,
                state,
                fresh: false,
            });
        }
        let tmp = self
            .root
            .join("queue")
            .join(format!(".tmp-{job_id}-{}", std::process::id()));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(spec.canonical_encoding().as_bytes())?;
            file.sync_data()?;
        }
        fs::rename(&tmp, self.grid_path(&job_id, JobState::Queued))?;
        Ok(SubmitOutcome {
            job_id,
            state: JobState::Queued,
            fresh: true,
        })
    }

    /// Job ids present in `dir`, sorted for deterministic claim order.
    fn ids_in(&self, state: JobState) -> io::Result<Vec<String>> {
        let dir = self.grid_path("x", state);
        let dir = dir.parent().expect("state dir");
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name.strip_suffix(".grid") {
                if !id.starts_with('.') {
                    ids.push(id.to_string());
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Jobs sitting in `jobs/` — claimed by a live daemon, or orphaned by a
    /// killed one and awaiting resumption.
    ///
    /// # Errors
    ///
    /// Propagates directory reading errors.
    pub fn claimed_jobs(&self) -> io::Result<Vec<String>> {
        self.ids_in(JobState::Running)
    }

    /// Atomically claims the next queued job (`rename(queue/x, jobs/x)`),
    /// returning its id — or `None` when the queue is empty.  Losing a
    /// claim race to another daemon moves on to the next candidate.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than claim races.
    pub fn claim_next(&self) -> io::Result<Option<String>> {
        for id in self.ids_in(JobState::Queued)? {
            let from = self.grid_path(&id, JobState::Queued);
            let to = self.grid_path(&id, JobState::Running);
            match fs::rename(&from, &to) {
                Ok(()) => return Ok(Some(id)),
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Marks a claimed job done (`rename(jobs/x, done/x)`).
    ///
    /// # Errors
    ///
    /// Propagates the rename error.
    pub fn mark_done(&self, job_id: &str) -> io::Result<()> {
        fs::rename(
            self.grid_path(job_id, JobState::Running),
            self.grid_path(job_id, JobState::Done),
        )
    }

    /// Marks a claimed job failed, recording `why` in its `.error` file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn mark_failed(&self, job_id: &str, why: &str) -> io::Result<()> {
        fs::write(self.error_path(job_id), format!("{why}\n"))?;
        fs::rename(
            self.grid_path(job_id, JobState::Running),
            self.grid_path(job_id, JobState::Failed),
        )
    }

    /// One status row per job, over every state directory, sorted by id.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn list(&self) -> io::Result<Vec<JobStatus>> {
        let mut rows = Vec::new();
        for (_, state) in STATE_DIRS {
            for id in self.ids_in(state)? {
                rows.push(self.status(&id, state)?);
            }
        }
        rows.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(rows)
    }

    /// The status row for one job in a known state.
    fn status(&self, id: &str, state: JobState) -> io::Result<JobStatus> {
        let cells_total = fs::read_to_string(self.grid_path(id, state))
            .ok()
            .and_then(|text| GridSpec::parse(&text).ok())
            .map(|spec| spec.cells());
        let found = ledger::scan(&self.ledger_path(id))?;
        Ok(JobStatus {
            id: id.to_string(),
            state,
            cells_total,
            records: found.records,
            failures: found.failures,
            complete: found.is_complete(),
        })
    }

    /// Garbage collection: prunes stale submit tempfiles, incomplete cache
    /// entries (via [`rr_bench::cache::ResultCache::gc`]), `failed/` job
    /// records, and the ledgers of jobs that no longer exist in any state.
    /// Done jobs, their ledgers and complete cache entries are kept — they
    /// are the service's artifacts.  Returns the number of files removed.
    ///
    /// A `queue/.tmp-*` file younger than
    /// [`rr_bench::cache::GC_TMP_GRACE`] is left alone: it may be a submit
    /// happening right now (write → fsync → rename), and unlinking it under
    /// the submitter would make that submit's rename fail.
    ///
    /// # Errors
    ///
    /// Propagates directory reading errors.
    pub fn gc(&self) -> io::Result<usize> {
        self.gc_with_grace(rr_bench::cache::GC_TMP_GRACE)
    }

    /// [`Spool::gc`] with an explicit tempfile grace period (tests use zero
    /// to force collection).
    ///
    /// # Errors
    ///
    /// Propagates directory reading errors.
    pub fn gc_with_grace(&self, grace: std::time::Duration) -> io::Result<usize> {
        let mut removed =
            rr_bench::cache::ResultCache::open(&self.cache_dir())?.gc_with_grace(grace)?;
        for entry in fs::read_dir(self.root.join("queue"))? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-")
                && rr_bench::cache::file_older_than(&path, grace)
                && fs::remove_file(&path).is_ok()
            {
                removed += 1;
            }
        }
        for entry in fs::read_dir(self.root.join("failed"))? {
            let path = entry?.path();
            if path.is_file() && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        for entry in fs::read_dir(self.root.join("ledgers"))? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(id) = name.strip_suffix(".jsonl") {
                if self.job_state(id).is_none() && fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}
