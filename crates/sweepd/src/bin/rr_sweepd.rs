//! The sweep-job daemon.
//!
//! ```text
//! rr-sweepd --spool <dir> [--drain] [--poll-ms <n>] [--sequential]
//! ```
//!
//! Serves the spool forever (or until the queue drains, with `--drain`):
//! resumes any job a killed daemon left in `jobs/`, then claims queued
//! grids and executes them into durable, resumable ledgers.  Safe to
//! `kill -9` at any moment — see `rr_sweepd::daemon`.

use std::path::PathBuf;
use std::process::exit;

use rr_sweepd::{run_daemon, DaemonOptions, Spool};

fn main() {
    let mut spool_dir: Option<PathBuf> = None;
    let mut options = DaemonOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spool" => {
                spool_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--spool requires a directory");
                    exit(2);
                })));
            }
            "--drain" => options.drain = true,
            "--sequential" => options.sequential = true,
            "--poll-ms" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--poll-ms requires a value");
                    exit(2);
                });
                options.poll_ms = value.parse().unwrap_or_else(|e| {
                    eprintln!("--poll-ms: {e}");
                    exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: rr-sweepd --spool <dir> [--drain] [--poll-ms <n>] [--sequential]"
                );
                exit(2);
            }
        }
    }
    let Some(spool_dir) = spool_dir else {
        eprintln!("usage: rr-sweepd --spool <dir> [--drain] [--poll-ms <n>] [--sequential]");
        exit(2);
    };
    let spool = Spool::open(&spool_dir).unwrap_or_else(|e| {
        eprintln!("opening spool {}: {e}", spool_dir.display());
        exit(1);
    });
    if let Err(e) = run_daemon(&spool, &options) {
        eprintln!("[rr-sweepd] fatal: {e}");
        exit(1);
    }
}
