//! The thin sweep-service client.
//!
//! ```text
//! rr-sweep --spool <dir> submit <grid-file>...     queue grid files (idempotent)
//! rr-sweep --spool <dir> submit --preset <name> [--quick] [--seed <u64>]
//! rr-sweep --spool <dir> status                    one row per job
//! rr-sweep --spool <dir> tail <job-id> [--follow]  stream a job's ledger
//! rr-sweep --spool <dir> gc                        prune stale spool state
//! rr-sweep grid <preset> [--quick] [--seed <u64>]  print a canonical grid file
//! ```
//!
//! The client never executes cells — it only moves grid files and reads
//! ledgers, so it is safe to run while a daemon is serving the same spool.

use std::path::PathBuf;
use std::process::exit;

use rr_bench::grid::{preset, GridSpec};
use rr_bench::ledger;
use rr_sweepd::{JobState, Spool};

fn usage() -> ! {
    eprintln!(
        "usage: rr-sweep --spool <dir> <submit|status|tail|gc> [args]\n\
         \x20      rr-sweep grid <preset> [--quick] [--seed <u64>]\n\
         presets: e3/align, e4/clearing, e5/nminus3, e6/gathering"
    );
    exit(2)
}

fn fatal(message: &str) -> ! {
    eprintln!("rr-sweep: {message}");
    exit(1)
}

/// Builds a preset spec from `--preset NAME [--quick] [--seed N]` args.
fn preset_from_args(name: &str, rest: &[String]) -> GridSpec {
    let quick = rest.iter().any(|a| a == "--quick");
    let seed = rest
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.parse().unwrap_or_else(|e| fatal(&format!("--seed: {e}"))));
    preset(name, quick, seed).unwrap_or_else(|| fatal(&format!("unknown preset `{name}`")))
}

fn open_spool(dir: Option<&PathBuf>) -> Spool {
    let Some(dir) = dir else {
        fatal("--spool <dir> is required for this command");
    };
    Spool::open(dir).unwrap_or_else(|e| fatal(&format!("opening spool {}: {e}", dir.display())))
}

fn cmd_submit(spool: &Spool, rest: &[String]) {
    let mut specs: Vec<GridSpec> = Vec::new();
    if let Some(i) = rest.iter().position(|a| a == "--preset") {
        let name = rest
            .get(i + 1)
            .unwrap_or_else(|| fatal("--preset requires a name"));
        specs.push(preset_from_args(name, rest));
    } else {
        let files: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
        if files.is_empty() {
            fatal("submit needs grid files or --preset <name>");
        }
        for file in files {
            let text = std::fs::read_to_string(file)
                .unwrap_or_else(|e| fatal(&format!("reading {file}: {e}")));
            let spec = GridSpec::parse(&text)
                .unwrap_or_else(|why| fatal(&format!("{file}: invalid grid: {why}")));
            specs.push(spec);
        }
    }
    for spec in &specs {
        let outcome = spool
            .submit(spec)
            .unwrap_or_else(|e| fatal(&format!("submitting {}: {e}", spec.experiment)));
        println!(
            "{}\t{}\t{}\tledger {}",
            outcome.job_id,
            outcome.state.name(),
            if outcome.fresh {
                "submitted"
            } else {
                "existing"
            },
            spool.ledger_path(&outcome.job_id).display()
        );
    }
}

fn cmd_status(spool: &Spool) {
    let rows = spool
        .list()
        .unwrap_or_else(|e| fatal(&format!("listing spool: {e}")));
    println!(
        "{:<40} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "job", "state", "records", "cells", "failures", "complete"
    );
    for row in rows {
        println!(
            "{:<40} {:>8} {:>8} {:>8} {:>9} {:>9}",
            row.id,
            row.state.name(),
            row.records,
            row.cells_total
                .map_or_else(|| "?".to_string(), |c| c.to_string()),
            row.failures,
            row.complete
        );
    }
}

fn cmd_tail(spool: &Spool, rest: &[String]) {
    let Some(job_id) = rest.iter().find(|a| !a.starts_with("--")) else {
        fatal("tail needs a job id");
    };
    let follow = rest.iter().any(|a| a == "--follow");
    let path = spool.ledger_path(job_id);
    let mut offset = 0u64;
    loop {
        let (lines, new_offset) = ledger::read_new_lines(&path, offset)
            .unwrap_or_else(|e| fatal(&format!("reading {}: {e}", path.display())));
        offset = new_offset;
        let mut complete = false;
        for line in lines {
            println!("{line}");
            complete = complete || ledger::parse_footer(&line).is_some();
        }
        if complete || !follow {
            return;
        }
        // A failed job's ledger never gains its footer — stop following
        // instead of polling forever, and say why the job died.
        match spool.job_state(job_id) {
            Some(JobState::Failed) => {
                let why = std::fs::read_to_string(spool.error_path(job_id))
                    .unwrap_or_else(|_| "unknown failure (no .error file)".to_string());
                eprintln!("rr-sweep: job {job_id} failed: {}", why.trim_end());
                exit(1);
            }
            None => fatal(&format!("job {job_id} does not exist in this spool")),
            Some(JobState::Queued | JobState::Running | JobState::Done) => {}
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

fn cmd_gc(spool: &Spool) {
    let removed = spool.gc().unwrap_or_else(|e| fatal(&format!("gc: {e}")));
    println!("removed {removed} files");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spool_dir: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--spool" && command.is_none() {
            spool_dir = Some(PathBuf::from(
                it.next().unwrap_or_else(|| fatal("--spool requires a dir")),
            ));
        } else if command.is_none() {
            command = Some(arg);
        } else {
            rest.push(arg);
        }
    }
    match command.as_deref() {
        Some("grid") => {
            let Some(name) = rest.first().cloned() else {
                fatal("grid needs a preset name");
            };
            print!("{}", preset_from_args(&name, &rest).canonical_encoding());
        }
        Some("submit") => cmd_submit(&open_spool(spool_dir.as_ref()), &rest),
        Some("status") => cmd_status(&open_spool(spool_dir.as_ref())),
        Some("tail") => cmd_tail(&open_spool(spool_dir.as_ref()), &rest),
        Some("gc") => cmd_gc(&open_spool(spool_dir.as_ref())),
        _ => usage(),
    }
}
