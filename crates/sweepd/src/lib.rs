//! # rr-sweepd — the durable sweep-job service
//!
//! A long-lived daemon that executes experiment grids as **durable jobs**
//! over the existing `rr-bench` sweep machinery: plain std threads and a
//! filesystem spool — no network, no async runtime, no new dependencies.
//!
//! ```text
//!            rr-sweep submit             rr-sweepd
//! grid file ───────────────▶ queue/ ──claim──▶ jobs/ ──done──▶ done/
//!                                               │  ▲               (or failed/)
//!                                       records ▼  │ crash: grid stays in
//!                                     ledgers/<id>.jsonl   jobs/, ledger keeps
//!                                               │          its durable prefix,
//!                                       publish ▼          restart resumes
//!                                        cache/<key>.jsonl
//! ```
//!
//! * **Jobs are durable records.**  A submitted grid is a canonical
//!   `rr-sweepd-grid/v1` file; its job id is derived from its content
//!   (experiment + cache key), so submission is idempotent and claiming is
//!   one atomic rename.
//! * **Results are append-only ledgers.**  Each job owns an `rr-sweep/v1`
//!   JSONL ledger, fsync'd per contiguous record batch.  A killed daemon
//!   leaves the grid in `jobs/`; on restart the ledger is scanned, a torn
//!   tail truncated, and execution resumes at the first missing cell —
//!   producing a ledger **byte-identical** to an uninterrupted run (per-cell
//!   seeds derive from the root seed and grid coordinates alone).
//! * **Identical grids are served from content.**  Completed ledgers are
//!   published to a cache keyed on (canonical grid encoding, root seed,
//!   engine semantic version); resubmitting an identical grid copies bytes
//!   and performs zero engine work.
//!
//! The execution path is [`rr_bench::grid::execute_grid`] — the very same
//! function the `exp_*` binaries call — so a grid run at the shell and the
//! same grid run through the service produce the same ledger bytes by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod spool;

pub use daemon::{run_daemon, DaemonOptions};
pub use spool::{JobState, JobStatus, Spool, SubmitOutcome};
