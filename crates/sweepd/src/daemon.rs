//! The daemon loop: claim, execute, publish — and survive `kill -9`.
//!
//! The daemon is deliberately boring: a single-threaded claim loop around
//! [`execute_grid`] (cell-level parallelism lives inside the sweep's rayon
//! shards, not here).  Durability does all the heavy lifting:
//!
//! * a job is **claimed** by one atomic rename, so a crash never loses the
//!   grid file — it just leaves it in `jobs/`;
//! * every completed record batch is fsync'd into the job's ledger before
//!   the daemon considers it done, so a crash loses at most the torn tail
//!   of one line;
//! * on startup the daemon first re-executes everything in `jobs/`, which
//!   [`execute_grid`] resumes from the ledger's durable prefix — the
//!   resumed ledger is byte-identical to an uninterrupted one.
//!
//! A panicking job (an infeasible grid that escaped validation) is caught,
//! moved to `failed/` with its panic message, and the daemon keeps serving
//! the queue.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rr_bench::cache::ResultCache;
use rr_bench::grid::{execute_grid, ExecOptions, GridSpec};
use rr_bench::sweep::ExecMode;

use crate::spool::Spool;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Run each grid's cells sequentially instead of sharded over rayon.
    pub sequential: bool,
    /// Queue poll interval in milliseconds when idle.
    pub poll_ms: u64,
    /// Exit once the queue and the claimed-job backlog are empty, instead
    /// of polling forever — the mode CI and the integration tests run in.
    pub drain: bool,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            sequential: false,
            poll_ms: 200,
            drain: false,
        }
    }
}

/// Executes one claimed job end to end: parse, run (resuming any durable
/// ledger prefix, serving from the cache when possible), publish, and move
/// the grid file to its final state.  Panics inside the grid are caught and
/// turned into a `failed/` record.
///
/// # Errors
///
/// Propagates spool I/O errors (not job-level failures, which land in
/// `failed/`).
pub fn execute_claimed(spool: &Spool, job_id: &str, options: &DaemonOptions) -> io::Result<()> {
    let grid_path = spool.grid_path(job_id, crate::JobState::Running);
    let text = std::fs::read_to_string(&grid_path)?;
    let spec = match GridSpec::parse(&text) {
        Ok(spec) => spec,
        Err(why) => {
            eprintln!("[rr-sweepd] {job_id}: rejected: {why}");
            return spool.mark_failed(job_id, &format!("rejected: {why}"));
        }
    };
    let cache = ResultCache::open(&spool.cache_dir())?;
    let exec = ExecOptions {
        mode: Some(if options.sequential {
            ExecMode::Sequential
        } else {
            ExecMode::Sharded
        }),
        ledger: Some(spool.ledger_path(job_id)),
        cache: Some(&cache),
    };
    match catch_unwind(AssertUnwindSafe(|| execute_grid(&spec, &exec))) {
        Ok(Ok(run)) => {
            println!(
                "[rr-sweepd] {job_id}: complete ({} cells: {} executed, {} reused{}, {} failures)",
                run.stats.cells_total,
                run.stats.cells_executed,
                run.stats.cells_reused,
                if run.stats.from_cache {
                    ", from cache"
                } else {
                    ""
                },
                run.stats.failures,
            );
            spool.mark_done(job_id)
        }
        Ok(Err(e)) => {
            eprintln!("[rr-sweepd] {job_id}: i/o error: {e}");
            spool.mark_failed(job_id, &format!("i/o error: {e}"))
        }
        Err(panic) => {
            let why = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("panic (no message)");
            eprintln!("[rr-sweepd] {job_id}: panicked: {why}");
            spool.mark_failed(job_id, &format!("panicked: {why}"))
        }
    }
}

/// The daemon main loop: resume orphaned `jobs/`, then claim from `queue/`,
/// then (in drain mode) exit — or poll.
///
/// # Errors
///
/// Propagates spool I/O errors.
pub fn run_daemon(spool: &Spool, options: &DaemonOptions) -> io::Result<()> {
    println!(
        "[rr-sweepd] serving spool {} ({}, poll {}ms)",
        spool.root().display(),
        if options.drain { "drain" } else { "daemon" },
        options.poll_ms
    );
    loop {
        let mut worked = false;
        // Orphans first: a killed daemon's half-done jobs resume before new
        // work is claimed.
        for job_id in spool.claimed_jobs()? {
            println!("[rr-sweepd] {job_id}: resuming claimed job");
            execute_claimed(spool, &job_id, options)?;
            worked = true;
        }
        while let Some(job_id) = spool.claim_next()? {
            println!("[rr-sweepd] {job_id}: claimed");
            execute_claimed(spool, &job_id, options)?;
            worked = true;
        }
        if !worked {
            if options.drain {
                println!("[rr-sweepd] queue drained, exiting");
                return Ok(());
            }
            std::thread::sleep(std::time::Duration::from_millis(options.poll_ms.max(1)));
        }
    }
}
