//! Property-based tests for the view / supermin / symmetry algebra of
//! Section 2 of the paper.

use proptest::prelude::*;
use rr_ring::{enumerate, supermin_intervals, supermin_view, symmetry, Configuration, Ring, View};

fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (2usize..10, 1usize..12).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..5, k).prop_map(move |mut gaps| {
            gaps[k - 1] += extra;
            gaps
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rotating a view and then rotating back is the identity; reflecting
    /// twice is the identity.
    #[test]
    fn rotation_and_reflection_are_involutive(gaps in gap_word(), i in 0usize..16) {
        let w = View::new(gaps);
        let k = w.len();
        let i = i % k;
        prop_assert_eq!(w.rotation(i).rotation((k - i) % k), w.clone());
        prop_assert_eq!(w.reflection().reflection(), w.clone());
        prop_assert_eq!(w.opposite_direction().opposite_direction(), w);
    }

    /// The supermin of a view is no larger than any rotation or reflection of
    /// the view, and is itself a rotation or reflection-rotation of it.
    #[test]
    fn supermin_is_a_minimum_and_a_member(gaps in gap_word()) {
        let w = View::new(gaps);
        let s = w.supermin();
        for i in 0..w.len() {
            prop_assert!(s <= w.rotation(i));
            prop_assert!(s <= w.reflection_rotation(i));
        }
        let mut members = w.all_rotations();
        members.extend(w.opposite_direction().all_rotations());
        prop_assert!(members.contains(&s));
    }

    /// The period of the cyclic word divides its length, and a word is
    /// periodic iff its period is a proper divisor.
    #[test]
    fn period_divides_length(gaps in gap_word()) {
        let w = View::new(gaps);
        let p = w.period();
        prop_assert_eq!(w.len() % p, 0);
        prop_assert_eq!(w.is_periodic(), p < w.len());
    }

    /// Booth's least-rotation `min_rotation`/`supermin` agree with the
    /// all-rotations reference implementations on random gap vectors.
    #[test]
    fn booth_matches_naive_min_rotation_and_supermin(gaps in gap_word()) {
        let w = View::new(gaps);
        prop_assert_eq!(w.min_rotation(), w.min_rotation_naive());
        prop_assert_eq!(w.supermin(), w.supermin_naive());
        prop_assert_eq!(w.opposite_direction().min_rotation(),
                        w.opposite_direction().min_rotation_naive());
        prop_assert_eq!(w.reflection().supermin(), w.supermin_naive());
    }

    /// The KMP-based `period` and canonical-form `is_symmetric` agree with
    /// naive scans over all rotations (the seed implementations).
    #[test]
    fn fast_period_and_symmetry_match_naive_scans(gaps in gap_word()) {
        let w = View::new(gaps);
        let k = w.len();
        let naive_period = (1..=k)
            .find(|&p| k.is_multiple_of(p) && w.rotation(p) == w)
            .expect("the full length is always a period");
        prop_assert_eq!(w.period(), naive_period);
        let refl = w.reflection();
        let naive_symmetric = (0..k).any(|i| refl.rotation(i) == w);
        prop_assert_eq!(w.is_symmetric(), naive_symmetric);
    }

    /// `from_gaps` round-trips through `gap_sequence` up to rotation.
    #[test]
    fn gap_round_trip(gaps in gap_word(), start in 0usize..20) {
        let n: usize = gaps.iter().sum::<usize>() + gaps.len();
        let ring = Ring::new(n);
        let start = start % n;
        let config = Configuration::from_gaps(ring, start, &gaps).unwrap();
        let observed = View::new(config.gap_sequence());
        let expected = View::new(gaps);
        let is_rotation = (0..expected.len()).any(|i| expected.rotation(i) == observed);
        prop_assert!(is_rotation);
    }

    /// The number of supermin intervals obeys Lemma 1's coarse reading:
    /// a rigid configuration has exactly one supermin interval, and more than
    /// two supermin intervals implies periodicity.
    #[test]
    fn supermin_multiplicity_vs_lemma1(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let info = supermin_intervals(&config);
        let sym = symmetry::analyze(&config);
        if sym.is_rigid() {
            prop_assert_eq!(info.multiplicity(), 1);
        }
        if info.multiplicity() > 2 {
            prop_assert!(sym.periodic);
        }
        prop_assert!(symmetry::check_lemma1(&config).is_ok());
    }

    /// The canonical key is invariant under reflecting the whole configuration.
    #[test]
    fn canonical_key_reflection_invariant(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let n = config.n();
        let reflected_nodes: Vec<usize> =
            config.occupied_nodes().into_iter().map(|v| (n - v) % n).collect();
        let reflected = Configuration::new_exclusive(Ring::new(n), &reflected_nodes).unwrap();
        prop_assert_eq!(config.canonical_key(), reflected.canonical_key());
    }

    /// Enumeration invariant: every canonical sequence the enumerator returns
    /// is its own supermin and sums to n - k.
    #[test]
    fn enumeration_is_canonical(n in 5usize..12, k in 1usize..8) {
        prop_assume!(k < n);
        for gaps in enumerate::enumerate_gap_sequences(n, k) {
            let view = View::new(gaps.clone());
            prop_assert_eq!(view.supermin(), view.clone());
            prop_assert_eq!(view.total_gap(), n - k);
            prop_assert_eq!(view.len(), k);
        }
    }

    /// The supermin view of a configuration equals the supermin computed from
    /// any robot's snapshot-style view.
    #[test]
    fn supermin_view_matches_per_robot_supermins(gaps in gap_word()) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let s = supermin_view(&config);
        for (_, _, view) in config.all_views() {
            prop_assert_eq!(view.supermin(), s.clone());
        }
    }
}
