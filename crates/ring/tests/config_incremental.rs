//! Property-based equivalence of the incremental occupancy index against
//! from-scratch recomputation.
//!
//! `Configuration` maintains its occupied-node cycle, gap structure and
//! aggregate counters incrementally (O(1) per move).  These tests drive
//! arbitrary move sequences — including multiplicity creation and collapse —
//! against a *shadow* count vector, rebuild a fresh configuration from the
//! shadow after every step, and require the incrementally maintained one to
//! agree on every observable: occupied nodes, gap sequence, counters, and
//! `view_from_into` ≡ `view_from` ≡ `view_from_scan` for every occupied node
//! and direction.  (In debug builds the configuration additionally
//! cross-checks its own index after each mutation.)

use proptest::prelude::*;
use rr_ring::config::ConfigError;
use rr_ring::{Configuration, Direction, Ring, View};

/// Degenerate-occupancy contracts the leap certificates lean on:
/// a single occupied node is its own cw/ccw successor, its occupancy cycle
/// is the one-element cycle, and its gap sequence is the whole ring minus
/// the node itself.  These hold whether the node carries one robot or a
/// tower, and regardless of where the node sits.
#[test]
fn single_occupied_node_contracts() {
    for n in [3usize, 5, 9] {
        for node in [0usize, 1, n - 1] {
            for tower in [1u32, 4] {
                let mut counts = vec![0u32; n];
                counts[node] = tower;
                let c = Configuration::from_counts(Ring::new(n), counts).unwrap();
                assert_eq!(c.num_occupied(), 1);
                assert_eq!(c.occupied_anchor(), node);
                assert_eq!(c.gap_sequence(), vec![n - 1]);
                assert!(c.is_gathered());
                for dir in Direction::BOTH {
                    assert_eq!(c.occupied_after(node, dir), node, "self-successor");
                    let cycle: Vec<_> = c.occupied_cycle(node, dir).collect();
                    assert_eq!(cycle, vec![node], "one-element cycle");
                }
            }
        }
    }
}

/// An empty occupancy (k = 0) is unrepresentable: construction fails, so no
/// consumer of the occupancy index ever has to handle a zero-length cycle.
#[test]
fn empty_occupancy_is_rejected_at_construction() {
    assert_eq!(
        Configuration::from_counts(Ring::new(7), vec![0; 7]).unwrap_err(),
        ConfigError::Empty
    );
    assert_eq!(
        Configuration::from_gaps(Ring::new(7), 0, &[]).unwrap_err(),
        ConfigError::Empty
    );
}

/// A random instance: ring size, per-node robot counts (at least one robot),
/// and a script of (occupied-node selector, direction bit) moves.
fn instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<(usize, u8)>)> {
    (3usize..14)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0u32..3, n),
                proptest::collection::vec((0usize..64, 0u8..2), 0..40),
            )
        })
        .prop_map(|(n, mut counts, moves)| {
            if counts.iter().all(|&c| c == 0) {
                counts[n / 2] = 2; // guarantee at least one robot
            }
            (n, counts, moves)
        })
}

/// Everything the incremental index is supposed to keep equal to a rebuild.
fn assert_matches_fresh(c: &Configuration, counts: &[u32]) {
    let fresh = Configuration::from_counts(c.ring(), counts.to_vec()).unwrap();
    assert_eq!(c, &fresh, "counts drifted");
    assert_eq!(c.occupied_nodes(), fresh.occupied_nodes());
    assert_eq!(c.gap_sequence(), fresh.gap_sequence());
    assert_eq!(c.num_robots(), fresh.num_robots());
    assert_eq!(c.num_occupied(), fresh.num_occupied());
    assert_eq!(c.is_exclusive(), fresh.is_exclusive());
    assert_eq!(c.is_gathered(), fresh.is_gathered());
    let mut reused = View::new(Vec::new());
    for v in c.occupied_nodes() {
        for dir in Direction::BOTH {
            let scan = c.view_from_scan(v, dir);
            assert_eq!(c.view_from(v, dir), scan, "view_from at v={v}");
            c.view_from_into(v, dir, &mut reused);
            assert_eq!(reused, scan, "view_from_into at v={v}");
            assert_eq!(fresh.view_from(v, dir), scan, "fresh view at v={v}");
            // The occupancy cycle visits the occupied nodes in view order.
            let cycle: Vec<_> = c.occupied_cycle(v, dir).collect();
            assert_eq!(cycle.len(), c.num_occupied());
            assert_eq!(cycle[0], v);
            for pair in cycle.windows(2) {
                assert_eq!(c.occupied_after(pair[0], dir), pair[1]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After every move of an arbitrary script (merges, splits, wraparounds,
    /// towers), the incremental structure equals a from-scratch rebuild.
    #[test]
    fn incremental_equals_scratch_after_arbitrary_moves(case in instance()) {
        let (n, counts, moves) = case;
        let ring = Ring::new(n);
        let mut shadow = counts.clone();
        let mut c = Configuration::from_counts(ring, counts).unwrap();
        assert_matches_fresh(&c, &shadow);
        for (pick, cw) in moves {
            let occ = c.occupied_nodes();
            let from = occ[pick % occ.len()];
            let dir = if cw == 1 { Direction::Cw } else { Direction::Ccw };
            let to = c.move_robot_dir(from, dir).unwrap();
            shadow[from] -= 1;
            shadow[to] += 1;
            assert_matches_fresh(&c, &shadow);
        }
    }

    /// `view_from_into` into a dirty, undersized or oversized buffer always
    /// produces exactly `view_from`'s gaps.
    #[test]
    fn view_from_into_reuses_any_buffer(
        case in instance(),
        junk in proptest::collection::vec(0usize..1000, 0..20)
    ) {
        let (n, counts, _) = case;
        let c = Configuration::from_counts(Ring::new(n), counts).unwrap();
        let mut buffer = View::new(junk);
        for v in c.occupied_nodes() {
            for dir in Direction::BOTH {
                c.view_from_into(v, dir, &mut buffer);
                prop_assert_eq!(&buffer, &c.view_from(v, dir));
            }
        }
    }
}
