//! The small pattern language used by the paper's lemmas (Section 3).
//!
//! The paper describes families of supermin configuration views with patterns
//! such as `(0, 1, 1+, 2)` or `(0^{ℓ1}, 1, {0^{ℓ1-1}, 1}+, 0^{ℓ1-2}, 1)`,
//! where `x*` repeats `x` zero or more times, `x+` one or more times, and
//! `x{m}` exactly `m` times.  This module provides a generic matcher for the
//! simple (non-grouped) patterns and dedicated predicates for the grouped
//! families of Lemmas 3–5, so the lemma statements can be machine-checked
//! against brute-force symmetry analysis.

use serde::{Deserialize, Serialize};

/// One atom of a [`Pattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Atom {
    /// A single literal value.
    Lit(usize),
    /// The value repeated exactly `count` times (`x{m}` in the paper).
    Times {
        /// Repeated value.
        value: usize,
        /// Number of repetitions (may be zero).
        count: usize,
    },
    /// The value repeated zero or more times (`x*`).
    Star(usize),
    /// The value repeated one or more times (`x+`).
    Plus(usize),
    /// Any single value strictly greater than the bound.
    GreaterThan(usize),
}

/// A pattern over sequences of interval lengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    atoms: Vec<Atom>,
}

impl Pattern {
    /// Builds a pattern from atoms.
    #[must_use]
    pub fn new(atoms: Vec<Atom>) -> Self {
        Pattern { atoms }
    }

    /// The atoms of the pattern.
    #[must_use]
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Whether `seq` matches the pattern in full (anchored at both ends).
    #[must_use]
    pub fn matches(&self, seq: &[usize]) -> bool {
        Self::matches_rec(&self.atoms, seq)
    }

    fn matches_rec(atoms: &[Atom], seq: &[usize]) -> bool {
        match atoms.split_first() {
            None => seq.is_empty(),
            Some((atom, rest)) => match *atom {
                Atom::Lit(v) => seq.first() == Some(&v) && Self::matches_rec(rest, &seq[1..]),
                Atom::GreaterThan(bound) => {
                    seq.first().is_some_and(|&x| x > bound) && Self::matches_rec(rest, &seq[1..])
                }
                Atom::Times { value, count } => {
                    seq.len() >= count
                        && seq[..count].iter().all(|&x| x == value)
                        && Self::matches_rec(rest, &seq[count..])
                }
                Atom::Star(value) => {
                    let max = seq.iter().take_while(|&&x| x == value).count();
                    (0..=max).any(|take| Self::matches_rec(rest, &seq[take..]))
                }
                Atom::Plus(value) => {
                    let max = seq.iter().take_while(|&&x| x == value).count();
                    (1..=max).any(|take| Self::matches_rec(rest, &seq[take..]))
                }
            },
        }
    }
}

/// Shorthand constructors used by the lemma predicates and by tests.
pub mod atoms {
    use super::Atom;

    /// Literal atom.
    #[must_use]
    pub fn lit(v: usize) -> Atom {
        Atom::Lit(v)
    }

    /// `v{count}` atom.
    #[must_use]
    pub fn times(v: usize, count: usize) -> Atom {
        Atom::Times { value: v, count }
    }

    /// `v*` atom.
    #[must_use]
    pub fn star(v: usize) -> Atom {
        Atom::Star(v)
    }

    /// `v+` atom.
    #[must_use]
    pub fn plus(v: usize) -> Atom {
        Atom::Plus(v)
    }

    /// "any value strictly greater than `v`" atom.
    #[must_use]
    pub fn gt(v: usize) -> Atom {
        Atom::GreaterThan(v)
    }
}

/// Index of the first strictly positive entry of a supermin view (the paper's
/// `ℓ1`), if any.
#[must_use]
pub fn ell1(supermin: &[usize]) -> Option<usize> {
    supermin.iter().position(|&q| q > 0)
}

/// Index of the second strictly positive entry of a supermin view (the paper's
/// `ℓ2`), if any.
#[must_use]
pub fn ell2(supermin: &[usize]) -> Option<usize> {
    let first = ell1(supermin)?;
    supermin[first + 1..]
        .iter()
        .position(|&q| q > 0)
        .map(|p| first + 1 + p)
}

/// Whether the supermin view is exactly the paper's `C^s`: `(0, 1, 1, 2)`.
#[must_use]
pub fn is_cs(supermin: &[usize]) -> bool {
    supermin == [0, 1, 1, 2]
}

/// Whether the supermin view is a `C*`-type view for some `3 <= j <= k`:
/// `(0^{j-2}, 1, m)` with `m >= 2` (Section 5 of the paper).
#[must_use]
pub fn is_c_star_type(supermin: &[usize]) -> bool {
    let j = supermin.len();
    if j < 3 {
        return false;
    }
    supermin[..j - 2].iter().all(|&q| q == 0) && supermin[j - 2] == 1 && supermin[j - 1] >= 2
}

/// Whether the supermin view is exactly the configuration `C*` of the paper
/// for `k` robots on `n` nodes: `(0^{k-2}, 1, n-k-1)`.
#[must_use]
pub fn is_c_star(supermin: &[usize], n: usize) -> bool {
    let k = supermin.len();
    is_c_star_type(supermin) && supermin[k - 1] == n - k - 1
}

/// Conditions 1–4 of Lemma 3: with `q_0 = 0` and `ℓ1` the first positive
/// index, the view satisfies `q_i = 0` for `i < ℓ1`, `q_{ℓ1} = 1`,
/// `q_{ℓ1+1} + 1 = q_{k-1}`, and the sequence `q_{ℓ1+2..k-2}` is a palindrome.
#[must_use]
pub fn lemma3_conditions(supermin: &[usize]) -> bool {
    let k = supermin.len();
    if k < 2 || supermin[0] != 0 {
        return false;
    }
    let Some(l1) = ell1(supermin) else {
        return false;
    };
    if supermin[..l1].iter().any(|&q| q != 0) {
        return false;
    }
    if supermin[l1] != 1 {
        return false;
    }
    if l1 + 1 >= k {
        return false;
    }
    if supermin[l1 + 1] + 1 != supermin[k - 1] {
        return false;
    }
    // q_{ℓ1+2}, ..., q_{k-2} must read the same forwards and backwards.
    if l1 + 2 <= k.saturating_sub(2) {
        let middle = &supermin[l1 + 2..=k - 2];
        let reversed: Vec<usize> = middle.iter().rev().copied().collect();
        if middle != reversed.as_slice() {
            return false;
        }
    }
    true
}

/// Condition 5 of Lemma 4: the supermin view belongs to `(0, 1, 1+, 2)`.
#[must_use]
pub fn lemma4_condition5(supermin: &[usize]) -> bool {
    use atoms::*;
    Pattern::new(vec![lit(0), lit(1), plus(1), lit(2)]).matches(supermin)
}

/// Condition 6 of Lemma 4: the supermin view belongs to
/// `(0^{ℓ1}, 1, {0^{ℓ1-1}, 1}+, 0^{ℓ1-2}, 1)`.
#[must_use]
pub fn lemma4_condition6(supermin: &[usize]) -> bool {
    let Some(l1) = ell1(supermin) else {
        return false;
    };
    if l1 < 2 {
        // The pattern requires ℓ1 - 2 >= 0 repetitions of 0 near the end.
        return false;
    }
    let k = supermin.len();
    // Prefix: 0^{ℓ1}, 1.
    if supermin[..l1].iter().any(|&q| q != 0) || supermin.get(l1) != Some(&1) {
        return false;
    }
    // Suffix: 0^{ℓ1-2}, 1.
    if k < l1 + 1 + l1 - 2 + 1 {
        return false;
    }
    let suffix_start = k - (l1 - 2) - 1;
    if supermin[suffix_start..k - 1].iter().any(|&q| q != 0) || supermin[k - 1] != 1 {
        return false;
    }
    // Middle: one or more groups of (0^{ℓ1-1}, 1).
    let middle = &supermin[l1 + 1..suffix_start];
    let group = l1; // ℓ1 - 1 zeros followed by a single 1.
    if middle.is_empty() || !middle.len().is_multiple_of(group) {
        return false;
    }
    middle
        .chunks(group)
        .all(|chunk| chunk[..group - 1].iter().all(|&q| q == 0) && chunk[group - 1] == 1)
}

/// The supermin views for which Lemma 5 applies: condition 5 restricted to
/// `(0, 1, 1, 1+, 2)` or condition 6.
#[must_use]
pub fn lemma5_applicable(supermin: &[usize]) -> bool {
    use atoms::*;
    let strong5 = Pattern::new(vec![lit(0), lit(1), lit(1), plus(1), lit(2)]).matches(supermin);
    strong5 || lemma4_condition6(supermin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atoms::*;

    #[test]
    fn literal_patterns() {
        let p = Pattern::new(vec![lit(0), lit(1), lit(2)]);
        assert!(p.matches(&[0, 1, 2]));
        assert!(!p.matches(&[0, 1]));
        assert!(!p.matches(&[0, 1, 2, 0]));
        assert!(!p.matches(&[0, 1, 3]));
    }

    #[test]
    fn star_and_plus_patterns() {
        let p = Pattern::new(vec![lit(0), star(1), lit(2)]);
        assert!(p.matches(&[0, 2]));
        assert!(p.matches(&[0, 1, 2]));
        assert!(p.matches(&[0, 1, 1, 1, 2]));
        assert!(!p.matches(&[0, 1, 1]));
        let q = Pattern::new(vec![lit(0), plus(1), lit(2)]);
        assert!(!q.matches(&[0, 2]));
        assert!(q.matches(&[0, 1, 2]));
    }

    #[test]
    fn times_and_gt_patterns() {
        let p = Pattern::new(vec![times(0, 3), lit(1), gt(2)]);
        assert!(p.matches(&[0, 0, 0, 1, 7]));
        assert!(!p.matches(&[0, 0, 1, 7]));
        assert!(!p.matches(&[0, 0, 0, 1, 2]));
        let zero_times = Pattern::new(vec![times(0, 0), lit(5)]);
        assert!(zero_times.matches(&[5]));
    }

    #[test]
    fn star_backtracks() {
        // 1* followed by literal 1 requires at least one 1 left over.
        let p = Pattern::new(vec![star(1), lit(1)]);
        assert!(p.matches(&[1]));
        assert!(p.matches(&[1, 1, 1]));
        assert!(!p.matches(&[]));
    }

    #[test]
    fn ell_indices() {
        assert_eq!(ell1(&[0, 0, 1, 0, 2]), Some(2));
        assert_eq!(ell2(&[0, 0, 1, 0, 2]), Some(4));
        assert_eq!(ell1(&[0, 0, 0]), None);
        assert_eq!(ell2(&[0, 0, 3]), None);
        assert_eq!(ell1(&[2, 1]), Some(0));
        assert_eq!(ell2(&[2, 1]), Some(1));
    }

    #[test]
    fn cs_and_c_star_recognizers() {
        assert!(is_cs(&[0, 1, 1, 2]));
        assert!(!is_cs(&[0, 1, 2, 1]));
        assert!(is_c_star(&[0, 0, 0, 1, 6], 12));
        assert!(!is_c_star(&[0, 0, 0, 1, 6], 13));
        assert!(is_c_star_type(&[0, 1, 5]));
        assert!(is_c_star_type(&[0, 0, 1, 2]));
        assert!(!is_c_star_type(&[0, 0, 1, 1]));
        assert!(!is_c_star_type(&[1, 5]));
        assert!(!is_c_star_type(&[0, 2, 5]));
    }

    #[test]
    fn lemma3_examples() {
        // (0, 1, 1, 2): ℓ1 = 1, q2 + 1 = q3, middle empty — satisfies 1–4.
        assert!(lemma3_conditions(&[0, 1, 1, 2]));
        // (0, 0, 1, 1, 2): ℓ1 = 2, q3 + 1 = 2 = q4, middle empty.
        assert!(lemma3_conditions(&[0, 0, 1, 1, 2]));
        // (0, 1, 2, 2): q2 + 1 = 3 != 2.
        assert!(!lemma3_conditions(&[0, 1, 2, 2]));
        // (0, 2, 1, 3): q_{ℓ1} != 1.
        assert!(!lemma3_conditions(&[0, 2, 1, 3]));
        // Palindrome middle: (0, 1, 2, 5, 4, 5, 3) — q2+1=3=q6, middle (5,4,5).
        assert!(lemma3_conditions(&[0, 1, 2, 5, 4, 5, 3]));
        assert!(!lemma3_conditions(&[0, 1, 2, 5, 4, 6, 3]));
    }

    #[test]
    fn lemma4_condition5_examples() {
        assert!(lemma4_condition5(&[0, 1, 1, 2]));
        assert!(lemma4_condition5(&[0, 1, 1, 1, 1, 2]));
        assert!(!lemma4_condition5(&[0, 1, 2]));
        assert!(!lemma4_condition5(&[0, 1, 1, 3]));
    }

    #[test]
    fn lemma4_condition6_examples() {
        // ℓ1 = 2: (0,0,1, 0,1, 1) — one group (0,1) then 0^{0}, 1.
        assert!(lemma4_condition6(&[0, 0, 1, 0, 1, 1]));
        // Two groups.
        assert!(lemma4_condition6(&[0, 0, 1, 0, 1, 0, 1, 1]));
        // ℓ1 = 3: (0,0,0,1, 0,0,1, 0,1).
        assert!(lemma4_condition6(&[0, 0, 0, 1, 0, 0, 1, 0, 1]));
        // ℓ1 = 1 is excluded.
        assert!(!lemma4_condition6(&[0, 1, 1, 1]));
        // Wrong group contents.
        assert!(!lemma4_condition6(&[0, 0, 1, 1, 1, 1]));
    }

    #[test]
    fn lemma5_applicability() {
        assert!(lemma5_applicable(&[0, 1, 1, 1, 2]));
        assert!(lemma5_applicable(&[0, 0, 1, 0, 1, 1]));
        // Cs itself (0,1,1,2) is NOT covered by the strengthened condition 5
        // (it needs at least three 1s) — it is the special case of Theorem 1.
        assert!(!lemma5_applicable(&[0, 1, 1, 2]));
    }
}
