//! The supermin configuration view and the set of supermin intervals
//! (Section 2 and Lemma 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::config::Configuration;
use crate::node::{Direction, NodeId};
use crate::view::View;

/// Result of the supermin analysis of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperminInfo {
    /// The supermin configuration view `W_min^C`: the lexicographically
    /// smallest of the (at most `2k`) views of the configuration.
    pub view: View,
    /// Indices (into the clockwise gap sequence of the configuration) of the
    /// supermin intervals: the intervals from which `W_min^C` can be read in
    /// some direction.  This is the set `I_C` of the paper.
    pub interval_indices: Vec<usize>,
    /// The witnesses: occupied nodes and reading directions whose view equals
    /// the supermin configuration view.
    pub witnesses: Vec<(NodeId, Direction)>,
}

impl SuperminInfo {
    /// `|I_C|`, the number of supermin intervals (Lemma 1 of the paper relates
    /// this to rigidity / symmetry / periodicity).
    #[must_use]
    pub fn multiplicity(&self) -> usize {
        self.interval_indices.len()
    }
}

/// Computes the supermin configuration view of `config`.
#[must_use]
pub fn supermin_view(config: &Configuration) -> View {
    View::new(config.gap_sequence()).supermin()
}

/// Computes the full supermin analysis of `config`: the supermin view, the
/// supermin intervals `I_C` and the witnessing (node, direction) pairs.
#[must_use]
pub fn supermin_intervals(config: &Configuration) -> SuperminInfo {
    let occ = config.occupied_nodes();
    let k = occ.len();
    let min = supermin_view(config);
    let mut interval_indices = Vec::new();
    let mut witnesses = Vec::new();
    for (idx, &v) in occ.iter().enumerate() {
        for dir in Direction::BOTH {
            let w = config.view_from(v, dir);
            if w == min {
                witnesses.push((v, dir));
                // The first interval of the view is the interval adjacent to
                // `v` in direction `dir`; translate it to an index into the
                // clockwise gap sequence.
                let interval = match dir {
                    Direction::Cw => idx,
                    Direction::Ccw => (idx + k - 1) % k,
                };
                if !interval_indices.contains(&interval) {
                    interval_indices.push(interval);
                }
            }
        }
    }
    interval_indices.sort_unstable();
    SuperminInfo {
        view: min,
        interval_indices,
        witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    #[test]
    fn supermin_of_c_star_is_unique() {
        // C* = (0,0,0,1,6) on n = 12: |I_C| = 1 (stated in Section 2).
        let c = Configuration::from_gaps_at_origin(&[0, 0, 0, 1, 6]);
        let info = supermin_intervals(&c);
        assert_eq!(info.view, View::new(vec![0, 0, 0, 1, 6]));
        assert_eq!(info.multiplicity(), 1);
        assert_eq!(info.witnesses.len(), 1);
    }

    #[test]
    fn rigid_configuration_has_unique_witness() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        let info = supermin_intervals(&c);
        assert_eq!(info.multiplicity(), 1);
        assert_eq!(info.witnesses.len(), 1);
    }

    #[test]
    fn symmetric_aperiodic_axis_through_supermin_has_one_interval_two_witnesses() {
        // Gaps (0, 1, 3, 1): symmetric with the axis through the supermin
        // interval (the 0 gap); |I_C| = 1 but two witnessing views.
        let c = Configuration::from_gaps_at_origin(&[0, 1, 3, 1]);
        let info = supermin_intervals(&c);
        assert_eq!(info.multiplicity(), 1);
        assert_eq!(info.witnesses.len(), 2);
    }

    #[test]
    fn symmetric_axis_not_through_supermin_has_two_intervals() {
        // Gaps (0, 2, 0, 4): symmetric, axis through the 2-gap and the 4-gap,
        // two supermin intervals (the two 0 gaps).
        let c = Configuration::from_gaps_at_origin(&[0, 2, 0, 4]);
        let info = supermin_intervals(&c);
        assert_eq!(info.view, View::new(vec![0, 2, 0, 4]).supermin());
        assert_eq!(info.multiplicity(), 2);
    }

    #[test]
    fn periodic_half_turn_has_two_intervals() {
        // Gaps (0, 3, 0, 3): periodic with period n/2.
        let c = Configuration::from_gaps_at_origin(&[0, 3, 0, 3]);
        let info = supermin_intervals(&c);
        assert_eq!(info.multiplicity(), 2);
    }

    #[test]
    fn highly_periodic_has_many_intervals() {
        // Gaps (1, 1, 1, 1, 1, 1) on n = 12: fully periodic.
        let c = Configuration::from_gaps_at_origin(&[1, 1, 1, 1, 1, 1]);
        let info = supermin_intervals(&c);
        assert!(info.multiplicity() > 2);
        assert_eq!(info.multiplicity(), 6);
    }

    #[test]
    fn supermin_view_is_minimal_over_all_views() {
        let c = Configuration::new_exclusive(Ring::new(11), &[0, 2, 3, 7, 8]).unwrap();
        let min = supermin_view(&c);
        for (_, _, w) in c.all_views() {
            assert!(min <= w);
        }
    }

    #[test]
    fn witnesses_actually_read_the_supermin() {
        let c = Configuration::from_gaps_at_origin(&[0, 0, 2, 1, 4]);
        let info = supermin_intervals(&c);
        for (v, dir) in &info.witnesses {
            assert_eq!(c.view_from(*v, *dir), info.view);
        }
    }
}
