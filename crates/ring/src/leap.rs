//! Horizon arithmetic for round-leaping engines.
//!
//! A *leap certificate* (see `rr-corda`) asserts that every robot's decision
//! is constant for the next `L` full rounds, so the engine may apply `L`
//! rounds as one batched index update.  The horizon `L` is the minimum of a
//! handful of per-gap and per-node linear constraints of the form
//! "`value + rate·t` stays on the right side of a bound": a gap shrinking at
//! `rate` per round must not collapse, a decision comparing two gaps must not
//! flip, an idle robot's zero gaps must stay zero.
//!
//! This module holds exactly that arithmetic — how many consecutive rounds
//! `t = 0, 1, 2, …` a linear inequality survives — on plain integers, with
//! `u64::MAX` as the "forever" sentinel.  Everything is `O(1)`,
//! allocation-free and total (no overflow panics for the `i64` ranges that
//! ring gaps and ±2 rates can produce).
//!
//! The degenerate occupancy cycles these horizons are computed over are
//! covered by contract tests in `crates/ring/tests/config_incremental.rs`:
//! `k = 1` yields the self-loop cycle (`gap_sequence() == [n - 1]`,
//! `occupied_after(v, _) == v`), and `k = 0` is rejected at configuration
//! construction, so every horizon computation sees at least one occupied
//! node.

/// Number of consecutive rounds `t = 0, 1, 2, …` for which
/// `value + rate * t >= floor` holds, or [`u64::MAX`] if it holds forever.
///
/// Returns `0` when the inequality already fails at `t = 0`.
///
/// ```
/// use rr_ring::leap::rounds_at_least;
/// assert_eq!(rounds_at_least(5, -2, 1), 3); // 5, 3, 1, then -1 < 1
/// assert_eq!(rounds_at_least(5, 0, 1), u64::MAX);
/// assert_eq!(rounds_at_least(0, -1, 1), 0);
/// ```
#[must_use]
pub fn rounds_at_least(value: i64, rate: i64, floor: i64) -> u64 {
    if value < floor {
        return 0;
    }
    if rate >= 0 {
        return u64::MAX;
    }
    // Largest t with value + rate * t >= floor is (value - floor) / (-rate),
    // and t counts from 0, so the round count is one more.
    let slack = value.wrapping_sub(floor) as u64;
    slack / rate.unsigned_abs() + 1
}

/// Number of consecutive rounds `t = 0, 1, 2, …` for which
/// `value + rate * t <= ceil` holds, or [`u64::MAX`] if it holds forever.
///
/// Returns `0` when the inequality already fails at `t = 0`.
#[must_use]
pub fn rounds_at_most(value: i64, rate: i64, ceil: i64) -> u64 {
    if value > ceil {
        return 0;
    }
    if rate <= 0 {
        return u64::MAX;
    }
    let slack = ceil.wrapping_sub(value) as u64;
    slack / rate.unsigned_abs() + 1
}

/// Number of consecutive rounds `t = 0, 1, 2, …` for which
/// `value + rate * t == target` holds, or [`u64::MAX`] if it holds forever.
#[must_use]
pub fn rounds_exactly(value: i64, rate: i64, target: i64) -> u64 {
    if value != target {
        0
    } else if rate == 0 {
        u64::MAX
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_counts_surviving_rounds() {
        // 7, 4, 1 are >= 1; the next value (-2) is not.
        assert_eq!(rounds_at_least(7, -3, 1), 3);
        // Boundary hit exactly: 4, 2, 0 with floor 0.
        assert_eq!(rounds_at_least(4, -2, 0), 3);
        // Fails immediately.
        assert_eq!(rounds_at_least(0, -5, 1), 0);
        assert_eq!(rounds_at_least(-3, 2, 0), 0);
        // Non-shrinking values never fail.
        assert_eq!(rounds_at_least(1, 0, 0), u64::MAX);
        assert_eq!(rounds_at_least(1, 7, 1), u64::MAX);
    }

    #[test]
    fn at_most_is_the_mirror_image() {
        assert_eq!(rounds_at_most(1, 3, 7), 3); // 1, 4, 7, then 10 > 7
        assert_eq!(rounds_at_most(8, 1, 7), 0);
        assert_eq!(rounds_at_most(5, 0, 7), u64::MAX);
        assert_eq!(rounds_at_most(5, -2, 7), u64::MAX);
    }

    #[test]
    fn exactly_is_one_round_unless_static() {
        assert_eq!(rounds_exactly(0, 0, 0), u64::MAX);
        assert_eq!(rounds_exactly(0, 1, 0), 1);
        assert_eq!(rounds_exactly(0, -2, 0), 1);
        assert_eq!(rounds_exactly(3, 0, 0), 0);
    }

    #[test]
    fn brute_force_agreement_on_small_ranges() {
        for value in -6i64..=6 {
            for rate in -3i64..=3 {
                for bound in -2i64..=2 {
                    let brute = |ok: &dyn Fn(i64) -> bool| -> u64 {
                        let mut t = 0u64;
                        while t < 50 {
                            if !ok(value + rate * t as i64) {
                                return t;
                            }
                            t += 1;
                        }
                        u64::MAX
                    };
                    let ge = brute(&|v| v >= bound);
                    let got = rounds_at_least(value, rate, bound);
                    assert!(got == ge || (ge == u64::MAX && got == u64::MAX));
                    let le = brute(&|v| v <= bound);
                    assert_eq!(rounds_at_most(value, rate, bound).min(50), le.min(50));
                    let eq = brute(&|v| v == bound);
                    assert_eq!(rounds_exactly(value, rate, bound).min(50), eq.min(50));
                }
            }
        }
    }
}
