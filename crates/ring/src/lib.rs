//! # rr-ring — anonymous ring substrate
//!
//! This crate implements the combinatorial substrate of the paper
//! *"A unified approach for different tasks on rings in robot-based computing systems"*
//! (D'Angelo, Di Stefano, Navarra, Nisse, Suchan — IPPS 2013 / INRIA RR-8013):
//!
//! * the anonymous, unoriented ring topology ([`Ring`], [`Direction`], edges);
//! * configurations of robots on the ring, with or without multiplicities
//!   ([`Configuration`]);
//! * interval *views* as perceived by a robot during its Look phase ([`View`]),
//!   together with the rotation / reflection algebra of Section 2 of the paper;
//! * the *supermin configuration view* and the set of supermin intervals
//!   ([`supermin`]) used by Lemma 1;
//! * symmetry, periodicity and rigidity detection ([`symmetry`], Property 1 and
//!   Lemma 1 of the paper);
//! * the small pattern language used by Lemmas 3–5 ([`pattern`]);
//! * exhaustive enumeration of configurations up to ring isomorphism
//!   ([`enumerate`]), used to regenerate the configuration counts of
//!   Figures 4–9 of the paper.
//!
//! Everything in this crate is purely combinatorial and deterministic; the
//! Look–Compute–Move execution model lives in `rr-corda` and the algorithms in
//! `rr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod enumerate;
pub mod leap;
pub mod node;
pub mod pattern;
pub mod ring;
pub mod supermin;
pub mod symmetry;
pub mod view;

pub use config::Configuration;
pub use node::{Direction, EdgeId, NodeId};
pub use ring::Ring;
pub use supermin::{supermin_intervals, supermin_view, SuperminInfo};
pub use symmetry::{ConfigurationClass, SymmetryInfo};
pub use view::View;
