//! Exhaustive enumeration of configurations up to ring isomorphism, and
//! random sampling of rigid configurations.
//!
//! The enumeration is used by the checker crate to regenerate the
//! configuration counts of Figures 4–9 of the paper and to run exhaustive
//! verifications of the algorithms on small instances.

use crate::config::Configuration;
use crate::ring::Ring;
use crate::symmetry;
use crate::view::View;

/// Enumerates every exclusive configuration of `k` robots on an `n`-node ring
/// **up to rotation and reflection** (i.e. one representative per isomorphism
/// class), returned as clockwise gap sequences in canonical (supermin) form.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
#[must_use]
pub fn enumerate_gap_sequences(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (got k={k}, n={n})");
    let total_gap = n - k;
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    enumerate_rec(total_gap, k, &mut current, &mut out);
    out
}

fn enumerate_rec(
    remaining: usize,
    slots: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if slots == 0 {
        if remaining == 0 {
            let view = View::new(current.clone());
            if view.supermin() == view {
                out.push(current.clone());
            }
        }
        return;
    }
    if slots == 1 {
        current.push(remaining);
        let view = View::new(current.clone());
        if view.supermin() == view {
            out.push(current.clone());
        }
        current.pop();
        return;
    }
    for g in 0..=remaining {
        current.push(g);
        enumerate_rec(remaining - g, slots - 1, current, out);
        current.pop();
    }
}

/// Enumerates one [`Configuration`] per isomorphism class of exclusive
/// configurations of `k` robots on an `n`-node ring.
#[must_use]
pub fn enumerate_configurations(n: usize, k: usize) -> Vec<Configuration> {
    let ring = Ring::new(n);
    enumerate_gap_sequences(n, k)
        .into_iter()
        .map(|gaps| Configuration::from_gaps(ring, 0, &gaps).expect("enumerated gaps are valid"))
        .collect()
}

/// Enumerates one [`Configuration`] per isomorphism class of **rigid**
/// exclusive configurations of `k` robots on an `n`-node ring.
#[must_use]
pub fn enumerate_rigid_configurations(n: usize, k: usize) -> Vec<Configuration> {
    enumerate_configurations(n, k)
        .into_iter()
        .filter(symmetry::is_rigid)
        .collect()
}

/// Number of isomorphism classes of exclusive configurations of `k` robots on
/// an `n`-node ring (the quantity shown in Figures 4–9 of the paper).
#[must_use]
pub fn count_configurations(n: usize, k: usize) -> usize {
    enumerate_gap_sequences(n, k).len()
}

/// Number of isomorphism classes of rigid configurations.
#[must_use]
pub fn count_rigid_configurations(n: usize, k: usize) -> usize {
    enumerate_rigid_configurations(n, k).len()
}

/// Draws a uniformly random exclusive configuration of `k` robots on an
/// `n`-node ring (uniform over occupied-node sets, not over isomorphism
/// classes), using the provided source of randomness.
pub fn random_configuration<R: rand::Rng>(n: usize, k: usize, rng: &mut R) -> Configuration {
    assert!(k >= 1 && k <= n);
    let ring = Ring::new(n);
    let mut nodes: Vec<usize> = (0..n).collect();
    // Partial Fisher–Yates shuffle: pick k distinct nodes.
    for i in 0..k {
        let j = rng.gen_range(i..n);
        nodes.swap(i, j);
    }
    let occ = &nodes[..k];
    Configuration::new_exclusive(ring, occ).expect("distinct nodes")
}

/// Draws a random **rigid** exclusive configuration by rejection sampling.
///
/// Returns `None` if no rigid configuration exists for these parameters (for
/// example `k >= n - 2` with `k < n`, or very small rings) or none was found
/// within the attempt budget.
pub fn random_rigid_configuration<R: rand::Rng>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Option<Configuration> {
    // Quick structural exclusions: k in {n-2, n-1, n} and k <= 1 never admit a
    // rigid configuration on a ring (all such configurations are symmetric or
    // periodic); neither does n <= 4.
    if k <= 1 || k + 2 >= n {
        return None;
    }
    let attempts = 64 * n.max(16);
    for _ in 0..attempts {
        let c = random_configuration(n, k, rng);
        if symmetry::is_rigid(&c) {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn counts_match_the_paper_figures() {
        // Theorem 5's case analysis: number of distinct configurations
        // (up to isomorphism) for the small cases, as drawn in Figures 4–9.
        assert_eq!(count_configurations(7, 4), 4); // Figure 4
        assert_eq!(count_configurations(8, 4), 8); // Figure 5
        assert_eq!(count_configurations(8, 5), 5); // Figure 6
        assert_eq!(count_configurations(9, 6), 7); // Figure 7
        assert_eq!(count_configurations(9, 4), 10); // Figure 8
        assert_eq!(count_configurations(9, 5), 10); // Figure 9
    }

    #[test]
    fn complementary_robot_counts_give_equal_counts() {
        // Swapping occupied and empty nodes is a bijection between
        // isomorphism classes.
        for n in 5..=11usize {
            for k in 1..n {
                assert_eq!(
                    count_configurations(n, k),
                    count_configurations(n, n - k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn enumerated_sequences_are_canonical_and_distinct() {
        let seqs = enumerate_gap_sequences(11, 5);
        for s in &seqs {
            let v = View::new(s.clone());
            assert_eq!(v.supermin(), v, "not canonical: {v}");
        }
        let mut sorted = seqs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len());
    }

    #[test]
    fn enumeration_matches_bitmask_enumeration() {
        // Cross-check against a brute-force enumeration of k-subsets reduced
        // by canonical key.
        for (n, k) in [(7usize, 3usize), (8, 4), (9, 5), (10, 4)] {
            let ring = Ring::new(n);
            let mut keys = std::collections::HashSet::new();
            for mask in 0u32..(1 << n) {
                if mask.count_ones() as usize != k {
                    continue;
                }
                let occ: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                let c = Configuration::new_exclusive(ring, &occ).unwrap();
                keys.insert(c.canonical_key());
            }
            assert_eq!(keys.len(), count_configurations(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn rigid_enumeration_is_a_subset() {
        let all = enumerate_configurations(10, 5);
        let rigid = enumerate_rigid_configurations(10, 5);
        assert!(rigid.len() < all.len());
        assert!(rigid.iter().all(symmetry::is_rigid));
        // The paper: no rigid configuration exists when k >= n - 2.
        assert_eq!(count_rigid_configurations(8, 6), 0);
        assert_eq!(count_rigid_configurations(8, 7), 0);
        // ... nor with fewer than 3 robots on a ring.
        assert_eq!(count_rigid_configurations(9, 1), 0);
        assert_eq!(count_rigid_configurations(9, 2), 0);
    }

    #[test]
    fn cs_is_the_only_rigid_non_cstar_for_k4_n8() {
        // Theorem 1: Cs is the only rigid configuration with k=4, n=8 that
        // differs from C*.
        let rigid = enumerate_rigid_configurations(8, 4);
        assert_eq!(rigid.len(), 2);
        let keys: Vec<View> = rigid.iter().map(Configuration::canonical_key).collect();
        assert!(keys.contains(&View::new(vec![0, 1, 1, 2])));
        assert!(keys.contains(&View::new(vec![0, 0, 1, 3])));
    }

    #[test]
    fn random_configuration_has_right_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let c = random_configuration(13, 6, &mut rng);
            assert_eq!(c.n(), 13);
            assert_eq!(c.num_robots(), 6);
            assert!(c.is_exclusive());
        }
    }

    #[test]
    fn random_rigid_configuration_is_rigid() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (n, k) in [(10usize, 5usize), (12, 4), (15, 9), (20, 7)] {
            let c = random_rigid_configuration(n, k, &mut rng).expect("rigid config exists");
            assert!(symmetry::is_rigid(&c));
            assert_eq!(c.num_robots(), k);
        }
        assert!(random_rigid_configuration(9, 7, &mut rng).is_none());
        assert!(random_rigid_configuration(9, 1, &mut rng).is_none());
    }
}
