//! Configurations of robots on the ring.
//!
//! Following the paper, a *configuration* is the set of occupied nodes; it
//! does not record how many robots stand on each node.  Because the gathering
//! task (Section 5) creates multiplicities, [`Configuration`] additionally
//! tracks per-node robot counts, but all view / symmetry computations operate
//! on the occupied-node set only, exactly as in the paper.

use serde::{Deserialize, Serialize};

use crate::node::{Direction, NodeId};
use crate::ring::Ring;
use crate::view::View;

/// Errors raised by configuration constructors and mutations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The ring size.
        n: usize,
    },
    /// A robot was placed twice in an exclusive constructor.
    DuplicateNode {
        /// The node occupied twice.
        node: NodeId,
    },
    /// The configuration would contain no robot at all.
    Empty,
    /// A move was requested from an unoccupied node.
    SourceNotOccupied {
        /// The empty source node.
        node: NodeId,
    },
    /// A move was requested between two non-adjacent nodes.
    NotAdjacent {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// The gap sequence handed to [`Configuration::from_gaps`] does not fit the ring.
    GapMismatch {
        /// Sum of gaps plus number of robots.
        implied_n: usize,
        /// Actual ring size.
        n: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a ring of {n} nodes")
            }
            ConfigError::DuplicateNode { node } => {
                write!(
                    f,
                    "node {node} occupied twice in an exclusive configuration"
                )
            }
            ConfigError::Empty => write!(f, "a configuration must contain at least one robot"),
            ConfigError::SourceNotOccupied { node } => {
                write!(f, "no robot occupies node {node}")
            }
            ConfigError::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not adjacent")
            }
            ConfigError::GapMismatch { implied_n, n } => write!(
                f,
                "gap sequence implies a ring of {implied_n} nodes but the ring has {n}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A placement of robots on the nodes of a [`Ring`].
///
/// Next to the per-node robot counts, a `Configuration` maintains an
/// **incremental occupancy index** — the cyclic doubly-linked list of
/// occupied nodes (equivalently, the inter-robot gap ring the paper's
/// unified algorithm reasons over) plus O(1) aggregate counters — updated in
/// O(1) by [`Configuration::move_robot`].  The index is what makes the Look
/// phase O(k) ([`Configuration::view_from_into`]) instead of an O(n) walk
/// around the ring; it is derived state, excluded from equality, hashing and
/// serialization, and cross-checked against a from-scratch scan in debug
/// builds after every mutation.
#[derive(Debug, Serialize, Deserialize)]
pub struct Configuration {
    ring: Ring,
    counts: Vec<u32>,
    /// Next occupied node clockwise of an occupied node (undefined at empty
    /// nodes; self-loop when only one node is occupied).
    #[serde(skip)]
    next_occ: Vec<u32>,
    /// Next occupied node counter-clockwise of an occupied node.
    #[serde(skip)]
    prev_occ: Vec<u32>,
    /// An arbitrary but deterministically maintained occupied node: the
    /// entry point into the linked list.
    #[serde(skip)]
    anchor: u32,
    /// Number of occupied nodes (`k` of the paper's gap sequences).
    #[serde(skip)]
    occupied: u32,
    /// Total robots, counting multiplicities.
    #[serde(skip)]
    robots: u64,
    /// Number of nodes hosting more than one robot.
    #[serde(skip)]
    multis: u32,
    /// Reusable scratch for [`Configuration::assign_positions`] (distinct
    /// occupied nodes of the incoming placement).
    #[serde(skip)]
    scratch_nodes: Vec<u32>,
}

impl Clone for Configuration {
    fn clone(&self) -> Self {
        Configuration {
            ring: self.ring,
            counts: self.counts.clone(),
            next_occ: self.next_occ.clone(),
            prev_occ: self.prev_occ.clone(),
            anchor: self.anchor,
            occupied: self.occupied,
            robots: self.robots,
            multis: self.multis,
            scratch_nodes: Vec::new(),
        }
    }

    /// Allocation-reusing clone: `Engine::reset` / `restore_state` rewind
    /// configurations through this without touching the heap once the
    /// buffers have their final length.
    fn clone_from(&mut self, source: &Self) {
        self.ring = source.ring;
        self.counts.clone_from(&source.counts);
        self.next_occ.clone_from(&source.next_occ);
        self.prev_occ.clone_from(&source.prev_occ);
        self.anchor = source.anchor;
        self.occupied = source.occupied;
        self.robots = source.robots;
        self.multis = source.multis;
    }
}

// The occupancy index is derived state: identity is the ring + the counts.
impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        self.ring == other.ring && self.counts == other.counts
    }
}

impl Eq for Configuration {}

impl std::hash::Hash for Configuration {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ring.hash(state);
        self.counts.hash(state);
    }
}

impl Configuration {
    /// Creates an exclusive configuration with one robot on each node of
    /// `occupied`.
    pub fn new_exclusive(ring: Ring, occupied: &[NodeId]) -> Result<Self, ConfigError> {
        if occupied.is_empty() {
            return Err(ConfigError::Empty);
        }
        let mut counts = vec![0u32; ring.len()];
        for &v in occupied {
            if v >= ring.len() {
                return Err(ConfigError::NodeOutOfRange {
                    node: v,
                    n: ring.len(),
                });
            }
            if counts[v] > 0 {
                return Err(ConfigError::DuplicateNode { node: v });
            }
            counts[v] = 1;
        }
        Ok(Configuration::from_parts(ring, counts))
    }

    /// Builds the configuration and its occupancy index from validated
    /// per-node counts (at least one robot).
    fn from_parts(ring: Ring, counts: Vec<u32>) -> Self {
        let mut config = Configuration {
            ring,
            counts,
            next_occ: Vec::new(),
            prev_occ: Vec::new(),
            anchor: 0,
            occupied: 0,
            robots: 0,
            multis: 0,
            scratch_nodes: Vec::new(),
        };
        config.rebuild_index();
        config
    }

    /// Recomputes the occupancy index (linked list + counters) from the
    /// per-node counts with one O(n) scan.  Constructors and bulk mutations
    /// go through here; single-robot moves maintain the index in O(1).
    fn rebuild_index(&mut self) {
        let n = self.ring.len();
        // Only the *occupied* nodes' links are ever read, so stale entries
        // need no clearing — resize is a no-op when the ring size is
        // unchanged (the restore-heavy model-checker path).
        self.next_occ.resize(n, 0);
        self.prev_occ.resize(n, 0);
        self.robots = 0;
        self.multis = 0;
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        let mut occupied = 0u32;
        for v in 0..n {
            let c = self.counts[v];
            if c == 0 {
                continue;
            }
            self.robots += u64::from(c);
            if c > 1 {
                self.multis += 1;
            }
            occupied += 1;
            if let Some(p) = last {
                self.next_occ[p] = v as u32;
                self.prev_occ[v] = p as u32;
            } else {
                first = Some(v);
            }
            last = Some(v);
        }
        self.occupied = occupied;
        if let (Some(f), Some(l)) = (first, last) {
            self.next_occ[l] = f as u32;
            self.prev_occ[f] = l as u32;
            self.anchor = f as u32;
        }
        debug_assert!(self.index_is_consistent());
    }

    /// Debug cross-check: the incremental index equals what a from-scratch
    /// scan of the counts would produce.  O(n); only ever called behind
    /// `debug_assert!`.
    fn index_is_consistent(&self) -> bool {
        let n = self.ring.len();
        let occ: Vec<usize> = (0..n).filter(|&v| self.counts[v] > 0).collect();
        let robots: u64 = self.counts.iter().map(|&c| u64::from(c)).sum();
        let multis = self.counts.iter().filter(|&&c| c > 1).count();
        !occ.is_empty()
            && self.occupied as usize == occ.len()
            && self.robots == robots
            && self.multis as usize == multis
            && self.counts[self.anchor as usize] > 0
            && occ.iter().enumerate().all(|(i, &v)| {
                let next = occ[(i + 1) % occ.len()];
                self.next_occ[v] as usize == next && self.prev_occ[next] as usize == v
            })
    }

    /// Creates a configuration from explicit per-node robot counts.
    pub fn from_counts(ring: Ring, counts: Vec<u32>) -> Result<Self, ConfigError> {
        if counts.len() != ring.len() {
            return Err(ConfigError::GapMismatch {
                implied_n: counts.len(),
                n: ring.len(),
            });
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(ConfigError::Empty);
        }
        Ok(Configuration::from_parts(ring, counts))
    }

    /// Creates an exclusive configuration from a clockwise gap sequence.
    ///
    /// A robot is placed at `start`, then each subsequent robot is placed
    /// `gaps[i] + 1` nodes further clockwise.  The last gap must close the
    /// ring: `sum(gaps) + gaps.len() == n`.
    pub fn from_gaps(ring: Ring, start: NodeId, gaps: &[usize]) -> Result<Self, ConfigError> {
        if gaps.is_empty() {
            return Err(ConfigError::Empty);
        }
        if start >= ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: start,
                n: ring.len(),
            });
        }
        let implied_n: usize = gaps.iter().sum::<usize>() + gaps.len();
        if implied_n != ring.len() {
            return Err(ConfigError::GapMismatch {
                implied_n,
                n: ring.len(),
            });
        }
        let mut occupied = Vec::with_capacity(gaps.len());
        let mut cur = start;
        for &g in gaps {
            occupied.push(cur);
            cur = ring.walk(cur, Direction::Cw, g + 1);
        }
        Configuration::new_exclusive(ring, &occupied)
    }

    /// Convenience constructor for tests and examples: builds the ring and the
    /// exclusive configuration from a clockwise gap sequence placed at node 0.
    ///
    /// # Panics
    ///
    /// Panics if the gap sequence is invalid (see [`Configuration::from_gaps`]).
    #[must_use]
    pub fn from_gaps_at_origin(gaps: &[usize]) -> Self {
        let n = gaps.iter().sum::<usize>() + gaps.len();
        let ring = Ring::new(n);
        Configuration::from_gaps(ring, 0, gaps).expect("valid gap sequence")
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of nodes of the ring.
    #[must_use]
    pub fn n(&self) -> usize {
        self.ring.len()
    }

    /// Total number of robots (counting multiplicities).  O(1).
    #[must_use]
    pub fn num_robots(&self) -> usize {
        self.robots as usize
    }

    /// Number of occupied nodes (ignoring multiplicities).  O(1).
    #[must_use]
    pub fn num_occupied(&self) -> usize {
        self.occupied as usize
    }

    /// The occupied nodes, in increasing node order.  O(k): reads the
    /// maintained occupancy cycle and rotates it to start at the smallest
    /// node (the cyclic successor order ascends between wraparounds, so one
    /// rotation sorts it).
    #[must_use]
    pub fn occupied_nodes(&self) -> Vec<NodeId> {
        let k = self.occupied as usize;
        let mut out = Vec::with_capacity(k);
        let mut cur = self.anchor as usize;
        let mut min_idx = 0;
        for i in 0..k {
            out.push(cur);
            if cur < out[min_idx] {
                min_idx = i;
            }
            cur = self.next_occ[cur] as usize;
        }
        out.rotate_left(min_idx);
        out
    }

    /// An occupied node, arbitrary but deterministically maintained (the
    /// entry point of the occupancy cycle).  O(1).
    #[must_use]
    pub fn occupied_anchor(&self) -> NodeId {
        self.anchor as usize
    }

    /// The next occupied node strictly after occupied node `v` in direction
    /// `dir` (cyclically; `v` itself when it is the only occupied node).
    /// O(1) off the maintained occupancy index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is not occupied.
    #[must_use]
    pub fn occupied_after(&self, v: NodeId, dir: Direction) -> NodeId {
        debug_assert!(self.is_occupied(v), "occupied_after at empty node {v}");
        match dir {
            Direction::Cw => self.next_occ[v] as usize,
            Direction::Ccw => self.prev_occ[v] as usize,
        }
    }

    /// Iterator over all `k` occupied nodes in walking order of `dir`,
    /// starting at occupied node `start`.  O(k) total, no allocation — this
    /// is the pass the `Global` multiplicity snapshot reads its flags from.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not occupied.
    pub fn occupied_cycle(
        &self,
        start: NodeId,
        dir: Direction,
    ) -> impl Iterator<Item = NodeId> + '_ {
        assert!(
            self.is_occupied(start),
            "occupied_cycle at empty node {start}"
        );
        let mut cur = start;
        (0..self.occupied as usize).map(move |_| {
            let v = cur;
            cur = self.occupied_after(v, dir);
            v
        })
    }

    /// Number of robots on node `v`.
    #[must_use]
    pub fn count_at(&self, v: NodeId) -> u32 {
        self.counts[v]
    }

    /// Whether node `v` hosts at least one robot.
    #[must_use]
    pub fn is_occupied(&self, v: NodeId) -> bool {
        self.counts[v] > 0
    }

    /// Whether node `v` hosts strictly more than one robot (a *multiplicity*).
    #[must_use]
    pub fn is_multiplicity(&self, v: NodeId) -> bool {
        self.counts[v] > 1
    }

    /// Whether every node hosts at most one robot (the *exclusivity*
    /// property).  O(1) off the maintained multiplicity counter.
    #[must_use]
    pub fn is_exclusive(&self) -> bool {
        self.multis == 0
    }

    /// Whether some node hosts more than one robot.  O(1).
    #[must_use]
    pub fn has_multiplicity(&self) -> bool {
        !self.is_exclusive()
    }

    /// Whether all robots stand on a single node (the gathering goal).  O(1).
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        self.occupied == 1
    }

    /// Moves one robot from `from` to the adjacent node `to`.
    pub fn move_robot(&mut self, from: NodeId, to: NodeId) -> Result<(), ConfigError> {
        if from >= self.ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: from,
                n: self.ring.len(),
            });
        }
        if to >= self.ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: to,
                n: self.ring.len(),
            });
        }
        if self.counts[from] == 0 {
            return Err(ConfigError::SourceNotOccupied { node: from });
        }
        if !self.ring.adjacent(from, to) {
            return Err(ConfigError::NotAdjacent { from, to });
        }
        let cf = self.counts[from];
        let ct = self.counts[to];
        self.counts[from] = cf - 1;
        self.counts[to] = ct + 1;
        // Incremental O(1) maintenance of the occupancy index: a move only
        // touches the two gaps adjacent to the moving robot.
        if cf == 2 {
            self.multis -= 1; // `from` stops being a multiplicity
        }
        if ct == 1 {
            self.multis += 1; // `to` becomes one
        }
        let from_emptied = cf == 1;
        let to_filled = ct == 0;
        match (from_emptied, to_filled) {
            (false, false) => {}
            (true, false) => {
                // `to` is occupied elsewhere in the cycle, so k >= 2 here:
                // unlink `from`.
                if self.anchor as usize == from {
                    self.anchor = self.next_occ[from];
                }
                let p = self.prev_occ[from] as usize;
                let nx = self.next_occ[from] as usize;
                self.next_occ[p] = nx as u32;
                self.prev_occ[nx] = p as u32;
            }
            (false, true) => {
                // `to` is the first node of the gap adjacent to `from` on
                // one side: splice it in right next to `from` on that side.
                if to == self.ring.neighbor(from, Direction::Cw) {
                    let nx = self.next_occ[from] as usize;
                    self.next_occ[from] = to as u32;
                    self.prev_occ[to] = from as u32;
                    self.next_occ[to] = nx as u32;
                    self.prev_occ[nx] = to as u32;
                } else {
                    let p = self.prev_occ[from] as usize;
                    self.next_occ[p] = to as u32;
                    self.prev_occ[to] = p as u32;
                    self.next_occ[to] = from as u32;
                    self.prev_occ[from] = to as u32;
                }
            }
            (true, true) => {
                // The robot carries `from`'s slot in the cycle over to `to`;
                // cyclic order is preserved because `to` lies strictly inside
                // one of the gaps bordering `from`.
                let nx = self.next_occ[from] as usize;
                if nx == from {
                    // Sole occupied node: the cycle is a self-loop.
                    self.next_occ[to] = to as u32;
                    self.prev_occ[to] = to as u32;
                } else {
                    let p = self.prev_occ[from] as usize;
                    self.next_occ[p] = to as u32;
                    self.prev_occ[to] = p as u32;
                    self.next_occ[to] = nx as u32;
                    self.prev_occ[nx] = to as u32;
                }
                if self.anchor as usize == from {
                    self.anchor = to as u32;
                }
            }
        }
        self.occupied = self.occupied + u32::from(to_filled) - u32::from(from_emptied);
        debug_assert!(self.index_is_consistent());
        Ok(())
    }

    /// Replaces the whole placement with one robot per item of `positions`
    /// (repeats create multiplicities), reusing the per-node count storage —
    /// the allocation-free bulk mutation the engine's packed-state restore
    /// is built on.
    ///
    /// O(k_old + k log k), **not** O(n): the outgoing occupancy is erased by
    /// walking the maintained occupancy cycle, and the incoming index is
    /// rebuilt from the sorted distinct positions — the ring size never
    /// enters, which is what keeps million-restore model-checking loops
    /// cheap on large rings.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range or the iterator is empty; callers
    /// supply positions that were validated when the placement was first
    /// created.
    pub fn assign_positions(&mut self, positions: impl IntoIterator<Item = NodeId>) {
        // Erase the old placement via the old index: O(k_old).
        let mut cur = self.anchor as usize;
        for _ in 0..self.occupied as usize {
            let next = self.next_occ[cur] as usize;
            self.counts[cur] = 0;
            cur = next;
        }
        self.robots = 0;
        self.multis = 0;
        let mut nodes = std::mem::take(&mut self.scratch_nodes);
        nodes.clear();
        for v in positions {
            assert!(
                v < self.ring.len(),
                "node {v} out of range for a ring of {} nodes",
                self.ring.len()
            );
            if self.counts[v] == 0 {
                nodes.push(v as u32);
            }
            self.counts[v] += 1;
            if self.counts[v] == 2 {
                self.multis += 1;
            }
            self.robots += 1;
        }
        assert!(
            !nodes.is_empty(),
            "a configuration must contain at least one robot"
        );
        nodes.sort_unstable();
        for (i, &v) in nodes.iter().enumerate() {
            let next = nodes[(i + 1) % nodes.len()];
            self.next_occ[v as usize] = next;
            self.prev_occ[next as usize] = v;
        }
        self.anchor = nodes[0];
        self.occupied = nodes.len() as u32;
        self.scratch_nodes = nodes;
        debug_assert!(self.index_is_consistent());
    }

    /// Moves one robot from `from` one step in direction `dir`, returning the
    /// target node.
    pub fn move_robot_dir(&mut self, from: NodeId, dir: Direction) -> Result<NodeId, ConfigError> {
        let to = self.ring.neighbor(from, dir);
        self.move_robot(from, to)?;
        Ok(to)
    }

    /// The clockwise gap sequence: entry `i` is the number of empty nodes
    /// between occupied node `i` and occupied node `i + 1` (indices into
    /// [`Configuration::occupied_nodes`], cyclically).  O(k) off the
    /// maintained occupancy cycle.
    #[must_use]
    pub fn gap_sequence(&self) -> Vec<usize> {
        let n = self.ring.len();
        let anchor = self.anchor as usize;
        let mut min = anchor;
        let mut cur = self.next_occ[anchor] as usize;
        while cur != anchor {
            min = min.min(cur);
            cur = self.next_occ[cur] as usize;
        }
        let k = self.occupied as usize;
        let mut gaps = Vec::with_capacity(k);
        let mut cur = min;
        for _ in 0..k {
            let next = self.next_occ[cur] as usize;
            gaps.push((next + n - cur - 1) % n);
            cur = next;
        }
        gaps
    }

    /// The view of the robot(s) at occupied node `v`, reading in direction
    /// `dir`.  Thin allocating wrapper over
    /// [`Configuration::view_from_into`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is not occupied.
    #[must_use]
    pub fn view_from(&self, v: NodeId, dir: Direction) -> View {
        let mut out = View::new(Vec::with_capacity(self.occupied as usize));
        self.view_from_into(v, dir, &mut out);
        out
    }

    /// Fills `out` with the view at occupied node `v` in direction `dir`,
    /// reusing the caller's gap buffer: O(k) reads off the maintained
    /// occupancy cycle, zero heap allocations once the buffer has capacity
    /// `k`.  This is the Look hot path of the CORDA engine.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not occupied.
    pub fn view_from_into(&self, v: NodeId, dir: Direction, out: &mut View) {
        assert!(self.is_occupied(v), "view requested at empty node {v}");
        let n = self.ring.len();
        out.clear();
        let mut cur = v;
        for _ in 0..self.occupied as usize {
            let next = self.occupied_after(cur, dir);
            // Walking distance from `cur` to `next` in `dir`, minus one, is
            // the gap between them; a sole robot sees the full cycle, n - 1.
            let gap = match dir {
                Direction::Cw => (next + n - cur - 1) % n,
                Direction::Ccw => (cur + n - next - 1) % n,
            };
            out.push(gap);
            cur = next;
        }
    }

    /// Reference implementation of [`Configuration::view_from`]: the
    /// pre-incremental O(n) walk around the ring, closing a gap at every
    /// occupied node met.  Kept for equivalence tests and as the
    /// `LookPath::ScanBaseline` pipeline the engine throughput experiment
    /// (E12) measures its speedup against.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not occupied.
    #[must_use]
    pub fn view_from_scan(&self, v: NodeId, dir: Direction) -> View {
        assert!(self.is_occupied(v), "view requested at empty node {v}");
        let mut gaps = Vec::new();
        let mut g = 0usize;
        let mut cur = self.ring.neighbor(v, dir);
        while cur != v {
            if self.is_occupied(cur) {
                gaps.push(g);
                g = 0;
            } else {
                g += 1;
            }
            cur = self.ring.neighbor(cur, dir);
        }
        gaps.push(g);
        View::new(gaps)
    }

    /// All views of the configuration: for each occupied node, both directions.
    #[must_use]
    pub fn all_views(&self) -> Vec<(NodeId, Direction, View)> {
        let mut out = Vec::with_capacity(2 * self.num_occupied());
        for v in self.occupied_nodes() {
            for dir in Direction::BOTH {
                out.push((v, dir, self.view_from(v, dir)));
            }
        }
        out
    }

    /// The interval (maximal run of empty nodes, possibly of length zero)
    /// adjacent to occupied node `v` in direction `dir`, returned as the list
    /// of empty nodes in walking order.
    #[must_use]
    pub fn interval_from(&self, v: NodeId, dir: Direction) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.ring.neighbor(v, dir);
        while !self.is_occupied(cur) {
            out.push(cur);
            cur = self.ring.neighbor(cur, dir);
        }
        out
    }

    /// The canonical key of the configuration: the lexicographically smallest
    /// gap sequence over all rotations and reflections.  Two configurations
    /// are isomorphic (equal up to a ring automorphism) iff their canonical
    /// keys are equal.
    #[must_use]
    pub fn canonical_key(&self) -> View {
        View::new(self.gap_sequence()).supermin()
    }

    /// Whether two configurations (possibly on different rings) are isomorphic.
    #[must_use]
    pub fn is_isomorphic(&self, other: &Configuration) -> bool {
        self.n() == other.n() && self.canonical_key() == other.canonical_key()
    }

    /// The maximal runs of consecutive occupied nodes ("blocks"), as lists of
    /// node ids in clockwise order.  Used by the `NminusThree` algorithm of
    /// Section 4.4, which reasons about the three blocks `A < B < C`.
    #[must_use]
    pub fn occupied_blocks(&self) -> Vec<Vec<NodeId>> {
        let n = self.ring.len();
        if self.num_occupied() == n {
            return vec![(0..n).collect()];
        }
        let mut blocks = Vec::new();
        // Find a starting empty node so blocks are not split across the seam.
        let start = (0..n)
            .find(|&v| !self.is_occupied(v))
            .expect("some empty node");
        let mut current: Vec<NodeId> = Vec::new();
        for step in 1..=n {
            let v = (start + step) % n;
            if self.is_occupied(v) {
                current.push(v);
            } else if !current.is_empty() {
                blocks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            blocks.push(current);
        }
        blocks
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for v in 0..self.ring.len() {
            let c = self.counts[v];
            match c {
                0 => write!(f, ".")?,
                1 => write!(f, "o")?,
                _ => write!(f, "{}", c.min(9))?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Ring {
        Ring::new(n)
    }

    #[test]
    fn exclusive_constructor_validates() {
        assert!(Configuration::new_exclusive(ring(5), &[]).is_err());
        assert!(Configuration::new_exclusive(ring(5), &[5]).is_err());
        assert!(Configuration::new_exclusive(ring(5), &[1, 1]).is_err());
        let c = Configuration::new_exclusive(ring(5), &[0, 2]).unwrap();
        assert!(c.is_exclusive());
        assert_eq!(c.num_robots(), 2);
        assert_eq!(c.num_occupied(), 2);
    }

    #[test]
    fn from_counts_validates() {
        assert!(Configuration::from_counts(ring(4), vec![0, 0, 0]).is_err());
        assert!(Configuration::from_counts(ring(4), vec![0, 0, 0, 0]).is_err());
        let c = Configuration::from_counts(ring(4), vec![2, 0, 1, 0]).unwrap();
        assert!(c.has_multiplicity());
        assert!(c.is_multiplicity(0));
        assert!(!c.is_multiplicity(2));
        assert_eq!(c.num_robots(), 3);
        assert_eq!(c.num_occupied(), 2);
    }

    #[test]
    fn from_gaps_round_trips() {
        let gaps = [0usize, 1, 0, 0, 6];
        let c = Configuration::from_gaps_at_origin(&gaps);
        assert_eq!(c.n(), 12);
        assert_eq!(c.num_robots(), 5);
        assert_eq!(c.gap_sequence(), gaps.to_vec());
        assert!(Configuration::from_gaps(ring(11), 0, &gaps).is_err());
    }

    #[test]
    fn gap_sequence_of_full_ring_is_zero() {
        let c = Configuration::new_exclusive(ring(5), &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(c.gap_sequence(), vec![0; 5]);
    }

    #[test]
    fn view_matches_gap_sequence() {
        // Robots at 0, 1, 4 on an 8-ring: gaps cw = (0, 2, 3).
        let c = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        assert_eq!(c.gap_sequence(), vec![0, 2, 3]);
        assert_eq!(c.view_from(0, Direction::Cw).gaps(), &[0, 2, 3]);
        assert_eq!(c.view_from(0, Direction::Ccw).gaps(), &[3, 2, 0]);
        assert_eq!(c.view_from(1, Direction::Cw).gaps(), &[2, 3, 0]);
        assert_eq!(c.view_from(4, Direction::Ccw).gaps(), &[2, 0, 3]);
    }

    #[test]
    fn views_are_rotations_or_reflections_of_each_other() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 0, 2, 4]);
        let base = c.view_from(0, Direction::Cw);
        for (_, _, w) in c.all_views() {
            assert_eq!(w.supermin(), base.supermin());
            assert_eq!(w.total_gap(), base.total_gap());
        }
    }

    #[test]
    fn single_robot_view() {
        let c = Configuration::new_exclusive(ring(6), &[3]).unwrap();
        assert_eq!(c.view_from(3, Direction::Cw).gaps(), &[5]);
        assert_eq!(c.view_from(3, Direction::Ccw).gaps(), &[5]);
    }

    #[test]
    fn move_robot_validation_and_effect() {
        let mut c = Configuration::new_exclusive(ring(6), &[0, 2]).unwrap();
        assert!(c.move_robot(1, 2).is_err());
        assert!(c.move_robot(0, 3).is_err());
        assert!(c.move_robot(0, 6).is_err());
        c.move_robot(0, 1).unwrap();
        assert!(!c.is_occupied(0));
        assert!(c.is_occupied(1));
        // Moving onto an occupied node creates a multiplicity.
        c.move_robot(1, 2).unwrap();
        assert!(c.is_multiplicity(2));
        assert_eq!(c.num_robots(), 2);
        assert_eq!(c.num_occupied(), 1);
        assert!(c.is_gathered());
    }

    #[test]
    fn move_robot_dir_wraps() {
        let mut c = Configuration::new_exclusive(ring(5), &[0, 3]).unwrap();
        let to = c.move_robot_dir(0, Direction::Ccw).unwrap();
        assert_eq!(to, 4);
        assert!(c.is_occupied(4));
    }

    #[test]
    fn canonical_key_identifies_isomorphic_configs() {
        let a = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        let b = Configuration::new_exclusive(ring(8), &[2, 3, 6]).unwrap();
        let c = Configuration::new_exclusive(ring(8), &[0, 3, 4]).unwrap(); // reflection of a
        let d = Configuration::new_exclusive(ring(8), &[0, 2, 4]).unwrap();
        assert!(a.is_isomorphic(&b));
        assert!(a.is_isomorphic(&c));
        assert!(!a.is_isomorphic(&d));
    }

    #[test]
    fn interval_from_lists_empty_nodes() {
        let c = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        assert_eq!(c.interval_from(0, Direction::Cw), Vec::<usize>::new());
        assert_eq!(c.interval_from(1, Direction::Cw), vec![2, 3]);
        assert_eq!(c.interval_from(0, Direction::Ccw), vec![7, 6, 5]);
    }

    #[test]
    fn occupied_blocks_splits_runs() {
        // Ring of 10, robots at 0,1,2, 5,6, 8 → blocks {0,1,2}, {5,6}, {8}.
        let c = Configuration::new_exclusive(ring(10), &[0, 1, 2, 5, 6, 8]).unwrap();
        let mut blocks = c.occupied_blocks();
        blocks.sort_by_key(|b| b.len());
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], vec![8]);
        assert_eq!(blocks[1], vec![5, 6]);
        assert_eq!(blocks[2], vec![0, 1, 2]);
    }

    #[test]
    fn occupied_blocks_wraps_around_origin() {
        let c = Configuration::new_exclusive(ring(7), &[6, 0, 1]).unwrap();
        let blocks = c.occupied_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], vec![6, 0, 1]);
    }

    #[test]
    fn display_marks_occupation() {
        let c = Configuration::from_counts(ring(4), vec![1, 0, 3, 0]).unwrap();
        assert_eq!(c.to_string(), "[o.3.]");
    }

    /// The incremental occupancy index agrees with a from-scratch rebuild on
    /// every observable quantity.
    fn assert_index_matches_scratch(c: &Configuration) {
        assert!(c.index_is_consistent());
        let fresh = Configuration::from_counts(c.ring(), c.counts.clone()).unwrap();
        assert_eq!(c.occupied_nodes(), fresh.occupied_nodes());
        assert_eq!(c.gap_sequence(), fresh.gap_sequence());
        assert_eq!(c.num_robots(), fresh.num_robots());
        assert_eq!(c.num_occupied(), fresh.num_occupied());
        assert_eq!(c.is_exclusive(), fresh.is_exclusive());
        for v in c.occupied_nodes() {
            for dir in Direction::BOTH {
                assert_eq!(c.view_from(v, dir), c.view_from_scan(v, dir), "v={v}");
                let mut reused = View::new(vec![99; 7]);
                c.view_from_into(v, dir, &mut reused);
                assert_eq!(reused, c.view_from_scan(v, dir), "reused buffer, v={v}");
            }
        }
    }

    #[test]
    fn incremental_index_tracks_merges_splits_and_wraps() {
        // Exercise every list-update case: plain slide (replace), merge into
        // a multiplicity (detach), split out of one (insert), wraparound
        // through node 0, and anchor handoff.
        let mut c = Configuration::from_counts(ring(8), vec![1, 1, 0, 0, 1, 0, 0, 1]).unwrap();
        assert_index_matches_scratch(&c);
        c.move_robot(1, 0).unwrap(); // merge: 0 becomes a multiplicity
        assert_index_matches_scratch(&c);
        assert!(c.is_multiplicity(0));
        c.move_robot(0, 7).unwrap(); // merge again at 7 (ccw, wraps)
        assert_index_matches_scratch(&c);
        c.move_robot(0, 1).unwrap(); // split: 0 empties, 1 fills
        assert_index_matches_scratch(&c);
        c.move_robot(7, 0).unwrap(); // split the 7-multiplicity across the seam
        assert_index_matches_scratch(&c);
        c.move_robot(4, 3).unwrap(); // plain slide of an isolated robot
        assert_index_matches_scratch(&c);
        assert_eq!(c.num_robots(), 4);
    }

    #[test]
    fn incremental_index_survives_a_single_robot_walking_the_ring() {
        // k = 1 exercises the self-loop replace path on every step.
        let mut c = Configuration::new_exclusive(ring(5), &[2]).unwrap();
        for _ in 0..7 {
            let at = c.occupied_nodes()[0];
            c.move_robot_dir(at, Direction::Cw).unwrap();
            assert_index_matches_scratch(&c);
            assert_eq!(
                c.view_from(c.occupied_nodes()[0], Direction::Cw).gaps(),
                &[4]
            );
        }
    }

    #[test]
    fn incremental_index_survives_gathering_everything() {
        // Collapse five robots onto one node, then walk the tower around.
        let mut c = Configuration::new_exclusive(ring(6), &[0, 1, 2, 3, 4]).unwrap();
        for v in [1usize, 2, 3, 4] {
            for _ in 0..v {
                let step_from = c
                    .occupied_nodes()
                    .into_iter()
                    .find(|&w| w != 0 && c.count_at(w) > 0)
                    .unwrap();
                c.move_robot_dir(step_from, Direction::Ccw).unwrap();
                assert_index_matches_scratch(&c);
            }
        }
        assert!(c.is_gathered());
        assert_eq!(c.count_at(0), 5);
        c.move_robot(0, 5).unwrap(); // peel one off the tower
        assert_index_matches_scratch(&c);
        assert_eq!(c.num_occupied(), 2);
    }

    #[test]
    fn clone_from_and_assign_positions_keep_the_index_valid() {
        let a = Configuration::from_counts(ring(9), vec![2, 0, 1, 0, 0, 1, 0, 0, 0]).unwrap();
        let mut b = Configuration::new_exclusive(ring(9), &[4]).unwrap();
        b.clone_from(&a);
        assert_eq!(a, b);
        assert_index_matches_scratch(&b);
        b.assign_positions([3usize, 3, 8]);
        assert_index_matches_scratch(&b);
        assert_eq!(b.occupied_nodes(), vec![3, 8]);
        assert!(b.is_multiplicity(3));
    }

    #[test]
    fn equality_and_hash_ignore_the_derived_index() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Same occupancy reached through different histories (hence
        // different anchors/links) must compare and hash equal.
        let direct = Configuration::new_exclusive(ring(6), &[1, 4]).unwrap();
        let mut walked = Configuration::new_exclusive(ring(6), &[0, 4]).unwrap();
        walked.move_robot(0, 1).unwrap();
        assert_eq!(direct, walked);
        let hash = |c: &Configuration| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&direct), hash(&walked));
    }

    #[test]
    fn occupied_cycle_and_after_walk_the_maintained_ring() {
        let c = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        assert_eq!(c.occupied_after(0, Direction::Cw), 1);
        assert_eq!(c.occupied_after(0, Direction::Ccw), 4);
        let cw: Vec<_> = c.occupied_cycle(1, Direction::Cw).collect();
        assert_eq!(cw, vec![1, 4, 0]);
        let ccw: Vec<_> = c.occupied_cycle(1, Direction::Ccw).collect();
        assert_eq!(ccw, vec![1, 0, 4]);
        assert!(c.is_occupied(c.occupied_anchor()));
    }
}
