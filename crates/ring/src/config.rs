//! Configurations of robots on the ring.
//!
//! Following the paper, a *configuration* is the set of occupied nodes; it
//! does not record how many robots stand on each node.  Because the gathering
//! task (Section 5) creates multiplicities, [`Configuration`] additionally
//! tracks per-node robot counts, but all view / symmetry computations operate
//! on the occupied-node set only, exactly as in the paper.

use serde::{Deserialize, Serialize};

use crate::node::{Direction, NodeId};
use crate::ring::Ring;
use crate::view::View;

/// Errors raised by configuration constructors and mutations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The ring size.
        n: usize,
    },
    /// A robot was placed twice in an exclusive constructor.
    DuplicateNode {
        /// The node occupied twice.
        node: NodeId,
    },
    /// The configuration would contain no robot at all.
    Empty,
    /// A move was requested from an unoccupied node.
    SourceNotOccupied {
        /// The empty source node.
        node: NodeId,
    },
    /// A move was requested between two non-adjacent nodes.
    NotAdjacent {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// The gap sequence handed to [`Configuration::from_gaps`] does not fit the ring.
    GapMismatch {
        /// Sum of gaps plus number of robots.
        implied_n: usize,
        /// Actual ring size.
        n: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a ring of {n} nodes")
            }
            ConfigError::DuplicateNode { node } => {
                write!(
                    f,
                    "node {node} occupied twice in an exclusive configuration"
                )
            }
            ConfigError::Empty => write!(f, "a configuration must contain at least one robot"),
            ConfigError::SourceNotOccupied { node } => {
                write!(f, "no robot occupies node {node}")
            }
            ConfigError::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not adjacent")
            }
            ConfigError::GapMismatch { implied_n, n } => write!(
                f,
                "gap sequence implies a ring of {implied_n} nodes but the ring has {n}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A placement of robots on the nodes of a [`Ring`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    ring: Ring,
    counts: Vec<u32>,
}

impl Configuration {
    /// Creates an exclusive configuration with one robot on each node of
    /// `occupied`.
    pub fn new_exclusive(ring: Ring, occupied: &[NodeId]) -> Result<Self, ConfigError> {
        if occupied.is_empty() {
            return Err(ConfigError::Empty);
        }
        let mut counts = vec![0u32; ring.len()];
        for &v in occupied {
            if v >= ring.len() {
                return Err(ConfigError::NodeOutOfRange {
                    node: v,
                    n: ring.len(),
                });
            }
            if counts[v] > 0 {
                return Err(ConfigError::DuplicateNode { node: v });
            }
            counts[v] = 1;
        }
        Ok(Configuration { ring, counts })
    }

    /// Creates a configuration from explicit per-node robot counts.
    pub fn from_counts(ring: Ring, counts: Vec<u32>) -> Result<Self, ConfigError> {
        if counts.len() != ring.len() {
            return Err(ConfigError::GapMismatch {
                implied_n: counts.len(),
                n: ring.len(),
            });
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(ConfigError::Empty);
        }
        Ok(Configuration { ring, counts })
    }

    /// Creates an exclusive configuration from a clockwise gap sequence.
    ///
    /// A robot is placed at `start`, then each subsequent robot is placed
    /// `gaps[i] + 1` nodes further clockwise.  The last gap must close the
    /// ring: `sum(gaps) + gaps.len() == n`.
    pub fn from_gaps(ring: Ring, start: NodeId, gaps: &[usize]) -> Result<Self, ConfigError> {
        if gaps.is_empty() {
            return Err(ConfigError::Empty);
        }
        if start >= ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: start,
                n: ring.len(),
            });
        }
        let implied_n: usize = gaps.iter().sum::<usize>() + gaps.len();
        if implied_n != ring.len() {
            return Err(ConfigError::GapMismatch {
                implied_n,
                n: ring.len(),
            });
        }
        let mut occupied = Vec::with_capacity(gaps.len());
        let mut cur = start;
        for &g in gaps {
            occupied.push(cur);
            cur = ring.walk(cur, Direction::Cw, g + 1);
        }
        Configuration::new_exclusive(ring, &occupied)
    }

    /// Convenience constructor for tests and examples: builds the ring and the
    /// exclusive configuration from a clockwise gap sequence placed at node 0.
    ///
    /// # Panics
    ///
    /// Panics if the gap sequence is invalid (see [`Configuration::from_gaps`]).
    #[must_use]
    pub fn from_gaps_at_origin(gaps: &[usize]) -> Self {
        let n = gaps.iter().sum::<usize>() + gaps.len();
        let ring = Ring::new(n);
        Configuration::from_gaps(ring, 0, gaps).expect("valid gap sequence")
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of nodes of the ring.
    #[must_use]
    pub fn n(&self) -> usize {
        self.ring.len()
    }

    /// Total number of robots (counting multiplicities).
    #[must_use]
    pub fn num_robots(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Number of occupied nodes (ignoring multiplicities).
    #[must_use]
    pub fn num_occupied(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The occupied nodes, in increasing node order.
    #[must_use]
    pub fn occupied_nodes(&self) -> Vec<NodeId> {
        (0..self.ring.len())
            .filter(|&v| self.counts[v] > 0)
            .collect()
    }

    /// Number of robots on node `v`.
    #[must_use]
    pub fn count_at(&self, v: NodeId) -> u32 {
        self.counts[v]
    }

    /// Whether node `v` hosts at least one robot.
    #[must_use]
    pub fn is_occupied(&self, v: NodeId) -> bool {
        self.counts[v] > 0
    }

    /// Whether node `v` hosts strictly more than one robot (a *multiplicity*).
    #[must_use]
    pub fn is_multiplicity(&self, v: NodeId) -> bool {
        self.counts[v] > 1
    }

    /// Whether every node hosts at most one robot (the *exclusivity* property).
    #[must_use]
    pub fn is_exclusive(&self) -> bool {
        self.counts.iter().all(|&c| c <= 1)
    }

    /// Whether some node hosts more than one robot.
    #[must_use]
    pub fn has_multiplicity(&self) -> bool {
        !self.is_exclusive()
    }

    /// Whether all robots stand on a single node (the gathering goal).
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        self.num_occupied() == 1
    }

    /// Moves one robot from `from` to the adjacent node `to`.
    pub fn move_robot(&mut self, from: NodeId, to: NodeId) -> Result<(), ConfigError> {
        if from >= self.ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: from,
                n: self.ring.len(),
            });
        }
        if to >= self.ring.len() {
            return Err(ConfigError::NodeOutOfRange {
                node: to,
                n: self.ring.len(),
            });
        }
        if self.counts[from] == 0 {
            return Err(ConfigError::SourceNotOccupied { node: from });
        }
        if !self.ring.adjacent(from, to) {
            return Err(ConfigError::NotAdjacent { from, to });
        }
        self.counts[from] -= 1;
        self.counts[to] += 1;
        Ok(())
    }

    /// Replaces the whole placement with one robot per item of `positions`
    /// (repeats create multiplicities), reusing the per-node count storage —
    /// the allocation-free bulk mutation the engine's packed-state restore
    /// is built on.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range or the iterator is empty; callers
    /// supply positions that were validated when the placement was first
    /// created.
    pub fn assign_positions(&mut self, positions: impl IntoIterator<Item = NodeId>) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        let mut any = false;
        for v in positions {
            assert!(
                v < self.ring.len(),
                "node {v} out of range for a ring of {} nodes",
                self.ring.len()
            );
            self.counts[v] += 1;
            any = true;
        }
        assert!(any, "a configuration must contain at least one robot");
    }

    /// Moves one robot from `from` one step in direction `dir`, returning the
    /// target node.
    pub fn move_robot_dir(&mut self, from: NodeId, dir: Direction) -> Result<NodeId, ConfigError> {
        let to = self.ring.neighbor(from, dir);
        self.move_robot(from, to)?;
        Ok(to)
    }

    /// The clockwise gap sequence: entry `i` is the number of empty nodes
    /// between occupied node `i` and occupied node `i + 1` (indices into
    /// [`Configuration::occupied_nodes`], cyclically).
    #[must_use]
    pub fn gap_sequence(&self) -> Vec<usize> {
        let occ = self.occupied_nodes();
        let k = occ.len();
        (0..k)
            .map(|i| {
                let a = occ[i];
                let b = occ[(i + 1) % k];
                (self.ring.distance_cw(a, b) + self.ring.len() - 1) % self.ring.len()
            })
            .collect()
    }

    /// The view of the robot(s) at occupied node `v`, reading in direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not occupied.
    #[must_use]
    pub fn view_from(&self, v: NodeId, dir: Direction) -> View {
        assert!(self.is_occupied(v), "view requested at empty node {v}");
        // One walk around the ring: close a gap at every occupied node met.
        // (A single robot sees the one interval closing the cycle, n - 1.)
        let mut gaps = Vec::new();
        let mut g = 0usize;
        let mut cur = self.ring.neighbor(v, dir);
        while cur != v {
            if self.is_occupied(cur) {
                gaps.push(g);
                g = 0;
            } else {
                g += 1;
            }
            cur = self.ring.neighbor(cur, dir);
        }
        gaps.push(g);
        View::new(gaps)
    }

    /// All views of the configuration: for each occupied node, both directions.
    #[must_use]
    pub fn all_views(&self) -> Vec<(NodeId, Direction, View)> {
        let mut out = Vec::with_capacity(2 * self.num_occupied());
        for v in self.occupied_nodes() {
            for dir in Direction::BOTH {
                out.push((v, dir, self.view_from(v, dir)));
            }
        }
        out
    }

    /// The interval (maximal run of empty nodes, possibly of length zero)
    /// adjacent to occupied node `v` in direction `dir`, returned as the list
    /// of empty nodes in walking order.
    #[must_use]
    pub fn interval_from(&self, v: NodeId, dir: Direction) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.ring.neighbor(v, dir);
        while !self.is_occupied(cur) {
            out.push(cur);
            cur = self.ring.neighbor(cur, dir);
        }
        out
    }

    /// The canonical key of the configuration: the lexicographically smallest
    /// gap sequence over all rotations and reflections.  Two configurations
    /// are isomorphic (equal up to a ring automorphism) iff their canonical
    /// keys are equal.
    #[must_use]
    pub fn canonical_key(&self) -> View {
        View::new(self.gap_sequence()).supermin()
    }

    /// Whether two configurations (possibly on different rings) are isomorphic.
    #[must_use]
    pub fn is_isomorphic(&self, other: &Configuration) -> bool {
        self.n() == other.n() && self.canonical_key() == other.canonical_key()
    }

    /// The maximal runs of consecutive occupied nodes ("blocks"), as lists of
    /// node ids in clockwise order.  Used by the `NminusThree` algorithm of
    /// Section 4.4, which reasons about the three blocks `A < B < C`.
    #[must_use]
    pub fn occupied_blocks(&self) -> Vec<Vec<NodeId>> {
        let n = self.ring.len();
        if self.num_occupied() == n {
            return vec![(0..n).collect()];
        }
        let mut blocks = Vec::new();
        // Find a starting empty node so blocks are not split across the seam.
        let start = (0..n)
            .find(|&v| !self.is_occupied(v))
            .expect("some empty node");
        let mut current: Vec<NodeId> = Vec::new();
        for step in 1..=n {
            let v = (start + step) % n;
            if self.is_occupied(v) {
                current.push(v);
            } else if !current.is_empty() {
                blocks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            blocks.push(current);
        }
        blocks
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for v in 0..self.ring.len() {
            let c = self.counts[v];
            match c {
                0 => write!(f, ".")?,
                1 => write!(f, "o")?,
                _ => write!(f, "{}", c.min(9))?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Ring {
        Ring::new(n)
    }

    #[test]
    fn exclusive_constructor_validates() {
        assert!(Configuration::new_exclusive(ring(5), &[]).is_err());
        assert!(Configuration::new_exclusive(ring(5), &[5]).is_err());
        assert!(Configuration::new_exclusive(ring(5), &[1, 1]).is_err());
        let c = Configuration::new_exclusive(ring(5), &[0, 2]).unwrap();
        assert!(c.is_exclusive());
        assert_eq!(c.num_robots(), 2);
        assert_eq!(c.num_occupied(), 2);
    }

    #[test]
    fn from_counts_validates() {
        assert!(Configuration::from_counts(ring(4), vec![0, 0, 0]).is_err());
        assert!(Configuration::from_counts(ring(4), vec![0, 0, 0, 0]).is_err());
        let c = Configuration::from_counts(ring(4), vec![2, 0, 1, 0]).unwrap();
        assert!(c.has_multiplicity());
        assert!(c.is_multiplicity(0));
        assert!(!c.is_multiplicity(2));
        assert_eq!(c.num_robots(), 3);
        assert_eq!(c.num_occupied(), 2);
    }

    #[test]
    fn from_gaps_round_trips() {
        let gaps = [0usize, 1, 0, 0, 6];
        let c = Configuration::from_gaps_at_origin(&gaps);
        assert_eq!(c.n(), 12);
        assert_eq!(c.num_robots(), 5);
        assert_eq!(c.gap_sequence(), gaps.to_vec());
        assert!(Configuration::from_gaps(ring(11), 0, &gaps).is_err());
    }

    #[test]
    fn gap_sequence_of_full_ring_is_zero() {
        let c = Configuration::new_exclusive(ring(5), &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(c.gap_sequence(), vec![0; 5]);
    }

    #[test]
    fn view_matches_gap_sequence() {
        // Robots at 0, 1, 4 on an 8-ring: gaps cw = (0, 2, 3).
        let c = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        assert_eq!(c.gap_sequence(), vec![0, 2, 3]);
        assert_eq!(c.view_from(0, Direction::Cw).gaps(), &[0, 2, 3]);
        assert_eq!(c.view_from(0, Direction::Ccw).gaps(), &[3, 2, 0]);
        assert_eq!(c.view_from(1, Direction::Cw).gaps(), &[2, 3, 0]);
        assert_eq!(c.view_from(4, Direction::Ccw).gaps(), &[2, 0, 3]);
    }

    #[test]
    fn views_are_rotations_or_reflections_of_each_other() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 0, 2, 4]);
        let base = c.view_from(0, Direction::Cw);
        for (_, _, w) in c.all_views() {
            assert_eq!(w.supermin(), base.supermin());
            assert_eq!(w.total_gap(), base.total_gap());
        }
    }

    #[test]
    fn single_robot_view() {
        let c = Configuration::new_exclusive(ring(6), &[3]).unwrap();
        assert_eq!(c.view_from(3, Direction::Cw).gaps(), &[5]);
        assert_eq!(c.view_from(3, Direction::Ccw).gaps(), &[5]);
    }

    #[test]
    fn move_robot_validation_and_effect() {
        let mut c = Configuration::new_exclusive(ring(6), &[0, 2]).unwrap();
        assert!(c.move_robot(1, 2).is_err());
        assert!(c.move_robot(0, 3).is_err());
        assert!(c.move_robot(0, 6).is_err());
        c.move_robot(0, 1).unwrap();
        assert!(!c.is_occupied(0));
        assert!(c.is_occupied(1));
        // Moving onto an occupied node creates a multiplicity.
        c.move_robot(1, 2).unwrap();
        assert!(c.is_multiplicity(2));
        assert_eq!(c.num_robots(), 2);
        assert_eq!(c.num_occupied(), 1);
        assert!(c.is_gathered());
    }

    #[test]
    fn move_robot_dir_wraps() {
        let mut c = Configuration::new_exclusive(ring(5), &[0, 3]).unwrap();
        let to = c.move_robot_dir(0, Direction::Ccw).unwrap();
        assert_eq!(to, 4);
        assert!(c.is_occupied(4));
    }

    #[test]
    fn canonical_key_identifies_isomorphic_configs() {
        let a = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        let b = Configuration::new_exclusive(ring(8), &[2, 3, 6]).unwrap();
        let c = Configuration::new_exclusive(ring(8), &[0, 3, 4]).unwrap(); // reflection of a
        let d = Configuration::new_exclusive(ring(8), &[0, 2, 4]).unwrap();
        assert!(a.is_isomorphic(&b));
        assert!(a.is_isomorphic(&c));
        assert!(!a.is_isomorphic(&d));
    }

    #[test]
    fn interval_from_lists_empty_nodes() {
        let c = Configuration::new_exclusive(ring(8), &[0, 1, 4]).unwrap();
        assert_eq!(c.interval_from(0, Direction::Cw), Vec::<usize>::new());
        assert_eq!(c.interval_from(1, Direction::Cw), vec![2, 3]);
        assert_eq!(c.interval_from(0, Direction::Ccw), vec![7, 6, 5]);
    }

    #[test]
    fn occupied_blocks_splits_runs() {
        // Ring of 10, robots at 0,1,2, 5,6, 8 → blocks {0,1,2}, {5,6}, {8}.
        let c = Configuration::new_exclusive(ring(10), &[0, 1, 2, 5, 6, 8]).unwrap();
        let mut blocks = c.occupied_blocks();
        blocks.sort_by_key(|b| b.len());
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], vec![8]);
        assert_eq!(blocks[1], vec![5, 6]);
        assert_eq!(blocks[2], vec![0, 1, 2]);
    }

    #[test]
    fn occupied_blocks_wraps_around_origin() {
        let c = Configuration::new_exclusive(ring(7), &[6, 0, 1]).unwrap();
        let blocks = c.occupied_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], vec![6, 0, 1]);
    }

    #[test]
    fn display_marks_occupation() {
        let c = Configuration::from_counts(ring(4), vec![1, 0, 3, 0]).unwrap();
        assert_eq!(c.to_string(), "[o.3.]");
    }
}
