//! Interval views as perceived by robots (Section 2 of the paper).
//!
//! A *view* at an occupied node `r` is the sequence of lengths of the
//! intervals (maximal runs of empty nodes) met when traversing the ring in one
//! direction starting from `r`.  A robot has two views, one per direction, and
//! — having no sense of orientation — cannot tell which is which.
//!
//! Views are compared lexicographically; all views of the same configuration
//! have the same length, so the lexicographic order used throughout the paper
//! is exactly the derived `Ord` on the underlying vector.

use serde::{Deserialize, Serialize};

/// A view: the cyclic sequence of interval lengths read from an occupied node
/// in one direction, as a linear sequence starting with the interval adjacent
/// to that node in that direction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct View {
    gaps: Vec<usize>,
}

impl View {
    /// Builds a view from its interval lengths.
    ///
    /// The view of a robot in a configuration always contains at least one
    /// interval (the one closing the cycle back to the observing robot), but
    /// `View` doubles as the workspace's generic cyclic-word type (canonical
    /// state signatures, Booth scans over encoded words), so **every** length
    /// is accepted — including the degenerate cases:
    ///
    /// * the **empty** view (`k = 0`) is the empty cyclic word: aperiodic
    ///   ([`View::period`] `== 0 == len()`), symmetric, and fixed by every
    ///   rotation and reflection;
    /// * a **singleton** view (`k = 1`) is aperiodic (its only period is the
    ///   trivial one, `period() == 1 == len()`) and symmetric.
    #[must_use]
    pub fn new(gaps: Vec<usize>) -> Self {
        View { gaps }
    }

    /// The interval lengths, in reading order.
    #[must_use]
    pub fn gaps(&self) -> &[usize] {
        &self.gaps
    }

    /// Consumes the view, returning the underlying gap vector.
    #[must_use]
    pub fn into_gaps(self) -> Vec<usize> {
        self.gaps
    }

    /// Empties the view in place, keeping the gap buffer's allocation.
    ///
    /// Together with [`View::push`] this is the buffer-reuse surface of the
    /// zero-allocation Look pipeline: `Configuration::view_from_into` clears
    /// a caller-owned view and refills it without touching the heap.
    pub fn clear(&mut self) {
        self.gaps.clear();
    }

    /// Appends one interval length (the in-place counterpart of building a
    /// view from a `Vec`; see [`View::clear`]).
    pub fn push(&mut self, gap: usize) {
        self.gaps.push(gap);
    }

    /// Number of intervals in the view (equals the number of occupied nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether the view is empty (the degenerate `k = 0` cyclic word; never
    /// produced by reading a configuration, which always has at least one
    /// interval).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Sum of the interval lengths (equals `n - #occupied nodes`).
    #[must_use]
    pub fn total_gap(&self) -> usize {
        self.gaps.iter().sum()
    }

    /// The interval length at position `i`.
    #[must_use]
    pub fn gap(&self, i: usize) -> usize {
        self.gaps[i]
    }

    /// The view `W_i` of the paper: the same cyclic sequence read starting
    /// from interval `i`.  The empty view is fixed by every rotation.
    #[must_use]
    pub fn rotation(&self, i: usize) -> View {
        let k = self.gaps.len();
        if k == 0 {
            return self.clone();
        }
        let i = i % k;
        let mut gaps = Vec::with_capacity(k);
        gaps.extend_from_slice(&self.gaps[i..]);
        gaps.extend_from_slice(&self.gaps[..i]);
        View { gaps }
    }

    /// The view read from the same robot in the opposite direction:
    /// the plain reversal `(q_{k-1}, ..., q_1, q_0)`.
    #[must_use]
    pub fn opposite_direction(&self) -> View {
        let mut gaps = self.gaps.clone();
        gaps.reverse();
        View { gaps }
    }

    /// The paper's `W̄ = (q_0, q_{k-1}, q_{k-2}, ..., q_1)`: the reflection of
    /// the view that keeps the first interval in place.  The empty view is
    /// its own reflection.
    #[must_use]
    pub fn reflection(&self) -> View {
        let Some(&first) = self.gaps.first() else {
            return self.clone();
        };
        let mut gaps = Vec::with_capacity(self.gaps.len());
        gaps.push(first);
        gaps.extend(self.gaps[1..].iter().rev().copied());
        View { gaps }
    }

    /// The paper's `W̄_i`: the reflection read starting from interval `i`.
    #[must_use]
    pub fn reflection_rotation(&self, i: usize) -> View {
        self.reflection().rotation(i)
    }

    /// All `k` rotations of this view.
    #[must_use]
    pub fn all_rotations(&self) -> Vec<View> {
        (0..self.gaps.len()).map(|i| self.rotation(i)).collect()
    }

    /// Starting index of the lexicographically smallest rotation, reading the
    /// cyclic word through `gap` (an index-to-value accessor, so callers can
    /// scan the reversed word — or any encoded word that is not a `View` at
    /// all, like the engine's canonical state signatures — without
    /// materializing it).  Returns 0 for the empty word.
    ///
    /// This is the O(k)-time, O(1)-space least-rotation algorithm (Booth's
    /// two-candidate variant): `i` and `j` are the two live candidate start
    /// positions, `len` the length of their common prefix.  A mismatch at
    /// offset `len` eliminates the larger candidate *and* every start inside
    /// its matched prefix.
    pub fn least_rotation_start(k: usize, gap: impl Fn(usize) -> usize) -> usize {
        let (mut i, mut j, mut len) = (0usize, 1usize, 0usize);
        while i < k && j < k && len < k {
            let a = gap((i + len) % k);
            let b = gap((j + len) % k);
            if a == b {
                len += 1;
                continue;
            }
            if a > b {
                i += len + 1;
            } else {
                j += len + 1;
            }
            if i == j {
                j += 1;
            }
            len = 0;
        }
        i.min(j)
    }

    /// The lexicographically smallest rotation of this view (not considering
    /// reflections).
    ///
    /// Runs in O(k) time with no intermediate allocation (only the returned
    /// view is materialized); [`View::min_rotation_naive`] is the
    /// all-rotations reference implementation it is tested against.
    #[must_use]
    pub fn min_rotation(&self) -> View {
        self.rotation(Self::least_rotation_start(self.gaps.len(), |t| {
            self.gaps[t]
        }))
    }

    /// Reference implementation of [`View::min_rotation`] that materializes
    /// every rotation; kept for equivalence tests and benchmarks.  The empty
    /// view has no non-trivial rotation and is returned unchanged.
    #[must_use]
    pub fn min_rotation_naive(&self) -> View {
        self.all_rotations()
            .into_iter()
            .min()
            .unwrap_or_else(|| self.clone())
    }

    /// The lexicographically smallest view obtainable by rotating and/or
    /// reflecting this view.  For any view of a configuration `C`, this equals
    /// the supermin configuration view `W_min^C` of the paper.
    ///
    /// Computed allocation-free: one least-rotation scan over the word, one
    /// over its reversal, and one element-wise comparison of the two winning
    /// rotations; only the overall winner is materialized.
    #[must_use]
    pub fn supermin(&self) -> View {
        let k = self.gaps.len();
        let fwd = |t: usize| self.gaps[t];
        let rev = |t: usize| self.gaps[k - 1 - t];
        let fi = Self::least_rotation_start(k, fwd);
        let ri = Self::least_rotation_start(k, rev);
        let reversed_wins = (0..k).find_map(|t| {
            let a = fwd((fi + t) % k);
            let b = rev((ri + t) % k);
            (a != b).then_some(b < a)
        });
        if reversed_wins == Some(true) {
            View::new((0..k).map(|t| rev((ri + t) % k)).collect())
        } else {
            self.rotation(fi)
        }
    }

    /// Reference implementation of [`View::supermin`] via
    /// [`View::min_rotation_naive`]; kept for equivalence tests and
    /// benchmarks.
    #[must_use]
    pub fn supermin_naive(&self) -> View {
        let a = self.min_rotation_naive();
        let b = self.opposite_direction().min_rotation_naive();
        a.min(b)
    }

    /// Property 1 (i) of the paper: the configuration is periodic iff the view
    /// equals one of its non-trivial rotations.
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.period() < self.gaps.len()
    }

    /// The smallest non-trivial period of the cyclic gap sequence, in number
    /// of intervals; equals `len()` iff the view is aperiodic.  The empty
    /// view has `period() == 0 == len()` and is therefore aperiodic.
    ///
    /// Computed from the KMP border array in O(k): the smallest period of a
    /// word that divides its length is `k - border(k)`, and a cyclic word has
    /// period `p | k` iff the underlying linear word does.
    #[must_use]
    pub fn period(&self) -> usize {
        let g = &self.gaps;
        let k = g.len();
        if k == 0 {
            return 0;
        }
        let mut border = vec![0usize; k];
        for i in 1..k {
            let mut b = border[i - 1];
            while b > 0 && g[i] != g[b] {
                b = border[b - 1];
            }
            if g[i] == g[b] {
                b += 1;
            }
            border[i] = b;
        }
        let p = k - border[k - 1];
        if k.is_multiple_of(p) {
            p
        } else {
            k
        }
    }

    /// Property 1 (ii) of the paper: the configuration is symmetric iff the
    /// view equals some rotation of its reflection.
    ///
    /// The reflection is itself a rotation of the reversed word, so this is
    /// exactly cyclic equality of the word and its reversal: the two
    /// least-rotation canonical forms coincide.  O(k) instead of the naive
    /// O(k^2) rotation scan.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        let k = self.gaps.len();
        let fwd = |t: usize| self.gaps[t];
        let rev = |t: usize| self.gaps[k - 1 - t];
        let fi = Self::least_rotation_start(k, fwd);
        let ri = Self::least_rotation_start(k, rev);
        (0..k).all(|t| fwd((fi + t) % k) == rev((ri + t) % k))
    }

    /// Whether the configuration seen by this view is *rigid*: aperiodic and
    /// asymmetric.
    #[must_use]
    pub fn is_rigid(&self) -> bool {
        !self.is_periodic() && !self.is_symmetric()
    }
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, g) in self.gaps.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for View {
    fn from(gaps: Vec<usize>) -> Self {
        View::new(gaps)
    }
}

impl From<&[usize]> for View {
    fn from(gaps: &[usize]) -> Self {
        View::new(gaps.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(gaps: &[usize]) -> View {
        View::new(gaps.to_vec())
    }

    #[test]
    fn empty_view_contract_covers_every_method() {
        // The degenerate k = 0 cyclic word: aperiodic (period 0), symmetric,
        // fixed by every rotation/reflection — and, crucially, no method
        // panics (period/is_periodic/min_rotation_naive all used to).
        let e = View::new(vec![]);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert_eq!(e.gaps(), &[] as &[usize]);
        assert_eq!(e.total_gap(), 0);
        assert_eq!(e.rotation(0), e);
        assert_eq!(e.rotation(17), e);
        assert_eq!(e.opposite_direction(), e);
        assert_eq!(e.reflection(), e);
        assert_eq!(e.reflection_rotation(3), e);
        assert_eq!(e.all_rotations(), Vec::<View>::new());
        assert_eq!(e.min_rotation(), e);
        assert_eq!(e.min_rotation_naive(), e);
        assert_eq!(e.supermin(), e);
        assert_eq!(e.supermin_naive(), e);
        assert_eq!(e.period(), 0, "empty is aperiodic with period 0 = len");
        assert!(!e.is_periodic());
        assert!(e.is_symmetric());
        assert!(!e.is_rigid(), "symmetric, hence not rigid");
        assert_eq!(View::least_rotation_start(0, |_| unreachable!()), 0);
        assert_eq!(e.to_string(), "()");
    }

    #[test]
    fn singleton_view_contract_covers_every_method() {
        let s = v(&[5]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.total_gap(), 5);
        assert_eq!(s.gap(0), 5);
        assert_eq!(s.rotation(0), s);
        assert_eq!(s.rotation(4), s);
        assert_eq!(s.opposite_direction(), s);
        assert_eq!(s.reflection(), s);
        assert_eq!(s.reflection_rotation(2), s);
        assert_eq!(s.all_rotations(), vec![s.clone()]);
        assert_eq!(s.min_rotation(), s);
        assert_eq!(s.min_rotation_naive(), s);
        assert_eq!(s.supermin(), s);
        assert_eq!(s.supermin_naive(), s);
        assert_eq!(s.period(), 1, "the only period of a singleton is trivial");
        assert!(!s.is_periodic());
        assert!(s.is_symmetric());
        assert!(!s.is_rigid());
        assert_eq!(s.to_string(), "(5)");
    }

    #[test]
    fn rotation_and_reflection_basics() {
        let w = v(&[0, 1, 2, 3]);
        assert_eq!(w.rotation(0), w);
        assert_eq!(w.rotation(1), v(&[1, 2, 3, 0]));
        assert_eq!(w.rotation(4), w);
        assert_eq!(w.opposite_direction(), v(&[3, 2, 1, 0]));
        assert_eq!(w.reflection(), v(&[0, 3, 2, 1]));
        assert_eq!(w.reflection().reflection(), w);
    }

    #[test]
    fn opposite_direction_is_rotation_of_reflection() {
        // Reading the other way from the same robot permutes the same cyclic
        // word; it must belong to {W̄_i}.
        let w = v(&[0, 0, 1, 5, 2]);
        let opp = w.opposite_direction();
        let refl = w.reflection();
        assert!((0..w.len()).any(|i| refl.rotation(i) == opp));
    }

    #[test]
    fn supermin_is_invariant_under_rotation_and_reflection() {
        let w = v(&[2, 0, 1, 4, 0, 3]);
        let s = w.supermin();
        for i in 0..w.len() {
            assert_eq!(w.rotation(i).supermin(), s);
            assert_eq!(w.reflection_rotation(i).supermin(), s);
            assert_eq!(w.opposite_direction().rotation(i).supermin(), s);
        }
    }

    #[test]
    fn supermin_examples_from_paper() {
        // C* for k = 5, n = 12 has supermin view (0,0,0,1,6).
        let c_star = v(&[1, 6, 0, 0, 0]);
        assert_eq!(c_star.supermin(), v(&[0, 0, 0, 1, 6]));
        // Cs of the paper: supermin (0,1,1,2).
        let cs = v(&[1, 2, 0, 1]);
        assert_eq!(cs.supermin(), v(&[0, 1, 1, 2]));
    }

    #[test]
    fn periodicity_detection() {
        assert!(v(&[1, 2, 1, 2]).is_periodic());
        assert!(v(&[3, 3, 3]).is_periodic());
        assert!(!v(&[1, 2, 3]).is_periodic());
        assert!(!v(&[5]).is_periodic());
        assert_eq!(v(&[1, 2, 1, 2]).period(), 2);
        assert_eq!(v(&[3, 3, 3]).period(), 1);
        assert_eq!(v(&[1, 2, 3]).period(), 3);
    }

    #[test]
    fn symmetry_detection() {
        // Palindromic cyclic words are symmetric.
        assert!(v(&[0, 1, 1, 0, 4]).is_symmetric());
        assert!(v(&[2, 2]).is_symmetric());
        assert!(v(&[7]).is_symmetric());
        // (0,1,1,2) — the paper's Cs — is rigid.
        assert!(!v(&[0, 1, 1, 2]).is_symmetric());
        assert!(!v(&[0, 1, 1, 2]).is_periodic());
        assert!(v(&[0, 1, 1, 2]).is_rigid());
        // (0,0,2,2) — the symmetric intermediate configuration of Theorem 1.
        assert!(v(&[0, 0, 2, 2]).is_symmetric());
        assert!(!v(&[0, 0, 2, 2]).is_rigid());
    }

    #[test]
    fn rigidity_of_c_star() {
        // C* = (0^{k-2}, 1, n-k-1) is rigid whenever n - k - 1 >= 2.
        for k in 3..8usize {
            for extra in 2..6usize {
                let mut gaps = vec![0; k - 2];
                gaps.push(1);
                gaps.push(extra);
                assert!(View::new(gaps).is_rigid(), "k={k} extra={extra}");
            }
        }
    }

    #[test]
    fn periodic_configs_are_symmetric_or_not_independent() {
        // A periodic but asymmetric word.
        let w = v(&[0, 1, 2, 0, 1, 2]);
        assert!(w.is_periodic());
        assert!(!w.is_symmetric());
        assert!(!w.is_rigid());
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(v(&[0, 1, 5]).to_string(), "(0,1,5)");
    }

    #[test]
    fn total_gap_and_len() {
        let w = v(&[0, 3, 2]);
        assert_eq!(w.total_gap(), 5);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }
}
