//! Node, edge and direction primitives of the anonymous ring.
//!
//! Nodes and edges carry indices **only for the simulator's benefit**: the
//! robots of the CORDA model never observe them (the ring is anonymous and
//! unoriented).  Directions are likewise a simulation-level concept; a robot
//! only ever expresses a move relative to one of its two local views.

use serde::{Deserialize, Serialize};

/// Identifier of a node of the ring, in `0..n`.
///
/// Node `i` is adjacent to nodes `(i + 1) % n` and `(i + n - 1) % n`.
pub type NodeId = usize;

/// Identifier of an edge of the ring, in `0..n`.
///
/// Edge `i` connects node `i` and node `(i + 1) % n`.
pub type EdgeId = usize;

/// A global direction around the ring.
///
/// `Cw` ("clockwise") goes from node `i` to node `(i + 1) % n`; `Ccw` goes the
/// other way.  The labels are a simulation artefact: robots have no common
/// sense of orientation and never observe a [`Direction`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Towards increasing node indices.
    Cw,
    /// Towards decreasing node indices.
    Ccw,
}

impl Direction {
    /// The two directions, in a fixed order.
    pub const BOTH: [Direction; 2] = [Direction::Cw, Direction::Ccw];

    /// Returns the opposite direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Cw => Direction::Ccw,
            Direction::Ccw => Direction::Cw,
        }
    }

    /// Returns `+1` for [`Direction::Cw`] and `-1` for [`Direction::Ccw`],
    /// as an `isize` step usable in modular arithmetic.
    #[must_use]
    pub fn step(self) -> isize {
        match self {
            Direction::Cw => 1,
            Direction::Ccw => -1,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Cw => write!(f, "cw"),
            Direction::Ccw => write!(f, "ccw"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::BOTH {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn steps_are_opposite() {
        assert_eq!(Direction::Cw.step(), 1);
        assert_eq!(Direction::Ccw.step(), -1);
        assert_eq!(Direction::Cw.step() + Direction::Ccw.step(), 0);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Direction::Cw.to_string(), "cw");
        assert_eq!(Direction::Ccw.to_string(), "ccw");
    }
}
