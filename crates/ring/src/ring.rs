//! The ring topology itself: neighbourhood, distances and edges.

use serde::{Deserialize, Serialize};

use crate::node::{Direction, EdgeId, NodeId};

/// An anonymous, unoriented ring (cycle graph) on `n >= 3` nodes.
///
/// The `Ring` only knows about topology; robot placement lives in
/// [`crate::Configuration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// Creates a ring with `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (the paper always assumes `n >= 3`; a "ring" on fewer
    /// nodes is degenerate).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
        Ring { n }
    }

    /// Number of nodes (= number of edges) of the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// A ring is never empty; provided for clippy-friendliness alongside
    /// [`Ring::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// Iterator over all edge identifiers.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.n
    }

    /// The neighbour of `v` in direction `dir`.
    #[must_use]
    pub fn neighbor(&self, v: NodeId, dir: Direction) -> NodeId {
        debug_assert!(v < self.n);
        match dir {
            Direction::Cw => (v + 1) % self.n,
            Direction::Ccw => (v + self.n - 1) % self.n,
        }
    }

    /// Both neighbours of `v`, ordered `[cw, ccw]`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> [NodeId; 2] {
        [
            self.neighbor(v, Direction::Cw),
            self.neighbor(v, Direction::Ccw),
        ]
    }

    /// The node reached from `v` after `steps` hops in direction `dir`.
    #[must_use]
    pub fn walk(&self, v: NodeId, dir: Direction, steps: usize) -> NodeId {
        debug_assert!(v < self.n);
        let steps = steps % self.n;
        match dir {
            Direction::Cw => (v + steps) % self.n,
            Direction::Ccw => (v + self.n - steps) % self.n,
        }
    }

    /// Number of hops from `a` to `b` walking clockwise.
    #[must_use]
    pub fn distance_cw(&self, a: NodeId, b: NodeId) -> usize {
        debug_assert!(a < self.n && b < self.n);
        (b + self.n - a) % self.n
    }

    /// Graph distance (length of the shortest of the two arcs) between `a` and `b`.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let d = self.distance_cw(a, b);
        d.min(self.n - d)
    }

    /// Whether `a` and `b` are adjacent.
    #[must_use]
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) == 1
    }

    /// Whether `a` and `b` are *diametral* in the sense of Theorem 2 of the
    /// paper: for even `n` there are two shortest paths between them, for odd
    /// `n` the two arc lengths differ by exactly one.
    #[must_use]
    pub fn diametral(&self, a: NodeId, b: NodeId) -> bool {
        let d = self.distance_cw(a, b);
        let other = self.n - d;
        if self.n.is_multiple_of(2) {
            d == other
        } else {
            d.abs_diff(other) == 1
        }
    }

    /// The edge between two adjacent nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not adjacent.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> EdgeId {
        assert!(
            self.adjacent(a, b),
            "nodes {a} and {b} are not adjacent in a ring of {} nodes",
            self.n
        );
        if (a + 1) % self.n == b {
            a
        } else {
            b
        }
    }

    /// The two endpoints of edge `e`, ordered `(e, (e + 1) % n)`.
    #[must_use]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        debug_assert!(e < self.n);
        (e, (e + 1) % self.n)
    }

    /// The two edges incident to node `v`, ordered `[ccw-side edge, cw-side edge]`,
    /// i.e. `[edge(v-1, v), edge(v, v+1)]`.
    #[must_use]
    pub fn incident_edges(&self, v: NodeId) -> [EdgeId; 2] {
        debug_assert!(v < self.n);
        [(v + self.n - 1) % self.n, v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn rejects_tiny_rings() {
        let _ = Ring::new(2);
    }

    #[test]
    fn neighbors_wrap_around() {
        let r = Ring::new(5);
        assert_eq!(r.neighbor(4, Direction::Cw), 0);
        assert_eq!(r.neighbor(0, Direction::Ccw), 4);
        assert_eq!(r.neighbors(0), [1, 4]);
    }

    #[test]
    fn walk_matches_repeated_neighbor() {
        let r = Ring::new(7);
        for v in r.nodes() {
            for dir in Direction::BOTH {
                let mut cur = v;
                for steps in 0..15 {
                    assert_eq!(r.walk(v, dir, steps), cur);
                    cur = r.neighbor(cur, dir);
                }
            }
        }
    }

    #[test]
    fn distances_are_symmetric_and_bounded() {
        let r = Ring::new(9);
        for a in r.nodes() {
            for b in r.nodes() {
                assert_eq!(r.distance(a, b), r.distance(b, a));
                assert!(r.distance(a, b) <= 4);
                assert!(r.distance_cw(a, b) + r.distance_cw(b, a) == 9 || a == b);
            }
        }
    }

    #[test]
    fn adjacency_and_edges() {
        let r = Ring::new(6);
        assert!(r.adjacent(0, 1));
        assert!(r.adjacent(5, 0));
        assert!(!r.adjacent(0, 2));
        assert!(!r.adjacent(3, 3));
        assert_eq!(r.edge_between(0, 1), 0);
        assert_eq!(r.edge_between(1, 0), 0);
        assert_eq!(r.edge_between(5, 0), 5);
        assert_eq!(r.edge_endpoints(5), (5, 0));
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn edge_between_rejects_non_adjacent() {
        let r = Ring::new(6);
        let _ = r.edge_between(0, 3);
    }

    #[test]
    fn incident_edges_cover_all_edges_twice() {
        let r = Ring::new(8);
        let mut count = [0usize; 8];
        for v in r.nodes() {
            for e in r.incident_edges(v) {
                count[e] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    fn diametral_even_and_odd() {
        let even = Ring::new(8);
        assert!(even.diametral(0, 4));
        assert!(!even.diametral(0, 3));
        let odd = Ring::new(9);
        assert!(odd.diametral(0, 4));
        assert!(odd.diametral(0, 5));
        assert!(!odd.diametral(0, 3));
    }

    #[test]
    fn diametral_is_symmetric() {
        for n in [5usize, 6, 9, 12] {
            let r = Ring::new(n);
            for a in r.nodes() {
                for b in r.nodes() {
                    assert_eq!(r.diametral(a, b), r.diametral(b, a), "n={n} a={a} b={b}");
                }
            }
        }
    }
}
