//! Symmetry, periodicity and rigidity of configurations
//! (Property 1 and Lemma 1 of the paper).
//!
//! Two independent characterizations are implemented and cross-checked in
//! tests:
//!
//! * a *geometric* one, enumerating the `2n` candidate rotations / reflections
//!   of the ring and checking which leave the occupied-node set invariant;
//! * a *combinatorial* one on the cyclic gap sequence (Property 1), which is
//!   what the robots themselves can compute from a view.

use serde::{Deserialize, Serialize};

use crate::config::Configuration;
use crate::supermin::supermin_intervals;
use crate::view::View;

/// An axis of reflection of the ring, encoded by the integer `c` of the map
/// `v ↦ (c - v) mod n`.
///
/// If `c` is even the axis passes through node `c/2` (and through node
/// `c/2 + n/2` or the opposite edge depending on parity of `n`); if `c` is
/// odd it passes through the edge between nodes `(c-1)/2` and `(c+1)/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Axis {
    /// The reflection constant `c` (in `0..2n`).
    pub c: usize,
    /// Ring size, kept so the axis can be interpreted independently.
    pub n: usize,
}

impl Axis {
    /// Image of node `v` under this reflection.
    #[must_use]
    pub fn reflect(&self, v: usize) -> usize {
        (self.c + self.n - (v % self.n)) % self.n
    }

    /// The nodes fixed by this reflection (0, 1 or 2 nodes).
    #[must_use]
    pub fn fixed_nodes(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.reflect(v) == v).collect()
    }

    /// Whether the axis passes through node `v`.
    #[must_use]
    pub fn passes_through_node(&self, v: usize) -> bool {
        self.reflect(v) == v
    }
}

/// Coarse classification of a configuration (the paper's trichotomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigurationClass {
    /// Aperiodic and asymmetric.
    Rigid,
    /// Aperiodic but admitting at least one axis of symmetry (then exactly one,
    /// by Property 1 (iii)).
    SymmetricAperiodic,
    /// Invariant under a non-trivial rotation.
    Periodic,
}

/// Full symmetry analysis of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryInfo {
    /// Whether the occupied set is invariant under some non-trivial rotation.
    pub periodic: bool,
    /// Whether the occupied set is invariant under some reflection.
    pub symmetric: bool,
    /// The smallest strictly positive rotation (in nodes) fixing the occupied
    /// set; equals `n` iff the configuration is aperiodic.
    pub period: usize,
    /// All axes of symmetry.
    pub axes: Vec<Axis>,
}

impl SymmetryInfo {
    /// Whether the configuration is rigid (aperiodic and asymmetric).
    #[must_use]
    pub fn is_rigid(&self) -> bool {
        !self.periodic && !self.symmetric
    }

    /// The coarse class.
    #[must_use]
    pub fn class(&self) -> ConfigurationClass {
        if self.periodic {
            ConfigurationClass::Periodic
        } else if self.symmetric {
            ConfigurationClass::SymmetricAperiodic
        } else {
            ConfigurationClass::Rigid
        }
    }
}

/// Geometric symmetry analysis of the occupied-node set of `config`.
#[must_use]
pub fn analyze(config: &Configuration) -> SymmetryInfo {
    let n = config.n();
    let occupied: Vec<bool> = (0..n).map(|v| config.is_occupied(v)).collect();

    let mut period = n;
    for t in 1..n {
        if (0..n).all(|v| occupied[v] == occupied[(v + t) % n]) {
            period = t;
            break;
        }
    }
    let periodic = period < n;

    let mut axes = Vec::new();
    for c in 0..(2 * n) {
        let axis = Axis { c: c % (2 * n), n };
        // The reflection v ↦ (c - v) mod n; c and c + n give the same map on
        // nodes when considered mod n?  No: (c - v) and (c + n - v) coincide
        // mod n, so only c in 0..n yields distinct maps.
        if c >= n {
            break;
        }
        if (0..n).all(|v| occupied[v] == occupied[axis.reflect(v)]) {
            axes.push(axis);
        }
    }
    let symmetric = !axes.is_empty();

    SymmetryInfo {
        periodic,
        symmetric,
        period,
        axes,
    }
}

/// Whether `config` is rigid (aperiodic and asymmetric).
#[must_use]
pub fn is_rigid(config: &Configuration) -> bool {
    analyze(config).is_rigid()
}

/// Whether `config` is symmetric (admits an axis of reflection).
#[must_use]
pub fn is_symmetric(config: &Configuration) -> bool {
    analyze(config).symmetric
}

/// Whether `config` is periodic (invariant under a non-trivial rotation).
#[must_use]
pub fn is_periodic(config: &Configuration) -> bool {
    analyze(config).periodic
}

/// The coarse classification of `config`.
#[must_use]
pub fn classify(config: &Configuration) -> ConfigurationClass {
    analyze(config).class()
}

/// Checks Lemma 1 of the paper on a single configuration, returning `Err` with
/// a description if the configuration violates it (used as a sanity oracle in
/// tests and in the checker crate).
pub fn check_lemma1(config: &Configuration) -> Result<(), String> {
    let info = analyze(config);
    let sm = supermin_intervals(config);
    let ic = sm.multiplicity();
    let n = config.n();
    match ic {
        1 => {
            // Rigid, or a unique axis passing through the supermin interval.
            if info.is_rigid() || (!info.periodic && info.axes.len() == 1) {
                Ok(())
            } else {
                Err(format!(
                    "|I_C| = 1 but configuration {config} is neither rigid nor uniquely symmetric"
                ))
            }
        }
        2 => {
            let half_period = info.periodic && info.period == n / 2 && n.is_multiple_of(2);
            let sym_not_through = !info.periodic && info.symmetric;
            if half_period || sym_not_through {
                Ok(())
            } else {
                Err(format!(
                    "|I_C| = 2 but configuration {config} is neither aperiodic-symmetric nor n/2-periodic"
                ))
            }
        }
        _ => {
            // Lemma 1 (iii) states periodicity with period <= n/3; configurations
            // that are simultaneously n/2-periodic *and* symmetric also exhibit
            // |I_C| > 2 (e.g. gaps (0,0,1,0,0,1)), which the coarse statement of
            // the lemma glosses over — accept them as well.
            let small_period = info.period * 3 <= n;
            let half_period_symmetric = info.period * 2 == n && info.symmetric;
            if info.periodic && (small_period || half_period_symmetric) {
                Ok(())
            } else {
                Err(format!(
                    "|I_C| = {ic} > 2 but configuration {config} is not periodic with period <= n/3 \
                     (nor n/2-periodic and symmetric)"
                ))
            }
        }
    }
}

/// Combinatorial (view-based, Property 1) classification, used to cross-check
/// the geometric analysis.
#[must_use]
pub fn classify_by_views(config: &Configuration) -> ConfigurationClass {
    let w = View::new(config.gap_sequence());
    if w.is_periodic() {
        ConfigurationClass::Periodic
    } else if w.is_symmetric() {
        ConfigurationClass::SymmetricAperiodic
    } else {
        ConfigurationClass::Rigid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn axis_reflection_is_involutive() {
        let axis = Axis { c: 3, n: 9 };
        for v in 0..9 {
            assert_eq!(axis.reflect(axis.reflect(v)), v);
        }
    }

    #[test]
    fn rigid_examples() {
        assert!(is_rigid(&cfg(&[0, 1, 1, 2])));
        assert!(is_rigid(&cfg(&[0, 0, 0, 1, 6])));
        assert!(is_rigid(&cfg(&[0, 1, 2, 5])));
    }

    #[test]
    fn symmetric_examples() {
        assert!(is_symmetric(&cfg(&[0, 0, 2, 2])));
        assert!(is_symmetric(&cfg(&[1, 1, 4])));
        assert!(!is_symmetric(&cfg(&[0, 1, 1, 2])));
    }

    #[test]
    fn periodic_examples() {
        assert!(is_periodic(&cfg(&[1, 1, 1, 1])));
        assert!(is_periodic(&cfg(&[0, 3, 0, 3])));
        assert!(!is_periodic(&cfg(&[0, 1, 1, 2])));
    }

    #[test]
    fn classification_matches_view_based_classification() {
        // Cross-check the geometric and the combinatorial (Property 1)
        // characterizations on every 5-robot configuration of a 10-ring.
        let ring = Ring::new(10);
        let nodes: Vec<usize> = (0..10).collect();
        let mut checked = 0;
        for a in 0..10usize {
            for b in (a + 1)..10 {
                for c in (b + 1)..10 {
                    for d in (c + 1)..10 {
                        for e in (d + 1)..10 {
                            let occ = [nodes[a], nodes[b], nodes[c], nodes[d], nodes[e]];
                            let conf = Configuration::new_exclusive(ring, &occ).unwrap();
                            assert_eq!(classify(&conf), classify_by_views(&conf), "{conf}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(checked, 252);
    }

    #[test]
    fn aperiodic_symmetric_has_unique_axis() {
        // Property 1 (iii): aperiodic and symmetric => exactly one axis.
        let examples = [
            cfg(&[0, 0, 2, 2]),
            cfg(&[1, 1, 4]),
            cfg(&[0, 2, 0, 4]),
            cfg(&[0, 1, 3, 1]),
        ];
        for c in examples {
            let info = analyze(&c);
            assert!(!info.periodic, "{c}");
            assert!(info.symmetric, "{c}");
            assert_eq!(info.axes.len(), 1, "{c}");
        }
    }

    #[test]
    fn lemma1_holds_on_all_small_configurations() {
        for n in 4..=10usize {
            for k in 1..n {
                let ring = Ring::new(n);
                // Enumerate all k-subsets of 0..n via bitmasks (n <= 10).
                for mask in 0u32..(1 << n) {
                    if mask.count_ones() as usize != k {
                        continue;
                    }
                    let occ: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                    let conf = Configuration::new_exclusive(ring, &occ).unwrap();
                    check_lemma1(&conf).unwrap();
                }
            }
        }
    }

    #[test]
    fn period_divides_ring_size_for_occupancy() {
        let c = cfg(&[0, 3, 0, 3]);
        let info = analyze(&c);
        assert!(info.periodic);
        assert_eq!(info.period, 5);
        assert_eq!(c.n() % info.period, 0);
    }

    #[test]
    fn rigid_implies_all_views_distinct() {
        let c = cfg(&[0, 1, 2, 5]);
        assert!(is_rigid(&c));
        let views: Vec<_> = c.all_views().into_iter().map(|(_, _, w)| w).collect();
        for i in 0..views.len() {
            for j in (i + 1)..views.len() {
                assert_ne!(views[i], views[j]);
            }
        }
    }

    #[test]
    fn class_enum_round_trip() {
        assert_eq!(classify(&cfg(&[0, 1, 1, 2])), ConfigurationClass::Rigid);
        assert_eq!(
            classify(&cfg(&[0, 0, 2, 2])),
            ConfigurationClass::SymmetricAperiodic
        );
        assert_eq!(classify(&cfg(&[1, 1, 1, 1])), ConfigurationClass::Periodic);
    }

    #[test]
    fn fixed_nodes_of_axes() {
        // Even ring, axis through two opposite nodes.
        let axis = Axis { c: 0, n: 8 };
        assert_eq!(axis.fixed_nodes(), vec![0, 4]);
        // Even ring, axis through two opposite edges.
        let axis = Axis { c: 1, n: 8 };
        assert!(axis.fixed_nodes().is_empty());
        // Odd ring: every axis passes through exactly one node.
        let axis = Axis { c: 2, n: 9 };
        assert_eq!(axis.fixed_nodes(), vec![1]);
    }
}
