//! Spill hygiene: every temp file the spill backends create — packed-state
//! clusters, CSR edge pages, and the visited map's sorted runs — must be
//! unlinked by the time `check_protocol_with_stats` returns.  The visited
//! map in particular is dropped *before* the liveness pass, so its run file
//! must not outlive exploration either.
//!
//! This test runs in its own integration binary, hence its own process:
//! spill files are named `rr-checker-*-{pid}-*.spill`, so filtering the
//! temp dir by our pid cannot race with other test binaries.

use rr_checker::explore::{check_protocol_with_stats, ExploreOptions};
use rr_checker::StoreKind;
use rr_corda::InterleavingMode;
use rr_core::invariant::GatheringInvariant;
use rr_core::GatheringProtocol;
use rr_ring::enumerate::enumerate_rigid_configurations;

/// Spill files of *this* process currently present in the temp dir.
fn our_spill_files() -> Vec<String> {
    let marker = format!("-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| {
            name.starts_with("rr-checker-") && name.ends_with(".spill") && name.contains(&marker)
        })
        .collect()
}

#[test]
fn spill_temp_files_are_deleted_when_explore_returns() {
    let initial = enumerate_rigid_configurations(9, 4).remove(1);
    // A budget this small forces the packed-state store to spill clusters
    // AND the visited map to seal runs to disk, so all three spill files
    // (states, edges, visited runs) actually exist during the run.  The
    // async interleaving space keeps the graph big enough (≈160 states ×
    // 68 B/entry) that a 1 KiB visited budget genuinely seals.
    let (report, stats) = check_protocol_with_stats(
        &GatheringProtocol::new(),
        &initial,
        &GatheringInvariant::new(),
        &ExploreOptions::new(InterleavingMode::AsyncPhases)
            .with_store(StoreKind::Spill)
            .with_mem_budget(1 << 10),
    )
    .unwrap();
    assert!(report.verified(), "{:?}", report.outcome);
    assert!(stats.spilled_bytes > 0, "state/edge spill never engaged");
    assert!(
        stats.visited_spilled_bytes > 0,
        "visited map never sealed a run — the budget is not tight enough"
    );
    let leftover = our_spill_files();
    assert!(
        leftover.is_empty(),
        "spill files survived exploration: {leftover:?}"
    );
}
