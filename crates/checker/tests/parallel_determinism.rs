//! The parallel checker's headline guarantee: exploration with 1, 2 and N
//! workers yields **identical** `ExploreReport`s — every field, including
//! state/edge counts, the canonical-class statistic and the peak-memory
//! figure — and identical counterexample traces (schedules, step for step),
//! for verified protocols, mutated (falsified) protocols, budget-limited
//! runs, and the symmetry-quotient explorer alike.

use proptest::prelude::*;
use rr_checker::explore::{
    check_protocol, check_protocol_quotient, check_safety_quotient, replay_counterexample,
    ExploreOptions, FaultBudget, MutatedProtocol,
};
use rr_checker::StoreKind;
use rr_corda::{Decision, InterleavingMode, Protocol, ViewIndex};
use rr_core::invariant::{
    AlignmentInvariant, CrashTolerantGatheringInvariant, EventualGatheringInvariant,
    GatheringInvariant, Invariant, SearchingInvariant,
};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;
use rr_ring::Configuration;

const MODES: [InterleavingMode; 2] = [
    InterleavingMode::SsyncSubsets,
    InterleavingMode::AsyncPhases,
];

/// Worker counts every run is checked under: sequential, genuinely
/// concurrent, and oversubscribed (more workers than the machine has cores
/// — and, for small graphs, more than there are nodes to expand).  The
/// spill-backend leg below runs each of these with a visited-map budget
/// tight enough to seal runs to disk, so mem-vs-spill × every worker count
/// is pinned byte-identical.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_worker_invariant<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    base: &ExploreOptions,
    label: &str,
) {
    let reference = check_protocol(protocol, initial, invariant, &base.with_workers(1)).unwrap();
    for workers in &WORKER_COUNTS[1..] {
        let report =
            check_protocol(protocol, initial, invariant, &base.with_workers(*workers)).unwrap();
        assert_eq!(report, reference, "{label}: workers={workers}");
    }
    // The spill backend is observationally invisible: for every worker
    // count, a run that keeps its packed states in delta-compressed clusters
    // on disk (with a cache budget small enough to actually evict) emits the
    // identical report — counterexample included, since it is a field of the
    // report compared here.
    for workers in WORKER_COUNTS {
        let spilled = check_protocol(
            protocol,
            initial,
            invariant,
            &base
                .with_workers(workers)
                .with_store(StoreKind::Spill)
                .with_mem_budget(4 << 10),
        )
        .unwrap();
        assert_eq!(spilled, reference, "{label}: spill workers={workers}");
    }
    // The quotient explorer obeys the same discipline.
    let quotient_reference =
        check_safety_quotient(protocol, initial, invariant, &base.with_workers(1)).unwrap();
    for workers in &WORKER_COUNTS[1..] {
        let report =
            check_safety_quotient(protocol, initial, invariant, &base.with_workers(*workers))
                .unwrap();
        assert_eq!(
            report, quotient_reference,
            "{label} quotient: workers={workers}"
        );
    }
    // Any counterexample must replay regardless of which run produced it.
    if let Some(ce) = reference.counterexample() {
        let replay = replay_counterexample(protocol, initial, invariant, ce).unwrap();
        assert!(replay.reproduced, "{label}: {}", replay.detail);
    }
}

#[test]
fn verified_cells_are_worker_invariant() {
    for (n, k) in [(7usize, 3usize), (8, 4)] {
        for initial in enumerate_rigid_configurations(n, k) {
            for mode in MODES {
                assert_worker_invariant(
                    &GatheringProtocol::new(),
                    &initial,
                    &GatheringInvariant::new(),
                    &ExploreOptions::new(mode),
                    &format!("gathering ({n},{k}) {mode}"),
                );
                assert_worker_invariant(
                    &AlignProtocol::new(),
                    &initial,
                    &AlignmentInvariant::new(),
                    &ExploreOptions::new(mode),
                    &format!("alignment ({n},{k}) {mode}"),
                );
            }
        }
    }
}

#[test]
fn searching_with_aug_state_is_worker_invariant() {
    // The searching invariant exercises the auxiliary-state path (the
    // 64-bit contamination key stored per node).  SSYNC keeps the graph
    // small enough for a test; exp_modelcheck covers ASYNC.
    let initial = enumerate_rigid_configurations(11, 5).remove(0);
    let protocol = protocol_for(Task::GraphSearching, 11, 5).expect("feasible");
    assert_worker_invariant(
        &protocol,
        &initial,
        &SearchingInvariant::new(),
        &ExploreOptions::new(InterleavingMode::SsyncSubsets),
        "searching (11,5) ssync",
    );
}

#[test]
fn falsified_cells_yield_identical_counterexamples_across_workers() {
    let initial = enumerate_rigid_configurations(7, 3).remove(0);
    // Liveness lasso (idle mutant) and minimal safety trace (move mutant).
    let idle_mutant = MutatedProtocol::new(
        GatheringProtocol::new(),
        MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
        Decision::Idle,
    );
    for mode in MODES {
        assert_worker_invariant(
            &idle_mutant,
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode),
            &format!("idle mutant {mode}"),
        );
    }
    let c_star = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
    let move_mutant = MutatedProtocol::new(
        AlignProtocol::new(),
        MutatedProtocol::<AlignProtocol>::trigger_for(&c_star),
        Decision::Move(ViewIndex::First),
    );
    for mode in MODES {
        assert_worker_invariant(
            &move_mutant,
            &c_star,
            &AlignmentInvariant::new(),
            &ExploreOptions::new(mode),
            &format!("move mutant {mode}"),
        );
    }
}

#[test]
fn fault_branching_exploration_is_worker_invariant() {
    // Fault-choice branch points (crash edges, corrupted Looks, starvation
    // exemptions) multiply the frontier; the merged reports must still be
    // byte-identical for every worker count, and any counterexample they
    // produce must replay with its fault directives honoured.
    let initial = enumerate_rigid_configurations(6, 3).remove(0);
    for mode in MODES {
        assert_worker_invariant(
            &GatheringProtocol::new(),
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_crashes(1)),
            &format!("one-crash gathering {mode}"),
        );
        assert_worker_invariant(
            &GatheringProtocol::new(),
            &initial,
            &CrashTolerantGatheringInvariant::new(),
            &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_crashes(1)),
            &format!("one-crash crash-tolerant gathering {mode}"),
        );
        assert_worker_invariant(
            &GatheringProtocol::new(),
            &initial,
            &EventualGatheringInvariant::new(),
            &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_corrupt_looks(1)),
            &format!("corrupt-look gathering {mode}"),
        );
        assert_worker_invariant(
            &GatheringProtocol::new(),
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_starved(0b001)),
            &format!("starved gathering {mode}"),
        );
    }
}

#[test]
fn quotient_full_check_is_worker_and_store_invariant() {
    // The σ-threaded quotient checker (safety + liveness on the canonical
    // quotient) obeys the same discipline as the concrete checker: identical
    // reports for every worker count and storage backend, on a verified cell
    // and on a falsified one — and the falsified cell's lasso, realized over
    // concrete robots by unwinding the accumulated relabelings, replays.
    let initial = enumerate_rigid_configurations(7, 3).remove(0);
    let idle_mutant = MutatedProtocol::new(
        GatheringProtocol::new(),
        MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
        Decision::Idle,
    );
    let invariant = GatheringInvariant::new();
    for mode in MODES {
        let base = ExploreOptions::new(mode);
        let verified_ref =
            check_protocol_quotient(&GatheringProtocol::new(), &initial, &invariant, &base)
                .unwrap();
        assert!(verified_ref.verified(), "{mode}");
        let falsified_ref =
            check_protocol_quotient(&idle_mutant, &initial, &invariant, &base).unwrap();
        let ce = falsified_ref.counterexample().expect("mutant falsified");
        let replay = replay_counterexample(&idle_mutant, &initial, &invariant, ce).unwrap();
        assert!(replay.reproduced, "{mode}: {}", replay.detail);
        for workers in WORKER_COUNTS {
            for store in [StoreKind::Mem, StoreKind::Spill] {
                let options = base
                    .with_workers(workers)
                    .with_store(store)
                    .with_mem_budget(4 << 10);
                let verified = check_protocol_quotient(
                    &GatheringProtocol::new(),
                    &initial,
                    &invariant,
                    &options,
                )
                .unwrap();
                assert_eq!(
                    verified, verified_ref,
                    "{mode}: workers={workers} store={store}"
                );
                let falsified =
                    check_protocol_quotient(&idle_mutant, &initial, &invariant, &options).unwrap();
                assert_eq!(
                    falsified, falsified_ref,
                    "{mode}: workers={workers} store={store}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sweep over the space the fixed tests cannot enumerate:
    /// random initial class, random single-entry protocol mutation (or
    /// none), random interleaving mode, random state budget — 1, 2 and 8
    /// workers always emit the identical report and trace.
    #[test]
    fn random_mutants_and_budgets_are_worker_invariant(
        class_pick in 0usize..4,
        // 0 = unmutated; 1..=12 decomposes into a (trigger class, decision)
        // single-entry table mutation.
        mutate_pick in 0usize..13,
        mode_pick in 0usize..2,
        // 0 = unbounded (the default budget); otherwise a tight budget that
        // usually trips mid-frontier.
        budget_pick in 0usize..61,
    ) {
        let classes = enumerate_rigid_configurations(8, 4);
        let initial = classes[class_pick % classes.len()].clone();
        let mode = MODES[mode_pick];
        let budget = if budget_pick == 0 {
            rr_checker::explore::DEFAULT_MAX_STATES
        } else {
            budget_pick
        };
        let base = ExploreOptions::new(mode).with_max_states(budget);
        let invariant = GatheringInvariant::new();
        if mutate_pick == 0 {
            assert_worker_invariant(
                &GatheringProtocol::new(),
                &initial,
                &invariant,
                &base,
                "random unmutated",
            );
        } else {
            let (trigger_pick, decision_pick) = ((mutate_pick - 1) % 4, (mutate_pick - 1) / 4);
            let trigger = MutatedProtocol::<GatheringProtocol>::trigger_for(
                &classes[trigger_pick % classes.len()],
            );
            let replacement = match decision_pick {
                0 => Decision::Idle,
                1 => Decision::Move(ViewIndex::First),
                _ => Decision::Move(ViewIndex::Second),
            };
            let mutant = MutatedProtocol::new(GatheringProtocol::new(), trigger, replacement);
            assert_worker_invariant(&mutant, &initial, &invariant, &base, "random mutant");
        }
    }
}
