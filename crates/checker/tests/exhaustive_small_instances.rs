//! The acceptance grid of the exhaustive model checker, as a test: every
//! claimed gathering/alignment cell with `n ≤ 8, k ≤ 4`, every rigid initial
//! configuration class, under **both** SSYNC activation subsets and ASYNC
//! Look/Move interleavings — zero counterexamples.  Graph searching has no
//! claimed cell below `n = 10` (Theorem 5), which the test also pins; its
//! smallest feasible instances are proved under SSYNC here (the larger ASYNC
//! graphs run in `exp_modelcheck`, release-built).

use rr_checker::explore::{
    check_protocol, check_protocol_quotient, check_safety_quotient, ExploreOptions,
};
use rr_corda::{InterleavingMode, Protocol};
use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, Invariant, SearchingInvariant};
use rr_core::unified::{protocol_for, Task};
use rr_core::{AlignProtocol, GatheringProtocol};
use rr_ring::enumerate::enumerate_rigid_configurations;

const MODES: [InterleavingMode; 2] = [
    InterleavingMode::SsyncSubsets,
    InterleavingMode::AsyncPhases,
];

fn assert_cell_proved<P: Protocol + Clone + Send>(
    protocol: &P,
    invariant: &dyn Invariant,
    n: usize,
    k: usize,
    modes: &[InterleavingMode],
) {
    let initials = enumerate_rigid_configurations(n, k);
    assert!(!initials.is_empty(), "no rigid class for n={n} k={k}");
    for initial in &initials {
        for &mode in modes {
            let report = check_protocol(protocol, initial, invariant, &ExploreOptions::new(mode))
                .unwrap_or_else(|e| panic!("n={n} k={k} {mode}: {e}"));
            assert!(
                report.verified(),
                "n={n} k={k} mode={mode} from {initial}: {:?}",
                report.outcome
            );
            // The symmetry-quotient safety pass must agree.
            let quotient =
                check_safety_quotient(protocol, initial, invariant, &ExploreOptions::new(mode))
                    .unwrap();
            assert!(quotient.verified(), "quotient disagrees on n={n} k={k}");
            assert!(quotient.states <= report.states);
            // ... and so must the *full* quotient check, liveness included:
            // the σ-threaded fairness analysis re-derives the concrete
            // verdict from the 2n-fold smaller graph on every cell of the
            // grid.  (For the searching invariant, whose auxiliary
            // contamination state forces exact keys, this degrades to the
            // concrete checker — the verdicts still must match.)
            let full_quotient =
                check_protocol_quotient(protocol, initial, invariant, &ExploreOptions::new(mode))
                    .unwrap();
            assert!(
                full_quotient.verified(),
                "quotient liveness disagrees on n={n} k={k} mode={mode} from {initial}: {:?}",
                full_quotient.outcome
            );
        }
    }
}

#[test]
fn gathering_proved_for_all_rigid_classes_up_to_n8_k4() {
    let mut claimed_cells = 0;
    for n in 4..=8usize {
        for k in 2..=4usize.min(n) {
            if protocol_for(Task::Gathering, n, k).is_none() {
                continue;
            }
            claimed_cells += 1;
            assert_cell_proved(
                &GatheringProtocol::new(),
                &GatheringInvariant::new(),
                n,
                k,
                &MODES,
            );
        }
    }
    // (6,3), (7,3), (7,4), (8,3), (8,4): the claimed band 2 < k < n - 2.
    assert_eq!(claimed_cells, 5);
}

#[test]
fn alignment_proved_for_all_rigid_classes_up_to_n8_k4() {
    for n in 6..=8usize {
        for k in 3..=4usize {
            if k + 2 >= n {
                continue;
            }
            assert_cell_proved(
                &AlignProtocol::new(),
                &AlignmentInvariant::new(),
                n,
                k,
                &MODES,
            );
        }
    }
}

#[test]
fn searching_has_no_claimed_cell_below_n10_and_is_proved_at_the_frontier() {
    // Theorem 5: no searching algorithm exists for n ≤ 9 — every cell of the
    // acceptance grid is vacuous, which this pins against the dispatcher.
    for n in 4..=9usize {
        for k in 1..=n {
            assert!(
                protocol_for(Task::GraphSearching, n, k).is_none(),
                "unexpected searching protocol for n={n} k={k}"
            );
        }
    }
    // The two smallest feasible instances, proved exhaustively under every
    // SSYNC activation subset (ASYNC runs in exp_modelcheck, release-built):
    // perpetual clearing *liveness* included.
    for (n, k) in [(11usize, 5usize), (10, 7)] {
        let protocol = protocol_for(Task::GraphSearching, n, k).expect("feasible");
        assert_cell_proved(
            &protocol,
            &SearchingInvariant::new(),
            n,
            k,
            &[InterleavingMode::SsyncSubsets],
        );
    }
}
