//! Configuration graphs: the objects drawn in Figures 4–9 of the paper.
//!
//! For a given `(n, k)` the graph has one node per isomorphism class of
//! exclusive configurations and one directed edge per possible single-robot
//! move (up to isomorphism).  The paper's case analysis of Theorem 5 walks
//! these graphs by hand; the checker regenerates them.

use rr_ring::enumerate::enumerate_configurations;
use rr_ring::{symmetry, Configuration, ConfigurationClass, Direction, View};
use serde::{Deserialize, Serialize};

/// One node of the configuration graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigurationNode {
    /// Canonical gap word of the configuration class.
    pub canonical: View,
    /// Symmetry class (rigid / symmetric / periodic).
    pub class: ConfigurationClass,
    /// Number of robots whose two views coincide (robots "on an axis").
    pub locally_symmetric_robots: usize,
}

/// The configuration graph for a pair `(n, k)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigurationGraph {
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// One node per isomorphism class.
    pub nodes: Vec<ConfigurationNode>,
    /// Directed edges `(from, to)`: some single-robot move transforms a member
    /// of class `from` into a member of class `to`.  Parallel edges are
    /// collapsed.
    pub edges: Vec<(usize, usize)>,
}

impl ConfigurationGraph {
    /// Number of configuration classes (the quantity reported in the captions
    /// of Figures 4–9).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of rigid classes.
    #[must_use]
    pub fn num_rigid(&self) -> usize {
        self.nodes
            .iter()
            .filter(|c| c.class == ConfigurationClass::Rigid)
            .count()
    }

    /// Index of the class containing `config`, if any.
    #[must_use]
    pub fn class_of(&self, config: &Configuration) -> Option<usize> {
        let key = config.canonical_key();
        self.nodes.iter().position(|c| c.canonical == key)
    }

    /// Successor classes of class `i`.
    #[must_use]
    pub fn successors(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == i)
            .map(|(_, t)| *t)
            .collect()
    }
}

/// Builds the configuration graph for `k` robots on an `n`-node ring.
#[must_use]
pub fn configuration_graph(n: usize, k: usize) -> ConfigurationGraph {
    let configs = enumerate_configurations(n, k);
    let keys: Vec<View> = configs.iter().map(Configuration::canonical_key).collect();
    let mut nodes = Vec::with_capacity(configs.len());
    for config in &configs {
        let info = symmetry::analyze(config);
        let locally_symmetric_robots = config
            .occupied_nodes()
            .into_iter()
            .filter(|&v| config.view_from(v, Direction::Cw) == config.view_from(v, Direction::Ccw))
            .count();
        nodes.push(ConfigurationNode {
            canonical: config.canonical_key(),
            class: info.class(),
            locally_symmetric_robots,
        });
    }
    let mut edges = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        for v in config.occupied_nodes() {
            for dir in Direction::BOTH {
                let target = config.ring().neighbor(v, dir);
                if config.is_occupied(target) {
                    continue;
                }
                let mut next = config.clone();
                next.move_robot(v, target).expect("legal move");
                let key = next.canonical_key();
                let j = keys.iter().position(|x| *x == key).expect("class exists");
                if !edges.contains(&(i, j)) {
                    edges.push((i, j));
                }
            }
        }
    }
    ConfigurationGraph { n, k, nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_counts_are_reproduced() {
        // (k, n) -> number of configuration classes, as in Figures 4–9.
        let expected = [
            (4usize, 7usize, 4usize),
            (4, 8, 8),
            (5, 8, 5),
            (6, 9, 7),
            (4, 9, 10),
            (5, 9, 10),
        ];
        for (k, n, classes) in expected {
            let graph = configuration_graph(n, k);
            assert_eq!(graph.num_classes(), classes, "k={k} n={n}");
        }
    }

    #[test]
    fn every_class_with_an_empty_neighbor_has_an_outgoing_edge() {
        let graph = configuration_graph(8, 4);
        for (i, node) in graph.nodes.iter().enumerate() {
            // With k < n there is always a robot adjacent to an empty node.
            assert!(
                !graph.successors(i).is_empty(),
                "class {} ({}) has no outgoing move",
                i,
                node.canonical
            );
        }
    }

    #[test]
    fn edges_connect_existing_classes() {
        let graph = configuration_graph(9, 4);
        for (f, t) in &graph.edges {
            assert!(*f < graph.nodes.len() && *t < graph.nodes.len());
        }
    }

    #[test]
    fn rigid_counts_match_direct_enumeration() {
        for (n, k) in [(8usize, 4usize), (9, 5), (10, 4)] {
            let graph = configuration_graph(n, k);
            let direct = rr_ring::enumerate::count_rigid_configurations(n, k);
            assert_eq!(graph.num_rigid(), direct, "n={n} k={k}");
        }
    }

    #[test]
    fn class_of_locates_members() {
        let graph = configuration_graph(8, 4);
        let member = Configuration::from_gaps_at_origin(&[1, 1, 0, 2]);
        let idx = graph.class_of(&member).expect("class exists");
        assert_eq!(graph.nodes[idx].canonical, member.canonical_key());
    }

    #[test]
    fn theorem5_cases_have_few_rigid_classes() {
        // Part of why the small cases fail: almost all configurations are
        // symmetric or periodic.  (4,7) has a single rigid class and (4,8) has
        // exactly two (Cs and C*, as used in the proof of Theorem 1).
        let graph = configuration_graph(7, 4);
        assert_eq!(graph.num_rigid(), 1);
        let graph = configuration_graph(8, 4);
        assert_eq!(graph.num_rigid(), 2);
    }
}
