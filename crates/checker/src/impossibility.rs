//! Structural impossibility predicates and adversarial demonstrations
//! (Section 4.2 of the paper).
//!
//! The lemma-level predicates are used by the characterization and by the
//! tests; the demonstration functions replay the adversarial schedules of the
//! proofs against concrete baseline protocols and verify that they indeed
//! fail, which is the executable counterpart of the proof narratives.

use rr_corda::scheduler::RoundRobinScheduler;
use rr_corda::{Engine, Scheduler};
use rr_core::baselines::TwoRobotSlide;
use rr_ring::{symmetry, Configuration, Ring};
use rr_search::Contamination;

pub use rr_core::feasibility::{searching_feasibility, Feasibility, ImpossibilityReason};

/// Lemma 7: an even number of robots in a symmetric configuration on an
/// odd-size ring can never perpetually search the ring (the node on the axis
/// can never be occupied without a collision).
#[must_use]
pub fn lemma7_applies(config: &Configuration) -> bool {
    let n = config.n();
    let k = config.num_robots();
    n % 2 == 1 && k.is_multiple_of(2) && symmetry::is_symmetric(config)
}

/// Lemma 8: a configuration in which all `k < n` robots occupy consecutive
/// nodes cannot lead to perpetual searching.
#[must_use]
pub fn lemma8_applies(config: &Configuration) -> bool {
    let k = config.num_robots();
    if k >= config.n() {
        return false;
    }
    config.occupied_blocks().len() == 1 && config.is_exclusive()
}

/// The structural reason why `(n, k)` is impossible for exclusive perpetual
/// graph searching, if the paper proves one.
#[must_use]
pub fn structural_reason(n: usize, k: usize) -> Option<ImpossibilityReason> {
    match searching_feasibility(n, k) {
        Feasibility::Impossible(reason) => Some(reason),
        _ => None,
    }
}

/// Demonstrates the diametral obstruction of Theorem 2: under the alternating
/// (round-robin) scheduler used in the proof, the two-robot baseline stalls in
/// the diametral zone and the ring never becomes entirely clear.
///
/// Returns the number of rounds simulated without ever clearing the ring.
#[must_use]
pub fn demonstrate_two_robot_failure(n: usize, rounds: u64) -> u64 {
    assert!(n >= 4);
    let ring = Ring::new(n);
    let initial = Configuration::new_exclusive(ring, &[0, 1]).expect("valid");
    let mut engine = Engine::with_default_options(TwoRobotSlide, initial.clone())
        .expect("valid initial configuration");
    // Contamination implements Monitor, so it observes the run directly.
    let mut contamination = Contamination::initial(&initial);
    let mut scheduler = RoundRobinScheduler::new();
    let mut survived = 0;
    for _ in 0..rounds {
        let step = scheduler.next(&engine.scheduler_view());
        if engine.step(&step, &mut contamination).is_err() {
            return survived; // a collision also demonstrates failure
        }
        if contamination.all_clear() {
            return survived;
        }
        survived += 1;
    }
    survived
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, occupied: &[usize]) -> Configuration {
        Configuration::new_exclusive(Ring::new(n), occupied).unwrap()
    }

    #[test]
    fn lemma7_detects_even_symmetric_on_odd_rings() {
        // 4 robots symmetric on a 9-ring.
        let c = cfg(9, &[0, 1, 3, 4]);
        assert!(symmetry::is_symmetric(&c));
        assert!(lemma7_applies(&c));
        // Odd team: lemma does not apply.
        let c = cfg(9, &[0, 1, 2]);
        assert!(!lemma7_applies(&c));
        // Even ring: lemma does not apply.
        let c = cfg(8, &[0, 1, 3, 4]);
        assert!(!lemma7_applies(&c));
        // Asymmetric configuration: lemma does not apply.
        let c = cfg(9, &[0, 1, 2, 4]);
        assert!(!symmetry::is_symmetric(&c));
        assert!(!lemma7_applies(&c));
    }

    #[test]
    fn lemma8_detects_consecutive_blocks() {
        assert!(lemma8_applies(&cfg(8, &[2, 3, 4])));
        assert!(lemma8_applies(&cfg(8, &[7, 0, 1])));
        assert!(!lemma8_applies(&cfg(8, &[0, 1, 3])));
        // k = n is outside the lemma's scope.
        assert!(!lemma8_applies(&cfg(4, &[0, 1, 2, 3])));
    }

    #[test]
    fn structural_reasons_cover_the_small_cases() {
        assert_eq!(
            structural_reason(7, 4),
            Some(ImpossibilityReason::SmallRing)
        );
        assert_eq!(
            structural_reason(12, 2),
            Some(ImpossibilityReason::TwoRobots)
        );
        assert_eq!(
            structural_reason(12, 10),
            Some(ImpossibilityReason::NMinusTwoRobots)
        );
        assert_eq!(
            structural_reason(12, 11),
            Some(ImpossibilityReason::NMinusOneRobots)
        );
        assert_eq!(structural_reason(12, 5), None);
        assert_eq!(structural_reason(10, 4), None); // open, not impossible
    }

    #[test]
    fn two_robots_never_clear_the_ring_under_the_alternating_adversary() {
        for n in [6usize, 8, 9, 10] {
            let rounds = 200;
            assert_eq!(demonstrate_two_robot_failure(n, rounds), rounds, "n={n}");
        }
    }
}
