//! The visited map: dedup keys → node ids, in RAM or out of core.
//!
//! The explorer's visited map is probed **lock-free from every expansion
//! worker** (read-only during expansion) and mutated only at sequential
//! merge points.  PR 9 moved state payloads and edges out of core, but the
//! visited map stayed fully resident — the largest structure of a big run,
//! and the true RAM ceiling past ~10⁸ states.  This module gives it the
//! same treatment, behind one type:
//!
//! * **mem** ([`StoreKind::Mem`]): 64 hash-map shards, exactly the
//!   structure the checker always had;
//! * **spill** ([`StoreKind::Spill`]): the same memtable shards, but when
//!   the `--mem-budget` accountant says the memtables outgrew their budget,
//!   the largest shard *seals*: its entries are sorted and appended to a
//!   process-private temp file as one immutable **run** of fixed 64-byte
//!   records, with a per-run Bloom filter (~[`BLOOM_BITS_PER_KEY`] bits per
//!   key) and a sparse footer (every [`FOOTER_STRIDE`]-th key) kept
//!   resident.  A probe that misses the memtable consults each run's Bloom
//!   filter, binary-searches the footer to one [`FOOTER_STRIDE`]-record
//!   block, and reads that block with a single positional `read_at` — no
//!   seek, no lock, safe from concurrent workers.  When a shard accumulates
//!   [`MAX_RUNS_PER_SHARD`] runs they are **compacted** into one (superseded
//!   run bytes stay in the temp file as garbage; the file is unlinked when
//!   the map is dropped, which the explorer does before its liveness pass).
//!
//! Correctness does not depend on *when* shards seal: a lookup consults the
//! memtable and every run, and a key lives in exactly one of them (an entry
//! is inserted once and never updated).  The seal schedule itself is
//! deterministic — it is driven by shard entry counts at sequential merge
//! points, which are a pure function of the explored graph — so
//! `visited_spilled_bytes` is reproducible for a fixed (backend, budget)
//! pair, independent of worker count.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hasher;

use rr_corda::packed::SigHashBuilder;
use rr_corda::StateSig;

use crate::store::{SpillFile, StoreKind};

/// Inline, allocation-free visited-map key: a fixed state signature plus the
/// 64-bit auxiliary-state key and the per-path fault word (crashed robots +
/// corruption budget used — two states reached with different fault history
/// are different model-checking states even on identical engine state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Key {
    pub(crate) sig: StateSig,
    pub(crate) aug: u64,
    pub(crate) fault: u32,
}

impl Key {
    /// One multiply-xor pass over the key words; feeds the shard selector,
    /// the per-shard hash map (via the single `write_u64` the manual
    /// [`Hash`] impl emits) and the Bloom probe positions.
    pub(crate) fn mix(&self) -> u64 {
        let mut h = self.aug ^ u64::from(self.fault).rotate_left(17);
        for &word in &self.sig {
            // Trailing signature words are zero for every key of a run
            // (fixed n and k), so skipping them is consistent — and halves
            // the mixing work for small instances.
            if word != 0 {
                h = (h ^ word).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 29;
            }
        }
        h.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl std::hash::Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.mix());
    }
}

/// Total order the sorted runs use: signature words, then the auxiliary
/// key, then the fault word.  Any total order works (it only has to agree
/// between sealing and probing); this one is the natural lexicographic one.
fn cmp_keys(a: &Key, b: &Key) -> Ordering {
    a.sig
        .cmp(&b.sig)
        .then(a.aug.cmp(&b.aug))
        .then(a.fault.cmp(&b.fault))
}

/// Shards of the visited map (and of the parallel merge).
pub(crate) const VISITED_SHARDS: usize = 64;

/// The shard a key lives in: the top 6 bits of its mixed hash.
pub(crate) fn shard_of(key: &Key) -> usize {
    (key.mix() >> 58) as usize
}

/// Logical bytes of one visited entry (key + node id) — the
/// backend-independent measure by which the visited map joins the
/// explorer's `peak_resident_bytes` accounting.  Like the store's
/// `payload_bytes`, it counts what is logically live, not any backend's
/// overhead, so the reported peak is identical across backends and budgets.
pub(crate) const VISITED_ENTRY_BYTES: u64 =
    (std::mem::size_of::<Key>() + std::mem::size_of::<u32>()) as u64;

/// One on-disk record: 48 signature bytes + 8 aug + 4 fault + 4 node id.
const RECORD_BYTES: usize = 64;

/// Records per footer entry: a probe narrowed to one footer block reads
/// `FOOTER_STRIDE * RECORD_BYTES` = 4 KiB with a single `read_at`.
const FOOTER_STRIDE: usize = 64;

/// Bloom filter size per sealed key (rounded up to a power-of-two bit
/// count).  At 10 bits/key with 7 probes the false-positive rate is ≈1%, so
/// ~99% of absent-key probes cost no I/O.
const BLOOM_BITS_PER_KEY: usize = 10;

/// Bloom probes per key (the optimum for 10 bits/key is ln2 · 10 ≈ 7).
const BLOOM_HASHES: u64 = 7;

/// Runs a shard may accumulate before they are compacted into one.
const MAX_RUNS_PER_SHARD: usize = 6;

fn encode_record(out: &mut Vec<u8>, key: &Key, id: u32) {
    for &word in &key.sig {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&key.aug.to_le_bytes());
    out.extend_from_slice(&key.fault.to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
}

fn decode_record(bytes: &[u8]) -> (Key, u32) {
    let word =
        |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8-byte field"));
    let mut sig = StateSig::default();
    for (i, w) in sig.iter_mut().enumerate() {
        *w = word(i);
    }
    let aug = word(sig.len());
    let tail = &bytes[8 * sig.len() + 8..];
    let fault = u32::from_le_bytes(tail[0..4].try_into().expect("4-byte field"));
    let id = u32::from_le_bytes(tail[4..8].try_into().expect("4-byte field"));
    (Key { sig, aug, fault }, id)
}

/// A per-run Bloom filter over the mixed key hashes, kept resident.
struct Bloom {
    words: Vec<u64>,
    bit_mask: u64,
}

impl Bloom {
    fn build(mixes: impl Iterator<Item = u64>, count: usize) -> Self {
        let bits = (count * BLOOM_BITS_PER_KEY).next_power_of_two().max(64) as u64;
        let mut bloom = Bloom {
            words: vec![0u64; (bits / 64) as usize],
            bit_mask: bits - 1,
        };
        for mix in mixes {
            let (h1, h2) = Bloom::probes(mix);
            for i in 0..BLOOM_HASHES {
                let bit = h1.wrapping_add(i.wrapping_mul(h2)) & bloom.bit_mask;
                bloom.words[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        bloom
    }

    /// Double-hashing probe positions derived from the one mixed hash the
    /// map already computes; `h2` is forced odd so the probe sequence walks
    /// the whole (power-of-two) bit table.
    fn probes(mix: u64) -> (u64, u64) {
        (mix, mix.rotate_left(21) | 1)
    }

    fn contains(&self, mix: u64) -> bool {
        let (h1, h2) = Bloom::probes(mix);
        (0..BLOOM_HASHES).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.bit_mask;
            self.words[(bit / 64) as usize] & 1 << (bit % 64) != 0
        })
    }

    #[cfg(test)]
    fn resident_bytes(&self) -> u64 {
        8 * self.words.len() as u64
    }
}

/// One immutable sorted run on disk plus its resident probe accelerators.
struct Run {
    /// Byte offset of the first record in the run file.
    offset: u64,
    /// Number of records.
    count: u32,
    bloom: Bloom,
    /// Key of every [`FOOTER_STRIDE`]-th record (the first key of each
    /// footer block), in run order.
    footers: Vec<Key>,
}

impl Run {
    /// Sorts, filters and writes `entries` as one run.
    fn seal(file: &mut SpillFile, mut entries: Vec<(Key, u32)>) -> Run {
        entries.sort_unstable_by(|a, b| cmp_keys(&a.0, &b.0));
        debug_assert!(entries
            .windows(2)
            .all(|w| cmp_keys(&w[0].0, &w[1].0) == Ordering::Less));
        let bloom = Bloom::build(entries.iter().map(|(k, _)| k.mix()), entries.len());
        let footers = entries
            .iter()
            .step_by(FOOTER_STRIDE)
            .map(|(k, _)| *k)
            .collect();
        let mut bytes = Vec::with_capacity(entries.len() * RECORD_BYTES);
        for (key, id) in &entries {
            encode_record(&mut bytes, key, *id);
        }
        let offset = file.append(&bytes);
        Run {
            offset,
            count: entries.len() as u32,
            bloom,
            footers,
        }
    }

    /// Probes the run for `key`: Bloom first (resident), then a footer
    /// binary search to one block, then a single positional block read.
    fn probe(&self, file: &SpillFile, key: &Key, mix: u64) -> Option<u32> {
        if !self.bloom.contains(mix) {
            return None;
        }
        let block = match self.footers.binary_search_by(|f| cmp_keys(f, key)) {
            Ok(i) => i,
            Err(0) => return None, // below the run's first key
            Err(i) => i - 1,
        };
        let start = block * FOOTER_STRIDE;
        let len = FOOTER_STRIDE.min(self.count as usize - start);
        let mut buf = vec![0u8; len * RECORD_BYTES];
        file.read_exact_at(self.offset + (start * RECORD_BYTES) as u64, &mut buf);
        let mut lo = 0usize;
        let mut hi = len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (candidate, id) = decode_record(&buf[mid * RECORD_BYTES..(mid + 1) * RECORD_BYTES]);
            match cmp_keys(&candidate, key) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Some(id),
            }
        }
        None
    }

    /// Reads every record of the run back, in key order.
    fn load(&self, file: &SpillFile) -> Vec<(Key, u32)> {
        let bytes = file.read_at(self.offset, self.count as usize * RECORD_BYTES);
        bytes
            .chunks_exact(RECORD_BYTES)
            .map(decode_record)
            .collect()
    }

    #[cfg(test)]
    fn resident_bytes(&self) -> u64 {
        self.bloom.resident_bytes() + (self.footers.len() * std::mem::size_of::<Key>()) as u64
    }
}

/// The disk half of the spill backend: the run file plus per-shard runs.
struct Disk {
    file: SpillFile,
    runs: Vec<Vec<Run>>,
    /// Memtable budget in logical entry bytes; crossing it seals shards.
    budget: u64,
}

/// One memtable shard.
pub(crate) type Memtable = HashMap<Key, u32, SigHashBuilder>;

/// The visited map, sharded by the top bits of the key hash.  Shards stay
/// individually small (cheaper growth, better locality), and the expansion
/// phase probes the whole structure **read-only and lock-free** from every
/// worker — memtable lookups and run probes both take `&self`; only the
/// sequential merge points mutate (commit, seal, compact).
pub(crate) struct Visited {
    shards: Vec<Memtable>,
    disk: Option<Disk>,
}

impl Visited {
    pub(crate) fn new(kind: StoreKind, mem_budget: u64) -> Self {
        Visited {
            shards: (0..VISITED_SHARDS).map(|_| Memtable::default()).collect(),
            disk: match kind {
                StoreKind::Mem => None,
                StoreKind::Spill => Some(Disk {
                    file: SpillFile::create("visited"),
                    runs: (0..VISITED_SHARDS).map(|_| Vec::new()).collect(),
                    budget: mem_budget,
                }),
            },
        }
    }

    /// Read-only probe, safe to run concurrently from expansion workers.
    pub(crate) fn get(&self, key: &Key) -> Option<u32> {
        let mix = key.mix();
        let shard = (mix >> 58) as usize;
        if let Some(&id) = self.shards[shard].get(key) {
            return Some(id);
        }
        let disk = self.disk.as_ref()?;
        disk.runs[shard]
            .iter()
            .find_map(|run| run.probe(&disk.file, key, mix))
    }

    /// Inserts one entry directly (the root); the batch merge commits
    /// through [`shard_maps_mut`](Visited::shard_maps_mut) instead.
    pub(crate) fn insert(&mut self, key: Key, id: u32) {
        self.shards[shard_of(&key)].insert(key, id);
    }

    /// The memtable shards, for the merge's parallel per-shard commit:
    /// shard `s` of this slice corresponds to [`shard_of`]` == s`.
    pub(crate) fn shard_maps_mut(&mut self) -> &mut [Memtable] {
        &mut self.shards
    }

    /// Entries currently resident in the memtables.
    #[cfg(test)]
    pub(crate) fn resident_entries(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Bytes appended to the run file so far (runs + compaction rewrites);
    /// `0` for the mem backend.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.disk.as_ref().map_or(0, |d| d.file.written())
    }

    /// Resident bytes of the probe accelerators (Bloom filters + footers);
    /// `0` for the mem backend.  Small next to the memtable budget — ≈2.3
    /// bytes per sealed key against 68 logical bytes per resident entry —
    /// and outside the seal accountant by design.
    #[cfg(test)]
    pub(crate) fn filter_bytes(&self) -> u64 {
        self.disk.as_ref().map_or(0, |d| {
            d.runs.iter().flatten().map(Run::resident_bytes).sum()
        })
    }

    #[cfg(test)]
    fn run_count(&self) -> usize {
        self.disk
            .as_ref()
            .map_or(0, |d| d.runs.iter().map(Vec::len).sum())
    }

    /// The `--mem-budget` accountant, called at sequential merge points:
    /// while the memtables hold more logical entry bytes than the budget,
    /// seal the largest shard (ties: lowest index) to a sorted run.  The
    /// schedule depends only on deterministic entry counts — never on worker
    /// timing — and sealing never changes a lookup's answer, only where it
    /// is served from.
    pub(crate) fn maybe_seal(&mut self) {
        let Some(disk) = &mut self.disk else {
            return;
        };
        loop {
            let resident: usize = self.shards.iter().map(HashMap::len).sum();
            if resident as u64 * VISITED_ENTRY_BYTES <= disk.budget {
                return;
            }
            let (shard, len) = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, m)| (i, m.len()))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("shards are non-empty");
            if len == 0 {
                return; // everything already sealed; budget is simply tiny
            }
            let entries: Vec<(Key, u32)> = self.shards[shard].drain().collect();
            disk.runs[shard].push(Run::seal(&mut disk.file, entries));
            if disk.runs[shard].len() >= MAX_RUNS_PER_SHARD {
                let merged: Vec<(Key, u32)> = {
                    let mut all: Vec<(Key, u32)> = disk.runs[shard]
                        .iter()
                        .flat_map(|run| run.load(&disk.file))
                        .collect();
                    all.sort_unstable_by(|a, b| cmp_keys(&a.0, &b.0));
                    all
                };
                disk.runs[shard] = vec![Run::seal(&mut disk.file, merged)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> Key {
        // A xorshift-scrambled but deterministic key; distinct seeds give
        // distinct signatures.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut sig = StateSig::default();
        for w in sig.iter_mut().take(3) {
            *w = step() | 1; // non-zero so mix() hashes every word
        }
        Key {
            sig,
            aug: seed,
            fault: (seed % 5) as u32,
        }
    }

    #[test]
    fn record_round_trips() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let k = key(seed);
            let mut bytes = Vec::new();
            encode_record(&mut bytes, &k, seed as u32);
            assert_eq!(bytes.len(), RECORD_BYTES);
            assert_eq!(decode_record(&bytes), (k, seed as u32));
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mixes: Vec<u64> = (0..500u64).map(|s| key(s).mix()).collect();
        let bloom = Bloom::build(mixes.iter().copied(), mixes.len());
        for mix in &mixes {
            assert!(bloom.contains(*mix));
        }
        // And a sane false-positive rate on fresh keys (≈1% expected; allow
        // a generous margin for the fixed pseudo-random stream).
        let fresh = (10_000..20_000u64).filter(|&s| bloom.contains(key(s).mix()));
        assert!(
            fresh.count() < 500,
            "Bloom false-positive rate off the rails"
        );
    }

    #[test]
    fn spill_backend_agrees_with_mem_under_constant_sealing() {
        // ~25 entries of budget: every batch of inserts forces seals, runs
        // accumulate and compact, and every lookup (present and absent) must
        // keep agreeing with the mem backend.
        let mut mem = Visited::new(StoreKind::Mem, u64::MAX);
        let mut spill = Visited::new(StoreKind::Spill, 25 * VISITED_ENTRY_BYTES);
        for batch in 0..40u64 {
            for i in 0..50u64 {
                let seed = batch * 50 + i;
                let k = key(seed);
                mem.insert(k, seed as u32);
                spill.insert(k, seed as u32);
            }
            spill.maybe_seal();
            mem.maybe_seal(); // no-op on the mem backend
            for probe_seed in 0..(batch + 1) * 50 + 25 {
                let k = key(probe_seed);
                assert_eq!(
                    spill.get(&k),
                    mem.get(&k),
                    "seed {probe_seed} after batch {batch}"
                );
            }
        }
        assert!(spill.spilled_bytes() > 0, "budget never tripped");
        assert!(
            spill.run_count() < VISITED_SHARDS * MAX_RUNS_PER_SHARD,
            "compaction never ran"
        );
        assert!(spill.resident_entries() <= 25 + 50, "seal accountant idle");
        assert_eq!(mem.spilled_bytes(), 0);
        assert!(spill.filter_bytes() > 0);
    }

    #[test]
    fn seal_schedule_is_a_function_of_the_insert_sequence() {
        // Two maps fed the same entries in the same batches spill the same
        // byte count — the determinism `visited_spilled_bytes` relies on.
        let run = || {
            let mut v = Visited::new(StoreKind::Spill, 40 * VISITED_ENTRY_BYTES);
            for batch in 0..20u64 {
                for i in 0..37u64 {
                    let seed = batch * 37 + i;
                    v.insert(key(seed), seed as u32);
                }
                v.maybe_seal();
            }
            v.spilled_bytes()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn footer_blocks_cover_runs_larger_than_one_block() {
        // One shard, one big sealed run spanning many footer blocks: every
        // key probes back, absent keys do not.
        let mut v = Visited::new(StoreKind::Spill, 0);
        for seed in 0..(FOOTER_STRIDE as u64 * 5 + 7) {
            v.insert(key(seed), seed as u32);
        }
        v.maybe_seal();
        assert_eq!(v.resident_entries(), 0, "zero budget seals everything");
        for seed in 0..(FOOTER_STRIDE as u64 * 5 + 7) {
            assert_eq!(v.get(&key(seed)), Some(seed as u32), "seed {seed}");
        }
        for seed in 100_000..100_500u64 {
            assert_eq!(v.get(&key(seed)), None, "absent seed {seed}");
        }
    }
}
