//! The feasibility characterization table (experiment E1): the paper's
//! headline "almost full characterization of exclusive perpetual graph
//! searching in rings", regenerated cell by cell and optionally
//! cross-validated by actually running the algorithms.

use rayon::prelude::*;
use rr_core::feasibility::{searching_feasibility, Feasibility};
use serde::{Deserialize, Serialize};

use crate::verify::verify_searching;

/// Status of one `(n, k)` cell in the regenerated table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// The paper claims solvability and (when validation is enabled) the
    /// simulation confirmed it.
    Solvable {
        /// Name of the algorithm that solves the cell.
        algorithm: String,
        /// Whether the run-and-verify harness confirmed the claim (None when
        /// validation was skipped).
        validated: Option<bool>,
    },
    /// The paper proves the cell impossible.
    Impossible {
        /// The impossibility reason.
        reason: String,
    },
    /// Left open by the paper.
    Open,
    /// Parameters outside the model.
    OutOfModel,
}

/// One cell of the characterization table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationCell {
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// The cell status.
    pub status: CellStatus,
}

impl CharacterizationCell {
    /// A one-character code used when printing the table
    /// (`R` Ring Clearing, `N` NminusThree, `x` impossible, `?` open,
    /// `.` out of model, `!` claimed but not validated).
    #[must_use]
    pub fn code(&self) -> char {
        match &self.status {
            CellStatus::Solvable {
                algorithm,
                validated,
            } => match validated {
                Some(false) => '!',
                _ => {
                    if algorithm.contains("minus") {
                        'N'
                    } else {
                        'R'
                    }
                }
            },
            CellStatus::Impossible { .. } => 'x',
            CellStatus::Open => '?',
            CellStatus::OutOfModel => '.',
        }
    }
}

/// Builds the characterization table for `n` in `n_range` and all
/// `1 <= k <= n`.  When `validate` is true every solvable cell is
/// cross-checked by running the dispatched algorithm (three schedulers, see
/// [`verify_searching`]); this is the expensive part and is parallelized with
/// rayon.
#[must_use]
pub fn build_characterization(
    n_range: std::ops::RangeInclusive<usize>,
    validate: bool,
    seed: u64,
) -> Vec<CharacterizationCell> {
    let cells: Vec<(usize, usize)> = n_range.flat_map(|n| (1..=n).map(move |k| (n, k))).collect();
    cells
        .into_par_iter()
        .map(|(n, k)| {
            let status = match searching_feasibility(n, k) {
                Feasibility::Solvable(algorithm) => {
                    let algorithm = format!("{algorithm:?}");
                    let validated = if validate {
                        Some(verify_searching(n, k, 1, seed).verified)
                    } else {
                        None
                    };
                    CellStatus::Solvable {
                        algorithm,
                        validated,
                    }
                }
                Feasibility::Impossible(reason) => CellStatus::Impossible {
                    reason: reason.to_string(),
                },
                Feasibility::Open => CellStatus::Open,
                Feasibility::OutOfModel => CellStatus::OutOfModel,
            };
            CharacterizationCell { n, k, status }
        })
        .collect()
}

/// Renders the table as a text grid (rows = n, columns = k), the same shape as
/// the paper's summary of its contribution.
#[must_use]
pub fn render_table(cells: &[CharacterizationCell]) -> String {
    let max_n = cells.iter().map(|c| c.n).max().unwrap_or(0);
    let min_n = cells.iter().map(|c| c.n).min().unwrap_or(0);
    let mut out = String::new();
    out.push_str("      k:");
    for k in 1..=max_n {
        out.push_str(&format!("{k:>3}"));
    }
    out.push('\n');
    for n in min_n..=max_n {
        out.push_str(&format!("n = {n:>3} "));
        for k in 1..=max_n {
            let cell = cells.iter().find(|c| c.n == n && c.k == k);
            match cell {
                Some(c) => out.push_str(&format!("  {}", c.code())),
                None => out.push_str("   "),
            }
        }
        out.push('\n');
    }
    out.push_str("\nlegend: R = Ring Clearing, N = NminusThree, x = impossible, ? = open, . = out of model, ! = claim failed validation\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_consistency() {
        let cells = build_characterization(3..=14, false, 0);
        assert_eq!(cells.len(), (3..=14).sum::<usize>());
        for cell in &cells {
            match &cell.status {
                CellStatus::Solvable { .. } => {
                    assert!(cell.n >= 10 && cell.k >= 5 && cell.k <= cell.n - 3);
                }
                CellStatus::Impossible { reason } => assert!(!reason.is_empty()),
                CellStatus::Open => {
                    assert!(cell.k == 4 || (cell.k == 5 && cell.n == 10), "{cell:?}");
                }
                CellStatus::OutOfModel => assert!(cell.k > cell.n),
            }
        }
    }

    #[test]
    fn open_cells_are_exactly_the_paper_ones() {
        let cells = build_characterization(10..=20, false, 0);
        let open: Vec<(usize, usize)> = cells
            .iter()
            .filter(|c| c.status == CellStatus::Open)
            .map(|c| (c.n, c.k))
            .collect();
        for (n, k) in &open {
            assert!(*k == 4 || (*k == 5 && *n == 10));
        }
        assert!(open.contains(&(10, 5)));
        assert!(open.contains(&(15, 4)));
    }

    #[test]
    fn validated_cells_pass_for_a_small_band() {
        let cells = build_characterization(12..=12, true, 11);
        for cell in cells {
            if let CellStatus::Solvable { validated, .. } = &cell.status {
                assert_eq!(*validated, Some(true), "cell {cell:?}");
            }
        }
    }

    #[test]
    fn rendering_contains_every_row() {
        let cells = build_characterization(3..=12, false, 0);
        let table = render_table(&cells);
        for n in 3..=12 {
            assert!(table.contains(&format!("n = {n:>3}")));
        }
        assert!(table.contains("legend"));
    }
}
