//! # rr-checker — exhaustive verification and impossibility checking
//!
//! This crate regenerates the paper's "evaluation": its configuration figures,
//! its impossibility results and its feasibility characterization.
//!
//! * [`enumeration`] — configuration graphs for the small cases of Theorem 5
//!   (Figures 4–9 of the paper): one node per configuration class, one edge
//!   per possible single-robot move;
//! * [`impossibility`] — the structural impossibility predicates (Lemmas 7
//!   and 8) and machine-checked demonstrations of the adversarial arguments;
//! * [`game`] — an exhaustive search over *all* oblivious min-CORDA protocols
//!   for small `(k, n)`, showing that none of them perpetually clears the ring
//!   against a fair semi-synchronous adversary (a machine-checked form of the
//!   impossibility theorems for the smallest parameters);
//! * [`characterization`] — the full feasibility table (experiment E1),
//!   optionally cross-validated by actually running the algorithms;
//! * [`verify`] — run-and-verify harnesses used by the characterization, the
//!   integration tests and the experiment binaries;
//! * [`explore`] — the exhaustive adversarial model checker: enumerates
//!   *every* SSYNC activation subset / ASYNC Look–Move interleaving of a
//!   protocol on a small ring, deduplicates states up to ring symmetry, and
//!   checks pluggable safety/liveness invariants, upgrading "tested on 64
//!   seeds" to "proved for all schedules" on small instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterization;
pub mod enumeration;
pub mod explore;
pub mod game;
pub mod impossibility;
pub mod store;
pub mod verify;
mod visited;

pub use characterization::{build_characterization, CellStatus, CharacterizationCell};
pub use enumeration::{configuration_graph, ConfigurationGraph};
pub use explore::{
    check_protocol, check_protocol_quotient, check_protocol_quotient_with_stats,
    check_protocol_with_stats, check_safety_quotient, replay_counterexample, CheckOutcome,
    Counterexample, ExploreOptions, ExploreReport, FaultBudget, FaultDirective, MutatedProtocol,
    ReplayReport, ViolationKind,
};
pub use game::{exhaustive_impossibility, GameOutcome};
pub use store::{StoreKind, StoreStats};
pub use verify::{verify_gathering, verify_searching, VerificationReport};
