//! Exhaustive protocol-synthesis search for the smallest impossible cases.
//!
//! In the min-CORDA model a deterministic algorithm *is* a function from the
//! robot's local snapshot (its unordered pair of directional views) to a
//! decision.  For small `(k, n)` the number of such functions is finite, so
//! impossibility can be machine-checked: enumerate every protocol and show
//! that a fair semi-synchronous adversary defeats each of them — either by
//! forcing two robots onto the same node (an exclusivity collision) or by
//! scheduling the robots fairly while the ring never becomes entirely clear.
//!
//! A protocol defeated by the semi-synchronous adversary is also defeated by
//! the fully asynchronous CORDA adversary (every SSYNC schedule is a valid
//! ASYNC schedule).  The search therefore gives machine-checked counterparts
//! of the impossibility results wherever **all** protocols are defeated —
//! which is the case for `k ∈ {1, 2}` (Theorem 2).  For `k = 3` a handful of
//! protocols survive the semi-synchronous adversary: ruling those out needs
//! the pending-move (asynchronous) schedules used in the proof of Theorem 3,
//! which are outside this exhaustive search; the search still reports and
//! counts the survivors so the gap is explicit (see `exp_impossibility`).
//! The fairness witness used here is a reachable cycle of non-cleared states
//! containing at least one round that activates every robot.

use std::collections::{HashMap, VecDeque};

use rr_ring::enumerate::enumerate_configurations;
use rr_ring::{Ring, View};
use serde::{Deserialize, Serialize};

/// Decision table entry for one view class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalDecision {
    /// Stay idle.
    Idle,
    /// Move in the direction whose view is lexicographically smaller; when the
    /// two views are equal this means "move" and the adversary picks the
    /// direction.
    TowardSmallerView,
    /// Move in the direction whose view is lexicographically larger (only
    /// meaningful when the two views differ).
    TowardLargerView,
}

/// Outcome of playing one protocol from one initial configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GameOutcome {
    /// The adversary forces two robots onto the same node.
    CollisionForced,
    /// The adversary has a fair schedule along which the ring is never
    /// entirely clear.
    FairAvoidanceForced,
    /// The search could not defeat the protocol from this configuration
    /// (within the model used here).
    NotDisproved,
}

/// Result of the exhaustive search over all protocols for a pair `(n, k)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpossibilityResult {
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Number of view classes (the protocol domain size).
    pub view_classes: usize,
    /// Number of protocols enumerated.
    pub protocols_checked: u64,
    /// Number of protocols the adversary could *not* defeat from every initial
    /// configuration (0 confirms the impossibility result).
    pub surviving_protocols: u64,
}

impl ImpossibilityResult {
    /// Whether every protocol was defeated from every initial configuration.
    #[must_use]
    pub fn impossibility_confirmed(&self) -> bool {
        self.surviving_protocols == 0
    }
}

fn occupied_nodes(mask: u32, n: usize) -> Vec<usize> {
    (0..n).filter(|&v| mask & (1 << v) != 0).collect()
}

fn views_at(mask: u32, n: usize, v: usize) -> (View, View) {
    let ring = Ring::new(n);
    let mut out = [Vec::new(), Vec::new()];
    for (slot, step) in [(0usize, 1isize), (1usize, -1isize)] {
        let mut cur = v;
        let k = (mask.count_ones()) as usize;
        for _ in 0..k {
            let mut gap = 0usize;
            loop {
                cur = if step == 1 {
                    ring.neighbor(cur, rr_ring::Direction::Cw)
                } else {
                    ring.neighbor(cur, rr_ring::Direction::Ccw)
                };
                if mask & (1 << cur) != 0 {
                    break;
                }
                gap += 1;
            }
            out[slot].push(gap);
        }
    }
    (View::new(out[0].clone()), View::new(out[1].clone()))
}

fn class_key(mask: u32, n: usize, v: usize) -> (View, View) {
    let (a, b) = views_at(mask, n, v);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// All view classes occurring in any exclusive configuration of `k` robots on
/// an `n`-node ring.
#[must_use]
pub fn view_classes(n: usize, k: usize) -> Vec<(View, View)> {
    let mut classes = Vec::new();
    for config in enumerate_configurations(n, k) {
        let mask = config
            .occupied_nodes()
            .into_iter()
            .fold(0u32, |m, v| m | (1 << v));
        for v in occupied_nodes(mask, n) {
            let key = class_key(mask, n, v);
            if !classes.contains(&key) {
                classes.push(key);
            }
        }
    }
    classes.sort();
    classes
}

/// A concrete protocol: one decision per view class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolTable {
    classes: Vec<(View, View)>,
    decisions: Vec<LocalDecision>,
}

impl ProtocolTable {
    /// Builds a protocol table.
    #[must_use]
    pub fn new(classes: Vec<(View, View)>, decisions: Vec<LocalDecision>) -> Self {
        assert_eq!(classes.len(), decisions.len());
        ProtocolTable { classes, decisions }
    }

    fn decision_for(&self, key: &(View, View)) -> LocalDecision {
        match self.classes.binary_search(key) {
            Ok(i) => self.decisions[i],
            Err(_) => LocalDecision::Idle,
        }
    }
}

/// The number of protocols for the given classes (2 options for locally
/// symmetric classes, 3 otherwise).
#[must_use]
pub fn protocol_count(classes: &[(View, View)]) -> u64 {
    classes
        .iter()
        .map(|(a, b)| if a == b { 2u64 } else { 3u64 })
        .product()
}

fn decode_protocol(classes: &[(View, View)], mut index: u64) -> ProtocolTable {
    let mut decisions = Vec::with_capacity(classes.len());
    for (a, b) in classes {
        let radix = if a == b { 2 } else { 3 };
        let digit = (index % radix) as usize;
        index /= radix;
        let d = match digit {
            0 => LocalDecision::Idle,
            1 => LocalDecision::TowardSmallerView,
            _ => LocalDecision::TowardLargerView,
        };
        decisions.push(d);
    }
    ProtocolTable::new(classes.to_vec(), decisions)
}

/// Game state: which nodes are occupied and which edges are clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    occupied: u32,
    clear: u32,
}

fn guarded_edges(occupied: u32, n: usize) -> u32 {
    let mut clear = 0u32;
    for e in 0..n {
        let u = e;
        let v = (e + 1) % n;
        if occupied & (1 << u) != 0 && occupied & (1 << v) != 0 {
            clear |= 1 << e;
        }
    }
    clear
}

fn recontaminate(occupied: u32, mut clear: u32, n: usize) -> u32 {
    let mut changed = true;
    while changed {
        changed = false;
        for e in 0..n {
            if clear & (1 << e) != 0 {
                continue;
            }
            let endpoints = [e, (e + 1) % n];
            for w in endpoints {
                if occupied & (1 << w) != 0 {
                    continue;
                }
                for other in [(w + n - 1) % n, w] {
                    if other != e && clear & (1 << other) != 0 {
                        clear &= !(1 << other);
                        changed = true;
                    }
                }
            }
        }
    }
    clear
}

/// Explores the game of one protocol from one initial occupied mask.
fn play(protocol: &ProtocolTable, n: usize, initial_occupied: u32) -> GameOutcome {
    let full_clear = (1u32 << n) - 1;
    let k = initial_occupied.count_ones() as usize;
    let initial = State {
        occupied: initial_occupied,
        clear: recontaminate(initial_occupied, guarded_edges(initial_occupied, n), n),
    };
    // Reachable-state graph; edges carry "did this round activate all robots".
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut edges: Vec<Vec<(usize, bool)>> = Vec::new();
    let mut queue = VecDeque::new();
    index.insert(initial, 0);
    states.push(initial);
    edges.push(Vec::new());
    queue.push_back(0usize);

    while let Some(si) = queue.pop_front() {
        let state = states[si];
        let robots = occupied_nodes(state.occupied, n);
        // Adversary choice 1: the activated subset (non-empty).
        for subset in 1u32..(1 << robots.len()) {
            // For every activated robot, its decision and candidate targets.
            let mut move_options: Vec<Vec<Option<usize>>> = Vec::new();
            for (ri, &node) in robots.iter().enumerate() {
                if subset & (1 << ri) == 0 {
                    move_options.push(vec![None]);
                    continue;
                }
                let (va, vb) = views_at(state.occupied, n, node);
                let key = if va <= vb {
                    (va.clone(), vb.clone())
                } else {
                    (vb.clone(), va.clone())
                };
                let decision = protocol.decision_for(&key);
                let cw = (node + 1) % n;
                let ccw = (node + n - 1) % n;
                let targets: Vec<Option<usize>> = match decision {
                    LocalDecision::Idle => vec![None],
                    LocalDecision::TowardSmallerView => {
                        if va == vb {
                            // Adversary resolves the direction.
                            vec![Some(cw), Some(ccw)]
                        } else if va < vb {
                            vec![Some(cw)]
                        } else {
                            vec![Some(ccw)]
                        }
                    }
                    LocalDecision::TowardLargerView => {
                        if va == vb {
                            vec![Some(cw), Some(ccw)]
                        } else if va > vb {
                            vec![Some(cw)]
                        } else {
                            vec![Some(ccw)]
                        }
                    }
                };
                move_options.push(targets);
            }
            // Adversary choice 2: resolve every ambiguous direction.
            let mut assignments: Vec<Vec<Option<usize>>> = vec![Vec::new()];
            for opts in &move_options {
                let mut next_assignments = Vec::with_capacity(assignments.len() * opts.len());
                for partial in &assignments {
                    for &o in opts {
                        let mut extended = partial.clone();
                        extended.push(o);
                        next_assignments.push(extended);
                    }
                }
                assignments = next_assignments;
            }
            for assignment in assignments {
                let mut new_positions = Vec::with_capacity(robots.len());
                let mut traversed = 0u32;
                for (ri, &node) in robots.iter().enumerate() {
                    match assignment[ri] {
                        None => new_positions.push(node),
                        Some(target) => {
                            let e = if (node + 1) % n == target {
                                node
                            } else {
                                target
                            };
                            traversed |= 1 << e;
                            new_positions.push(target);
                        }
                    }
                }
                // Collision detection (exclusivity violation).
                let mut occupied_mask = 0u32;
                let mut collision = false;
                for &p in &new_positions {
                    if occupied_mask & (1 << p) != 0 {
                        collision = true;
                        break;
                    }
                    occupied_mask |= 1 << p;
                }
                if collision {
                    return GameOutcome::CollisionForced;
                }
                let clear = recontaminate(
                    occupied_mask,
                    state.clear | traversed | guarded_edges(occupied_mask, n),
                    n,
                );
                let next = State {
                    occupied: occupied_mask,
                    clear,
                };
                let all_robots_active = subset == (1 << robots.len()) - 1;
                let ni = *index.entry(next).or_insert_with(|| {
                    states.push(next);
                    edges.push(Vec::new());
                    queue.push_back(states.len() - 1);
                    states.len() - 1
                });
                edges[si].push((ni, all_robots_active));
            }
        }
    }

    // Fair-avoidance check: a cycle among non-fully-clear states containing at
    // least one all-robots round.  We look for a non-clear state s that can
    // reach itself through non-clear states using at least one full round.
    let non_clear: Vec<bool> = states.iter().map(|s| s.clear != full_clear).collect();
    // reach_full[s][t]: can we go from s to t through non-clear states, using
    // at least one full-activation edge?  Done with two BFS layers.
    let m = states.len();
    for s in 0..m {
        if !non_clear[s] {
            continue;
        }
        // First: nodes reachable from s through non-clear states, tracking
        // whether a full edge was used (small product construction).
        let mut visited = vec![[false; 2]; m];
        let mut q = VecDeque::new();
        visited[s][0] = true;
        q.push_back((s, 0usize));
        while let Some((u, used_full)) = q.pop_front() {
            for &(v, full) in &edges[u] {
                if !non_clear[v] {
                    continue;
                }
                let nf = usize::from(used_full == 1 || full);
                if !visited[v][nf] {
                    visited[v][nf] = true;
                    q.push_back((v, nf));
                }
            }
        }
        if visited[s][1] {
            return GameOutcome::FairAvoidanceForced;
        }
        let _ = k;
    }
    GameOutcome::NotDisproved
}

/// Plays one protocol from every initial configuration class; the protocol is
/// *defeated* if the adversary wins from each of them.
#[must_use]
pub fn protocol_defeated_everywhere(protocol: &ProtocolTable, n: usize, k: usize) -> bool {
    for config in enumerate_configurations(n, k) {
        let mask = config
            .occupied_nodes()
            .into_iter()
            .fold(0u32, |m, v| m | (1 << v));
        if play(protocol, n, mask) == GameOutcome::NotDisproved {
            return false;
        }
    }
    true
}

/// Exhaustively checks that **no** oblivious min-CORDA protocol perpetually
/// clears an `n`-node ring with `k` robots, from any initial configuration,
/// against a fair semi-synchronous adversary.
///
/// Returns `None` if the protocol space is larger than `protocol_cap` (the
/// search would be unreasonably large); otherwise returns the search summary.
#[must_use]
pub fn exhaustive_impossibility(
    n: usize,
    k: usize,
    protocol_cap: u64,
) -> Option<ImpossibilityResult> {
    assert!(n <= 16, "the game search uses 16-bit edge masks");
    let classes = view_classes(n, k);
    let total = protocol_count(&classes);
    if total > protocol_cap {
        return None;
    }
    let mut surviving = 0u64;
    for idx in 0..total {
        let protocol = decode_protocol(&classes, idx);
        if !protocol_defeated_everywhere(&protocol, n, k) {
            surviving += 1;
        }
    }
    Some(ImpossibilityResult {
        n,
        k,
        view_classes: classes.len(),
        protocols_checked: total,
        surviving_protocols: surviving,
    })
}

/// Book-keeping view of the decision table sizes, used by the experiment
/// binaries to report the search space before running it.
#[must_use]
pub fn search_space(n: usize, k: usize) -> (usize, u64) {
    let classes = view_classes(n, k);
    let count = protocol_count(&classes);
    (classes.len(), count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_classes_are_sorted_and_unique() {
        let classes = view_classes(6, 2);
        let mut sorted = classes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(classes, sorted);
        // k = 2 on a 6-ring: distances 1, 2, 3 → three classes.
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn protocol_count_accounts_for_symmetric_classes() {
        // Distance 3 on a 6-ring is diametral: that class has two options.
        let classes = view_classes(6, 2);
        assert_eq!(protocol_count(&classes), 3 * 3 * 2);
    }

    #[test]
    fn recontamination_closure_on_masks() {
        // Robots at 0 and 4 on an 8-ring guard the cleared arc 0..4.
        let occupied = 0b0001_0001u32;
        let clear = 0b0000_1111u32;
        assert_eq!(recontaminate(occupied, clear, 8), clear);
        // Remove the guard at 4: everything is recontaminated.
        let occupied = 0b0000_0001u32;
        assert_eq!(recontaminate(occupied, clear, 8), 0);
    }

    #[test]
    fn single_robot_is_impossible() {
        let result = exhaustive_impossibility(5, 1, 10_000).expect("tiny search");
        assert!(result.impossibility_confirmed());
        assert!(result.protocols_checked >= 2);
    }

    #[test]
    fn two_robots_are_impossible_on_small_rings() {
        // Theorem 2, machine-checked for n = 4..7.
        for n in 4..=7usize {
            let result = exhaustive_impossibility(n, 2, 100_000).expect("search fits");
            assert!(
                result.impossibility_confirmed(),
                "n={n}: {} protocols survived",
                result.surviving_protocols
            );
        }
    }

    #[test]
    fn three_robots_mostly_fail_even_semi_synchronously() {
        // Theorem 3 needs the asynchronous adversary; the semi-synchronous
        // search already eliminates all but a handful of the candidate
        // protocols on a 5-ring (the survivors are the protocols the proof of
        // Theorem 3 defeats with pending moves).
        let result = exhaustive_impossibility(5, 3, 1_000_000).expect("search fits");
        assert!(result.protocols_checked > 20);
        assert!(
            result.surviving_protocols <= 4,
            "{} protocols survived the SSYNC adversary",
            result.surviving_protocols
        );
        assert!(result.surviving_protocols * 8 < result.protocols_checked);
    }

    #[test]
    fn search_space_reports_sizes() {
        let (classes, protocols) = search_space(7, 4);
        assert!(classes > 0);
        assert!(protocols > 0);
    }

    #[test]
    fn cap_is_respected() {
        assert!(exhaustive_impossibility(9, 4, 10).is_none());
    }
}
