//! The exploration storage layer: where discovered states and edges live.
//!
//! The explorer's BFS (`crate::explore`) touches its stored states through
//! two narrow access patterns — *sequential windows* (the next `BATCH` node
//! ids to expand) and *point lookups* (the liveness pass aligning quotient
//! representatives) — and appends edges it only reads back once, for the SCC
//! analysis.  `StateStore` and `EdgeSink` (crate-internal traits) capture
//! exactly those patterns, with two backends each:
//!
//! * **mem** (`MemStore` / `MemEdges`): the original in-RAM vectors —
//!   fastest, bounded by physical memory;
//! * **spill** (`SpillStore` / `SpillEdges`): packed states are grouped
//!   into clusters of `CLUSTER` states, each cluster encoded as its first
//!   state's raw words plus sparse XOR deltas ([`PackedState::delta_from`])
//!   for the rest, and **every sealed cluster is appended to a temp file
//!   immediately** — so the bytes written (`spilled_bytes`) are a
//!   deterministic function of the state sequence, independent of worker
//!   count and memory budget.  The budget only governs the cache of encoded
//!   clusters kept resident for window reads; edges stream to a second file
//!   as fixed 8-byte records and are loaded back only if the liveness pass
//!   runs (after the visited map has been dropped).
//!
//! Both backends present **the same state sequence** — ids, bytes, windows —
//! so every [`crate::ExploreReport`] field and every counterexample is
//! byte-identical across backends, which `tests/parallel_determinism.rs`
//! pins.  I/O errors on the spill files panic: the files are process-private
//! temporaries, and a checker that cannot read its own spill has no sound
//! verdict to offer.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rr_corda::PackedState;

/// Which storage backend an exploration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Everything in RAM (the default): fastest, bounded by memory.
    #[default]
    Mem,
    /// Delta-compressed clusters spilled to disk, with a bounded resident
    /// cache; edges streamed to disk.  Use with
    /// [`crate::ExploreOptions::with_mem_budget`].
    Spill,
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreKind::Mem => "mem",
            StoreKind::Spill => "spill",
        })
    }
}

/// Backend-specific statistics of one exploration.  Everything in the
/// [`crate::ExploreReport`] itself is backend-independent (so reports can be
/// compared byte for byte across backends); what the backend actually did —
/// how many bytes it wrote to disk — surfaces here, via
/// [`crate::check_protocol_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// The backend that ran.
    pub store: StoreKind,
    /// Total bytes appended to the spill files (states + edges); `0` for the
    /// mem backend.  Deterministic: a pure function of the explored graph,
    /// independent of worker count and memory budget.
    pub spilled_bytes: u64,
    /// Bytes appended to the visited map's run file (sealed sorted runs plus
    /// compaction rewrites); `0` for the mem backend.  Deterministic for a
    /// fixed (backend, budget) pair — sealing is driven by entry counts at
    /// sequential merge points, never by worker timing — but, unlike
    /// [`spilled_bytes`](StoreStats::spilled_bytes), it *does* depend on the
    /// memory budget: a tighter budget seals smaller memtables more often
    /// and compacts more.
    pub visited_spilled_bytes: u64,
    /// Wall nanoseconds spent in the parallel expansion phase (workers
    /// stepping engines).  **Not deterministic** — a diagnostic for the E16
    /// scaling records, excluded from every cross-run comparison.
    pub expand_nanos: u64,
    /// Wall nanoseconds spent in the batch merge (shard partition, parallel
    /// per-shard dedup, the sequential ordering pass, memtable commit and
    /// visited-map sealing).  **Not deterministic** — same status as
    /// [`expand_nanos`](StoreStats::expand_nanos).
    pub merge_nanos: u64,
}

/// States per spill cluster: the first state is the cluster base (raw
/// words), the rest are sparse XOR deltas against it.
pub(crate) const CLUSTER: usize = 64;

/// A window of packed states handed to the expansion workers: borrowed
/// straight from a resident store, or materialized from spilled clusters.
pub(crate) enum FrontierWindow<'a> {
    /// The window is a live slice of resident states.
    Resident(&'a [PackedState]),
    /// The window was decoded from spilled clusters.
    Loaded(Vec<PackedState>),
}

impl std::ops::Deref for FrontierWindow<'_> {
    type Target = [PackedState];

    fn deref(&self) -> &[PackedState] {
        match self {
            FrontierWindow::Resident(slice) => slice,
            FrontierWindow::Loaded(vec) => vec,
        }
    }
}

/// Append-only storage of discovered states, addressed by node id in
/// discovery order.  The explorer reads states back in two patterns only:
/// contiguous [`window`](StateStore::window)s in ascending id order (the
/// BFS), and random [`get`](StateStore::get)s (the quotient-liveness
/// alignment) — both after all pushes the ids in question, never
/// concurrently with a push.
pub(crate) trait StateStore {
    /// Appends a state; its id is the previous [`len`](StateStore::len).
    fn push(&mut self, state: PackedState);

    /// Number of stored states.
    fn len(&self) -> usize;

    /// Total packed payload bytes (word count × 8) over all stored states —
    /// a backend-independent size measure: both backends report the same
    /// value for the same state sequence.
    fn payload_bytes(&self) -> u64;

    /// Bytes appended to spill files so far; `0` for resident backends.
    fn spilled_bytes(&self) -> u64;

    /// The state with id `id`.
    fn get(&mut self, id: usize) -> PackedState;

    /// The states `start..end`, in id order.
    fn window(&mut self, start: usize, end: usize) -> FrontierWindow<'_>;
}

/// The in-RAM backend: a plain vector of packed states.
pub(crate) struct MemStore {
    states: Vec<PackedState>,
    payload: u64,
}

impl MemStore {
    pub(crate) fn new() -> Self {
        MemStore {
            states: Vec::new(),
            payload: 0,
        }
    }
}

impl StateStore for MemStore {
    fn push(&mut self, state: PackedState) {
        self.payload += 8 * state.words().len() as u64;
        self.states.push(state);
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    fn payload_bytes(&self) -> u64 {
        self.payload
    }

    fn spilled_bytes(&self) -> u64 {
        0
    }

    fn get(&mut self, id: usize) -> PackedState {
        self.states[id].clone()
    }

    fn window(&mut self, start: usize, end: usize) -> FrontierWindow<'_> {
        FrontierWindow::Resident(&self.states[start..end])
    }
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-private temp file that deletes itself on drop.
pub(crate) struct SpillFile {
    file: File,
    path: PathBuf,
    written: u64,
}

impl SpillFile {
    pub(crate) fn create(tag: &str) -> Self {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "rr-checker-{tag}-{}-{seq}.spill",
            std::process::id()
        ));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("creating spill file {}: {e}", path.display()));
        SpillFile {
            file,
            path,
            written: 0,
        }
    }

    /// Appends `bytes` at the end of the file; returns their offset.
    pub(crate) fn append(&mut self, bytes: &[u8]) -> u64 {
        let offset = self.written;
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(bytes))
            .unwrap_or_else(|e| panic!("writing spill file {}: {e}", self.path.display()));
        self.written += bytes.len() as u64;
        offset
    }

    /// Total bytes ever appended.
    pub(crate) fn written(&self) -> u64 {
        self.written
    }

    /// Positional read through a **shared** reference: no seek, no shared
    /// cursor, so concurrent readers (the expansion workers probing visited
    /// runs) need no lock.
    pub(crate) fn read_exact_at(&self, offset: u64, buf: &mut [u8]) {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(buf, offset)
                .unwrap_or_else(|e| panic!("reading spill file {}: {e}", self.path.display()));
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0usize;
            while done < buf.len() {
                let n = self
                    .file
                    .seek_read(&mut buf[done..], offset + done as u64)
                    .unwrap_or_else(|e| panic!("reading spill file {}: {e}", self.path.display()));
                assert!(n > 0, "truncated spill file {}", self.path.display());
                done += n;
            }
        }
    }

    pub(crate) fn read_at(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_exact_at(offset, &mut buf);
        buf
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The spill-to-disk backend.
///
/// States accumulate in an open tail of up to [`CLUSTER`] states; a full
/// tail is *sealed*: encoded (base + deltas), appended to the spill file,
/// and kept in the resident cache of encoded clusters.  The cache is
/// trimmed to `mem_budget` bytes by evicting the highest-numbered clusters
/// first — the BFS consumes ids in ascending order, so high clusters are
/// the ones needed *furthest* in the future; once a window has moved past a
/// cluster it is dropped from the cache outright (later random access reads
/// the file).
pub(crate) struct SpillStore {
    file: SpillFile,
    mem_budget: u64,
    payload: u64,
    len: usize,
    /// Open tail cluster (ids `sealed * CLUSTER ..`).
    tail: Vec<PackedState>,
    /// Per sealed cluster: file offset and encoded byte length.
    spans: Vec<(u64, u32)>,
    /// Encoded sealed clusters still resident, by cluster index.
    cache: BTreeMap<usize, Vec<u8>>,
    cache_bytes: u64,
    /// One decoded cluster for random access (the quotient-liveness pass
    /// probes states of one SCC, which BFS discovery makes mostly
    /// contiguous).
    decoded: Option<(usize, Vec<PackedState>)>,
}

impl SpillStore {
    pub(crate) fn new(mem_budget: u64) -> Self {
        SpillStore {
            file: SpillFile::create("states"),
            mem_budget,
            payload: 0,
            len: 0,
            tail: Vec::with_capacity(CLUSTER),
            spans: Vec::new(),
            cache: BTreeMap::new(),
            cache_bytes: 0,
            decoded: None,
        }
    }

    /// Encodes the tail as one cluster: base words raw, then length-prefixed
    /// deltas.
    fn encode_tail(&self) -> Vec<u8> {
        let base = &self.tail[0];
        let mut out = Vec::with_capacity(16 * self.tail.len());
        write_uleb(&mut out, base.words().len() as u64);
        for &word in base.words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for state in &self.tail[1..] {
            let delta = state.delta_from(base);
            write_uleb(&mut out, delta.len() as u64);
            out.extend_from_slice(&delta);
        }
        out
    }

    fn decode_cluster(bytes: &[u8], states: usize) -> Vec<PackedState> {
        let mut cursor = bytes;
        let base_len = read_uleb(&mut cursor) as usize;
        let mut words = Vec::with_capacity(base_len);
        for _ in 0..base_len {
            let (chunk, rest) = cursor.split_at(8);
            words.push(u64::from_le_bytes(chunk.try_into().expect("8-byte word")));
            cursor = rest;
        }
        let base = PackedState::from_raw_words(words);
        let mut out = Vec::with_capacity(states);
        out.push(base.clone());
        for _ in 1..states {
            let len = read_uleb(&mut cursor) as usize;
            let (delta, rest) = cursor.split_at(len);
            out.push(PackedState::apply_delta(&base, delta));
            cursor = rest;
        }
        assert!(cursor.is_empty(), "trailing bytes in spilled cluster");
        out
    }

    fn seal_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), CLUSTER);
        let encoded = self.encode_tail();
        let offset = self.file.append(&encoded);
        let index = self.spans.len();
        self.spans.push((offset, encoded.len() as u32));
        self.cache_bytes += encoded.len() as u64;
        self.cache.insert(index, encoded);
        self.tail.clear();
        // Budget: evict the highest-numbered clusters (needed last).
        while self.cache_bytes > self.mem_budget {
            let Some((_, bytes)) = self.cache.pop_last() else {
                break;
            };
            self.cache_bytes -= bytes.len() as u64;
        }
    }

    /// The encoded bytes of sealed cluster `index`, from cache or disk.
    fn cluster_bytes(&mut self, index: usize) -> Vec<u8> {
        if let Some(bytes) = self.cache.get(&index) {
            return bytes.clone();
        }
        let (offset, len) = self.spans[index];
        self.file.read_at(offset, len as usize)
    }

    fn cluster_states(&mut self, index: usize) -> &[PackedState] {
        if self.decoded.as_ref().map(|(i, _)| *i) != Some(index) {
            let bytes = self.cluster_bytes(index);
            self.decoded = Some((index, Self::decode_cluster(&bytes, CLUSTER)));
        }
        &self.decoded.as_ref().expect("decoded above").1
    }
}

impl StateStore for SpillStore {
    fn push(&mut self, state: PackedState) {
        self.payload += 8 * state.words().len() as u64;
        self.len += 1;
        self.tail.push(state);
        if self.tail.len() == CLUSTER {
            self.seal_tail();
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn payload_bytes(&self) -> u64 {
        self.payload
    }

    fn spilled_bytes(&self) -> u64 {
        self.file.written
    }

    fn get(&mut self, id: usize) -> PackedState {
        let tail_base = self.spans.len() * CLUSTER;
        if id >= tail_base {
            return self.tail[id - tail_base].clone();
        }
        self.cluster_states(id / CLUSTER)[id % CLUSTER].clone()
    }

    fn window(&mut self, start: usize, end: usize) -> FrontierWindow<'_> {
        let tail_base = self.spans.len() * CLUSTER;
        // The BFS has consumed everything below `start`: those clusters
        // cannot be windowed again, so stop caching them.
        let mut freed = 0u64;
        let dead: Vec<usize> = self
            .cache
            .range(..start / CLUSTER)
            .map(|(&i, _)| i)
            .collect();
        for index in dead {
            if let Some(bytes) = self.cache.remove(&index) {
                freed += bytes.len() as u64;
            }
        }
        self.cache_bytes -= freed;
        if start >= tail_base {
            return FrontierWindow::Resident(&self.tail[start - tail_base..end - tail_base]);
        }
        let mut out = Vec::with_capacity(end - start);
        let mut id = start;
        while id < end {
            if id >= tail_base {
                out.extend_from_slice(&self.tail[id - tail_base..end - tail_base]);
                break;
            }
            let index = id / CLUSTER;
            let bytes = self.cluster_bytes(index);
            let states = Self::decode_cluster(&bytes, CLUSTER);
            let hi = end.min((index + 1) * CLUSTER);
            out.extend_from_slice(&states[id % CLUSTER..hi - index * CLUSTER]);
            id = hi;
        }
        FrontierWindow::Loaded(out)
    }
}

/// One edge of the explored graph, CSR-packed: 9 bytes in RAM, 8 on disk.
pub(crate) struct Edge {
    pub(crate) to: u32,
    pub(crate) code: u32,
    pub(crate) progress: bool,
}

/// Append-only edge storage.  Edges are written once during the BFS and
/// read back at most once, all together, for the liveness analysis — after
/// the caller has dropped its visited map, so the loaded vector replaces
/// rather than adds to the peak footprint.
pub(crate) trait EdgeSink {
    /// Appends an edge.
    fn push(&mut self, edge: Edge);

    /// Number of edges appended.
    fn len(&self) -> u64;

    /// Bytes appended to a spill file; `0` for resident backends.
    fn spilled_bytes(&self) -> u64;

    /// Loads every edge back, in append order, consuming the sink's
    /// buffers.
    fn finish(&mut self) -> Vec<Edge>;
}

/// The in-RAM edge backend.
pub(crate) struct MemEdges {
    edges: Vec<Edge>,
}

impl MemEdges {
    pub(crate) fn new() -> Self {
        MemEdges { edges: Vec::new() }
    }
}

impl EdgeSink for MemEdges {
    fn push(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    fn len(&self) -> u64 {
        self.edges.len() as u64
    }

    fn spilled_bytes(&self) -> u64 {
        0
    }

    fn finish(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.edges)
    }
}

/// On-disk record: `to` in the low word, `code | progress << 31` in the
/// high word.  Step codes occupy at most 30 bits (2-bit kind + 28-bit
/// payload), leaving bit 31 free for the progress flag.
fn encode_edge(edge: &Edge) -> [u8; 8] {
    assert!(edge.code < 1 << 31, "step code overflows the edge record");
    let word = u64::from(edge.to) | u64::from(edge.code | u32::from(edge.progress) << 31) << 32;
    word.to_le_bytes()
}

fn decode_edge(bytes: [u8; 8]) -> Edge {
    let word = u64::from_le_bytes(bytes);
    let hi = (word >> 32) as u32;
    Edge {
        to: word as u32,
        code: hi & !(1 << 31),
        progress: hi >> 31 != 0,
    }
}

/// The spilled edge backend: fixed 8-byte records streamed through a small
/// write buffer.
pub(crate) struct SpillEdges {
    file: SpillFile,
    buf: Vec<u8>,
    len: u64,
}

/// Write-buffer size for spilled edges.
const EDGE_BUF: usize = 1 << 16;

impl SpillEdges {
    pub(crate) fn new() -> Self {
        SpillEdges {
            file: SpillFile::create("edges"),
            buf: Vec::with_capacity(EDGE_BUF),
            len: 0,
        }
    }
}

impl EdgeSink for SpillEdges {
    fn push(&mut self, edge: Edge) {
        self.buf.extend_from_slice(&encode_edge(&edge));
        self.len += 1;
        if self.buf.len() >= EDGE_BUF {
            self.file.append(&self.buf);
            self.buf.clear();
        }
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn spilled_bytes(&self) -> u64 {
        self.file.written + self.buf.len() as u64
    }

    fn finish(&mut self) -> Vec<Edge> {
        if !self.buf.is_empty() {
            self.file.append(&self.buf);
            self.buf.clear();
        }
        let bytes = self.file.read_at(0, self.file.written as usize);
        bytes
            .chunks_exact(8)
            .map(|chunk| decode_edge(chunk.try_into().expect("8-byte record")))
            .collect()
    }
}

/// LEB128 varint append (the cluster framing format).
fn write_uleb(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint read; advances `bytes` past the varint.
fn read_uleb(bytes: &mut &[u8]) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = bytes.split_first().expect("truncated varint");
        *bytes = rest;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
        assert!(shift < 64, "varint overflows u64");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(words: &[u64]) -> PackedState {
        PackedState::from_raw_words(words.to_vec())
    }

    /// A deterministic pseudo-random state sequence with BFS-like locality.
    fn sequence(count: usize) -> Vec<PackedState> {
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut step = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        (0..count)
            .map(|i| {
                let len = 2 + i % 3;
                let words: Vec<u64> = (0..len).map(|_| step() & 0xFFFF).collect();
                state(&words)
            })
            .collect()
    }

    fn check_backend(store: &mut dyn StateStore, states: &[PackedState]) {
        for s in states {
            store.push(s.clone());
        }
        assert_eq!(store.len(), states.len());
        let expected_payload: u64 = states.iter().map(|s| 8 * s.words().len() as u64).sum();
        assert_eq!(store.payload_bytes(), expected_payload);
        // Random access.
        for (i, s) in states.iter().enumerate() {
            assert_eq!(&store.get(i), s, "get({i})");
        }
        // Windows at awkward boundaries.
        let probes = [
            (0usize, states.len()),
            (0, 1),
            (states.len().saturating_sub(3), states.len()),
            (CLUSTER - 1, (CLUSTER + 1).min(states.len())),
        ];
        for (start, end) in probes {
            if start >= end {
                continue;
            }
            let window = store.window(start, end);
            assert_eq!(&window[..], &states[start..end], "window {start}..{end}");
        }
    }

    #[test]
    fn mem_and_spill_agree_on_the_same_sequence() {
        let states = sequence(3 * CLUSTER + 17);
        check_backend(&mut MemStore::new(), &states);
        // Generous budget: everything stays cached.
        check_backend(&mut SpillStore::new(1 << 20), &states);
        // Zero budget: every read decodes from disk.
        check_backend(&mut SpillStore::new(0), &states);
    }

    #[test]
    fn spilled_bytes_are_independent_of_the_budget() {
        let states = sequence(5 * CLUSTER);
        let mut roomy = SpillStore::new(1 << 30);
        let mut tight = SpillStore::new(0);
        for s in &states {
            roomy.push(s.clone());
            tight.push(s.clone());
        }
        assert!(roomy.spilled_bytes() > 0);
        assert_eq!(roomy.spilled_bytes(), tight.spilled_bytes());
        // Sequential-window consumption (the BFS pattern) sees identical
        // states under both budgets.
        for start in (0..states.len()).step_by(7) {
            let end = (start + 7).min(states.len());
            assert_eq!(&roomy.window(start, end)[..], &tight.window(start, end)[..]);
        }
    }

    #[test]
    fn spill_file_cleans_up_after_itself() {
        let path = {
            let store = SpillStore::new(0);
            store.file.path.clone()
        };
        assert!(!path.exists(), "spill file must be deleted on drop");
    }

    /// Encoded byte size of one full cluster of `states[..CLUSTER]` — the
    /// boundary the re-read-pressure proptest perturbs by ±1.
    fn cluster_bytes_of(states: &[PackedState]) -> u64 {
        let mut probe = SpillStore::new(0);
        for s in &states[..CLUSTER] {
            probe.push(s.clone());
        }
        assert!(probe.spilled_bytes() > 0, "one cluster must have sealed");
        probe.spilled_bytes()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Spill clusters under re-read pressure: window loads interleaved
        /// with continued pushes (hence continued sealing and eviction), at
        /// cache budgets pinned to the encoded-cluster-size boundary ±1 byte
        /// — every loaded window must be byte-identical to the mem-backend
        /// oracle, whichever mix of cache hits, evictions and disk decodes
        /// served it.
        #[test]
        fn interleaved_windows_match_the_mem_oracle_at_boundary_budgets(
            // Interleaving script: each entry pushes 1..=24 states, then
            // windows a pseudo-random span of what has been pushed so far.
            script in proptest::collection::vec((1usize..=24, 0u64..u64::MAX), 4..24),
            // Budget at an encoded-cluster boundary: k clusters ± 1 byte.
            boundary in 0u64..4,
            delta in 0u64..3,
        ) {
            let states = sequence(8 * CLUSTER);
            let budget =
                (boundary * cluster_bytes_of(&states)).saturating_add_signed(delta as i64 - 1);
            let mut oracle = MemStore::new();
            let mut spill = SpillStore::new(budget);
            let mut len = 0usize;
            for (push, pick) in script {
                for s in &states[len..(len + push).min(states.len())] {
                    oracle.push(s.clone());
                    spill.push(s.clone());
                    len += 1;
                }
                // A window over the pushed prefix, biased toward recent ids
                // (the BFS pattern) but free to re-read sealed clusters.
                let start = (pick % len as u64) as usize;
                let end = (start + 1 + (pick >> 32) as usize % 96).min(len);
                let want = oracle.window(start, end);
                let got = spill.window(start, end);
                proptest::prop_assert_eq!(&want[..], &got[..], "window {}..{}", start, end);
            }
        }
    }

    #[test]
    fn edge_sinks_round_trip_and_agree() {
        let edges: Vec<Edge> = (0..10_000u32)
            .map(|i| Edge {
                to: i.wrapping_mul(2654435761),
                code: (i * 7) & ((1 << 30) - 1),
                progress: i % 3 == 0,
            })
            .collect();
        let mut mem = MemEdges::new();
        let mut spill = SpillEdges::new();
        for e in &edges {
            mem.push(Edge { ..*e });
            spill.push(Edge { ..*e });
        }
        assert_eq!(mem.len(), spill.len());
        assert!(spill.spilled_bytes() >= 8 * edges.len() as u64);
        let a = mem.finish();
        let b = spill.finish();
        assert_eq!(a.len(), edges.len());
        for ((x, y), want) in a.iter().zip(&b).zip(&edges) {
            assert_eq!(
                (x.to, x.code, x.progress),
                (want.to, want.code, want.progress)
            );
            assert_eq!(
                (y.to, y.code, y.progress),
                (want.to, want.code, want.progress)
            );
        }
    }
}
