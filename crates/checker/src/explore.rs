//! Exhaustive adversarial model checking over scheduler interleavings.
//!
//! The paper's correctness statements quantify over *every* activation
//! schedule of the adversary; the randomized verification harnesses in
//! [`crate::verify`] only sample that space (64 seeds per cell).  This module
//! closes the gap for small instances: it enumerates the **complete**
//! reachable state graph of a protocol under a
//! [`NondeterministicScheduler`]'s branching frontier — every SSYNC
//! activation subset, or every ASYNC Look/Move interleaving with pending
//! moves — and checks a pluggable [`Invariant`] on it:
//!
//! * **safety** is checked on every edge (collisions raised by the engine,
//!   plus the invariant's own edge conditions), and a breadth-first search
//!   order guarantees a *minimal* counterexample trace;
//! * **liveness** is decided on the explored graph by SCC analysis under the
//!   weak-fairness assumption (every robot is activated infinitely often): a
//!   violation is a reachable strongly connected subgraph, free of
//!   target/progress, whose internal edges activate *every* robot — from
//!   which a concrete fair lasso (prefix + cycle) is extracted.
//!
//! # The compact, parallel exploration engine
//!
//! The state graph is held in a memory-compact form: each discovered state is
//! stored as a bit-packed [`PackedState`] plus the 64-bit key of its
//! auxiliary invariant state ([`AugState::key_bits`], rebuilt exactly on
//! expansion via [`AugState::from_key_bits`]); edges carry a `u32` step code
//! instead of a materialized [`SchedulerStep`], in a CSR layout; and the
//! visited map keys on fixed-size inline signatures
//! ([`PackedState::behavior_sig`] / [`PackedState::canonical_sig`]) sharded
//! by hash.  Nothing in the hot loop allocates proportionally to `n`.
//!
//! Expansion runs **batch-parallel**: the BFS order of node ids is a sequence
//! of contiguous index windows; each window is expanded by a pool of workers
//! (one reusable [`Engine`] per worker, driven through
//! [`Engine::restore_packed`] / `save_state`/`restore_state`), and the
//! results are merged *sequentially in window order*.  Node ids, edge order,
//! every [`ExploreReport`] field and every extracted counterexample are
//! therefore **byte-identical for any worker count** — the same discipline
//! the rr-sweep records already pin.  Set the worker count with
//! [`ExploreOptions::with_workers`] (default: one per available core).
//!
//! Two deduplication regimes are offered.  [`check_protocol`] keys states by
//! their exact behavioural identity ([`PackedState::behavior_sig`], the
//! packed form of [`EngineState::exact_key`]) — robot identities preserved,
//! as per-robot fairness is **not** invariant under relabeling — and
//! reports, as a statistic, how many canonical classes
//! ([`PackedState::canonical_sig`], the Booth least-rotation quotient by
//! ring rotation/reflection + robot relabeling) the concrete states collapse
//! to.  [`check_safety_quotient`] dedups directly on canonical classes,
//! which is sound for safety (a bad state is reachable iff an isomorphic one
//! is) and explores the `≈ 2n`-fold smaller quotient graph; the two regimes
//! must agree on every safety verdict, which the test suite pins.
//!
//! Counterexamples [`replay`](replay_counterexample) on a fresh [`Engine`]:
//! a safety trace reproduces its violation at the final step, a liveness
//! lasso closes back on the exact state it entered the cycle with, making no
//! progress — so the reported schedule is a certificate, not a search
//! artifact.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use rr_corda::{
    CorruptionKind, Decision, Engine, EngineOptions, EngineState, FaultModel, InterleavingMode,
    NondeterministicScheduler, PackedState, Protocol, RobotId, RobotState, SchedulerStep, SimError,
    Snapshot, StateSig, ViewOrder, MAX_CANONICAL_N,
};
use rr_core::invariant::{AugState, Invariant, LivenessMode, StateView};
use rr_core::relabel::{relabel_onto, RobotPerm, MAX_PERM_ROBOTS};
use rr_ring::{Configuration, View};

use crate::store::{
    Edge, EdgeSink, MemEdges, MemStore, SpillEdges, SpillStore, StateStore, StoreKind, StoreStats,
};
use crate::visited::{shard_of, Key, Memtable, Visited, VISITED_ENTRY_BYTES, VISITED_SHARDS};

/// Default state budget: generous for every cell of the acceptance grid, a
/// guard rail against accidentally pointing the checker at a huge instance.
pub const DEFAULT_MAX_STATES: usize = 4_000_000;

/// Nodes expanded per merge window.  A constant (never derived from the
/// worker count) so that the reported peak memory statistic — and the point
/// at which a state budget trips — are identical for every worker count.
const BATCH: usize = 4096;

/// The fault adversary's powers during one exhaustive check: how many fault
/// choices the branching frontier may enumerate along any single execution.
///
/// The default ([`FaultBudget::none`]) grants nothing — exploration is then
/// byte-identical to the fault-free checker (same state ids, edges, reports
/// and counterexamples), which the fault tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultBudget {
    /// Robots the adversary may crash-stop along one execution.  Each crash
    /// is a branch point: *which* alive robot, *when* (at any reachable
    /// state).  A crashed robot is removed from every later frontier; its
    /// position and any pending action freeze forever.
    pub crash_budget: u32,
    /// Fresh Looks the adversary may corrupt along one execution.  Each
    /// corruption is a branch point: which Look opportunity (robot, and
    /// under SSYNC which activation subset) observes which
    /// [`CorruptionKind`] perturbation.
    pub corrupt_budget: u32,
    /// Robots a bounded-unfair scheduler with `B = ∞` may starve forever:
    /// the liveness analysis drops them from its fairness obligation, so a
    /// lasso needs to activate only the non-starved robots.  (The frontier
    /// still offers their activations — the adversary *may* starve, not
    /// must.)
    pub starve_mask: u32,
}

impl FaultBudget {
    /// No fault powers: the fault-free adversary.
    #[must_use]
    pub fn none() -> Self {
        FaultBudget::default()
    }

    /// Whether this budget grants no fault powers at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == FaultBudget::none()
    }

    /// Grants `f` crash-stop faults.
    #[must_use]
    pub fn with_crashes(mut self, f: u32) -> Self {
        self.crash_budget = f;
        self
    }

    /// Grants `b` corrupted Looks.
    #[must_use]
    pub fn with_corrupt_looks(mut self, b: u32) -> Self {
        self.corrupt_budget = b;
        self
    }

    /// Exempts the robots in `mask` from the fairness obligation (starved
    /// forever by a bounded-unfair scheduler with `B = ∞`).
    #[must_use]
    pub fn with_starved(mut self, mask: u32) -> Self {
        self.starve_mask = mask;
        self
    }
}

/// Options for one exhaustive check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Which space of adversarial interleavings to branch over.
    pub interleaving: InterleavingMode,
    /// State budget; exceeding it yields [`CheckOutcome::BudgetExceeded`]
    /// instead of a verdict.
    pub max_states: usize,
    /// Whether to run the liveness (SCC) analysis after the safety sweep.
    pub check_liveness: bool,
    /// Expansion worker threads; `0` means one per available core.  The
    /// verdict, the report and any counterexample are identical for every
    /// value.
    pub workers: usize,
    /// The fault adversary's powers (default: none — fault-free checking).
    pub faults: FaultBudget,
    /// Where discovered states and edges live during the search (default:
    /// [`StoreKind::Mem`]).  The verdict, the report and any counterexample
    /// are identical for every backend.
    pub store: StoreKind,
    /// Resident-byte budget of the spill backend's cluster cache (ignored by
    /// the mem backend).  Smaller budgets trade window-read speed for
    /// memory; they never change any reported value.
    pub mem_budget: u64,
}

/// Default spill-cache budget: 64 MiB of encoded resident clusters.
pub const DEFAULT_MEM_BUDGET: u64 = 64 << 20;

impl ExploreOptions {
    /// Full checking (safety + liveness) under the given interleavings with
    /// the default state budget and one worker per available core.
    #[must_use]
    pub fn new(interleaving: InterleavingMode) -> Self {
        ExploreOptions {
            interleaving,
            max_states: DEFAULT_MAX_STATES,
            check_liveness: true,
            workers: 0,
            faults: FaultBudget::none(),
            store: StoreKind::Mem,
            mem_budget: DEFAULT_MEM_BUDGET,
        }
    }

    /// Replaces the storage backend.
    #[must_use]
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Replaces the spill backend's resident-byte budget.
    #[must_use]
    pub fn with_mem_budget(mut self, mem_budget: u64) -> Self {
        self.mem_budget = mem_budget;
        self
    }

    /// Replaces the fault adversary's powers.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultBudget) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the state budget.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the worker count.
    ///
    /// Every value is well-defined and produces the identical report:
    /// `0` resolves to one worker per available core, and any resolved
    /// count is clamped to `1..=BATCH` (4096, the merge-window size) — a
    /// worker beyond the window size could never receive work, and an
    /// unclamped `usize::MAX` would try to allocate that many engines.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Disables the liveness analysis (safety sweep only).
    #[must_use]
    pub fn safety_only(mut self) -> Self {
        self.check_liveness = false;
        self
    }
}

/// Which kind of property a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A bad edge: collision, invariant breach.
    Safety,
    /// A fair schedule making no progress: a lasso avoiding the target.
    Liveness,
}

/// One fault choice of the adversary along a counterexample schedule,
/// positioned by `at`: an index into the combined `prefix ++ cycle` step
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// Robot `robot` crash-stops immediately **before** the step at index
    /// `at` executes: no later step activates it (the explorer removes it
    /// from every frontier; the replay rejects schedules that do).
    Crash {
        /// Index into `prefix ++ cycle` before which the crash takes effect.
        at: usize,
        /// The crashed robot.
        robot: RobotId,
    },
    /// The step at index `at` (a Look, or an SSYNC round containing the
    /// robot) delivers a corrupted snapshot to `robot`'s fresh Look.
    Corrupt {
        /// Index into `prefix ++ cycle` of the corrupted step.
        at: usize,
        /// The robot whose Look is corrupted.
        robot: RobotId,
        /// The perturbation applied.
        kind: CorruptionKind,
    },
}

impl FaultDirective {
    /// The schedule position this directive attaches to.
    #[must_use]
    pub fn at(&self) -> usize {
        match self {
            FaultDirective::Crash { at, .. } | FaultDirective::Corrupt { at, .. } => *at,
        }
    }
}

/// A concrete adversarial schedule demonstrating a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// What is violated.
    pub kind: ViolationKind,
    /// Human-readable description of the violation.
    pub message: String,
    /// Schedule from the initial configuration to the violation (safety: the
    /// last step *is* the violation) or to the entry of the lasso cycle.
    pub prefix: Vec<SchedulerStep>,
    /// For liveness: the fair cycle (activating every robot the fairness
    /// obligation covers, making no progress) that the adversary repeats
    /// forever.  Empty for safety.
    pub cycle: Vec<SchedulerStep>,
    /// The adversary's fault choices along the schedule (empty for
    /// fault-free checking).
    pub faults: Vec<FaultDirective>,
    /// Robots the fairness obligation exempts because a bounded-unfair
    /// scheduler starves them forever ([`FaultBudget::starve_mask`]); zero
    /// outside starvation checking.
    pub starved: u32,
}

impl Counterexample {
    /// Compact single-line rendering (`L2` = Look robot 2, `E0` = Execute
    /// robot 0, `R{0,2}` = SSYNC round of robots 0 and 2); fault directives
    /// and starvation exemptions are appended in brackets.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}: {}", self.message, render_steps(&self.prefix));
        if !self.cycle.is_empty() {
            out.push_str(" (");
            out.push_str(&render_steps(&self.cycle));
            out.push_str(")*");
        }
        for fault in &self.faults {
            match fault {
                FaultDirective::Crash { at, robot } => {
                    out.push_str(&format!(" [crash {robot} @{at}]"));
                }
                FaultDirective::Corrupt { at, robot, kind } => {
                    out.push_str(&format!(" [corrupt {robot} {} @{at}]", kind.name()));
                }
            }
        }
        if self.starved != 0 {
            let ids: Vec<String> = (0..32)
                .filter(|r| self.starved & (1 << r) != 0)
                .map(|r: u32| r.to_string())
                .collect();
            out.push_str(&format!(" [starved {{{}}}]", ids.join(",")));
        }
        out
    }
}

fn render_steps(steps: &[SchedulerStep]) -> String {
    let rendered: Vec<String> = steps
        .iter()
        .map(|s| match s {
            SchedulerStep::Look(r) => format!("L{r}"),
            SchedulerStep::Execute(r) => format!("E{r}"),
            SchedulerStep::SsyncRound(robots) => {
                let ids: Vec<String> = robots.iter().map(ToString::to_string).collect();
                format!("R{{{}}}", ids.join(","))
            }
        })
        .collect();
    rendered.join(" ")
}

/// The verdict of one exhaustive check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every reachable edge is safe and (if checked) every fair schedule
    /// makes the required progress.
    Verified,
    /// A violation was found, with its concrete schedule.
    Falsified(Box<Counterexample>),
    /// The state budget was exhausted before the graph was covered.
    ///
    /// The two counts differ in general: the budget trips in the middle of a
    /// node's frontier, so the last expansion is incomplete — its
    /// already-recorded edges reference discovered states, but the node does
    /// not count as expanded.
    BudgetExceeded {
        /// States discovered (= stored) before giving up.
        discovered: usize,
        /// Nodes whose full frontier was expanded and recorded; always less
        /// than `discovered`.
        completed_expansions: usize,
    },
}

/// Result of one exhaustive check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// The invariant that was checked.
    pub invariant: &'static str,
    /// The interleaving space that was branched over.
    pub interleaving: InterleavingMode,
    /// Concrete states explored (canonical classes when the quotient
    /// explorer was used).
    pub states: usize,
    /// Distinct canonical (rotation/reflection/relabeling) classes among the
    /// explored *engine* states (auxiliary path state, e.g. contamination, is
    /// not part of the class key — for invariants carrying one, this counts
    /// the engine-state classes the full states project onto).
    pub quotient_states: usize,
    /// Edges of the explored graph.
    pub edges: u64,
    /// States satisfying the liveness target ([`LivenessMode::Reach`]).
    pub target_states: usize,
    /// Edges on which liveness progress happened
    /// ([`LivenessMode::ReachRepeatedly`]).
    pub progress_edges: u64,
    /// Peak resident node count: stored states plus still-buffered successor
    /// records, sampled at one consistent point — immediately before each
    /// expansion's sequential merge — and maximized over the run.
    /// Deterministic: independent of the worker count *and* of the storage
    /// backend.
    pub peak_resident_nodes: usize,
    /// The byte-valued analog of [`peak_resident_nodes`]: packed payload
    /// bytes of stored states plus buffered successors at the same sample
    /// points.  Counts state payloads, not backend overhead, so the value is
    /// identical across backends (the spill backend's *actual* residency is
    /// bounded by [`ExploreOptions::mem_budget`] instead).
    ///
    /// [`peak_resident_nodes`]: ExploreReport::peak_resident_nodes
    pub peak_resident_bytes: u64,
    /// Total packed payload bytes over all stored states — `bytes_per_state`
    /// is `state_bytes / states`.  Backend-independent.
    pub state_bytes: u64,
    /// The verdict.
    pub outcome: CheckOutcome,
}

impl ExploreReport {
    /// Whether the check completed and found no violation.
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self.outcome, CheckOutcome::Verified)
    }

    /// The counterexample, if the check falsified the invariant.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            CheckOutcome::Falsified(ce) => Some(ce),
            _ => None,
        }
    }
}

/// How explored states are deduplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dedup {
    /// Exact behavioural identity (robot ids preserved).
    Exact,
    /// Canonical class (quotient by ring automorphism + robot relabeling).
    /// Falls back to exact keys for invariants carrying auxiliary path state,
    /// whose canonicalization would have to be joint to stay sound.
    Canonical,
}

// ---------------------------------------------------------------------------
// Compact step codes: a SchedulerStep as one u32 edge label.
// ---------------------------------------------------------------------------

/// Low 2 bits: the step kind; upper bits: the activation subset bitmask
/// (SSYNC round) or the robot id (Look / Execute).  Kind 3 marks a fault
/// edge; its payload's low 2 bits select the fault subkind.
const STEP_SSYNC: u32 = 0;
const STEP_LOOK: u32 = 1;
const STEP_EXECUTE: u32 = 2;
const STEP_FAULT: u32 = 3;

/// Fault subkinds (payload bits 0..2 of a [`STEP_FAULT`] code).  Crash edges
/// step nothing (pure adversary bookkeeping); corrupt edges drive their
/// underlying Look / SSYNC round with a one-shot [`FaultModel::CorruptLook`]
/// armed.  Payload layout: subkind (2 bits) | robot (5 bits) | corruption
/// kind (1 bit) | SSYNC activation mask (20 bits) — 28 payload bits, so the
/// full code fits a `u32` for every `k ≤ 20`.
const FAULT_CRASH: u32 = 0;
const FAULT_LOOK: u32 = 1;
const FAULT_ROUND: u32 = 2;

/// The per-path fault word stored on every node and mixed into its dedup
/// key: crashed-robot bitmask in the low 24 bits, corrupted-Look count used
/// so far in the high 8.
fn fault_word(crashed: u32, corrupts: u32) -> u32 {
    debug_assert!(crashed < 1 << 24 && corrupts < 1 << 8);
    crashed | corrupts << 24
}

fn fault_crashed(word: u32) -> u32 {
    word & 0x00FF_FFFF
}

fn fault_corrupts(word: u32) -> u32 {
    word >> 24
}

fn corruption_bit(kind: CorruptionKind) -> u32 {
    match kind {
        CorruptionKind::PhantomMultiplicity => 0,
        CorruptionKind::MissingMultiplicity => 1,
    }
}

fn corruption_from_bit(bit: u32) -> CorruptionKind {
    if bit == 0 {
        CorruptionKind::PhantomMultiplicity
    } else {
        CorruptionKind::MissingMultiplicity
    }
}

fn crash_code(robot: usize) -> u32 {
    (FAULT_CRASH | (robot as u32) << 2) << 2 | STEP_FAULT
}

fn corrupt_look_code(robot: usize, kind: CorruptionKind) -> u32 {
    (FAULT_LOOK | (robot as u32) << 2 | corruption_bit(kind) << 7) << 2 | STEP_FAULT
}

fn corrupt_round_code(mask: u32, victim: usize, kind: CorruptionKind) -> u32 {
    (FAULT_ROUND | (victim as u32) << 2 | corruption_bit(kind) << 7 | mask << 8) << 2 | STEP_FAULT
}

/// Crash codes: the robot the adversary crashes; `None` for every other
/// code.
fn crash_code_robot(code: u32) -> Option<RobotId> {
    if code & 3 == STEP_FAULT && (code >> 2) & 3 == FAULT_CRASH {
        Some(((code >> 4) & 31) as RobotId)
    } else {
        None
    }
}

/// Corrupt codes: the victim, the perturbation, and the victim's fresh-Look
/// offset within the step (0 for a solo Look; its rank within the
/// activation mask for an SSYNC round — sound because SSYNC exploration
/// only rounds Ready robots, so every member Looks freshly in id order).
fn corrupt_code_parts(code: u32) -> Option<(RobotId, CorruptionKind, u64)> {
    if code & 3 != STEP_FAULT {
        return None;
    }
    let payload = code >> 2;
    let victim = ((payload >> 2) & 31) as RobotId;
    let kind = corruption_from_bit((payload >> 7) & 1);
    match payload & 3 {
        FAULT_LOOK => Some((victim, kind, 0)),
        FAULT_ROUND => {
            let mask = payload >> 8;
            let offset = u64::from((mask & ((1 << victim) - 1)).count_ones());
            Some((victim, kind, offset))
        }
        _ => None,
    }
}

/// The engine step a code drives: the decoded step for regular codes, the
/// underlying Look / SSYNC round for corrupt codes, `None` for crash codes
/// (which step nothing).
fn code_engine_step(code: u32) -> Option<SchedulerStep> {
    if code & 3 != STEP_FAULT {
        return Some(decode_step(code));
    }
    let payload = code >> 2;
    match payload & 3 {
        FAULT_LOOK => Some(SchedulerStep::Look(((payload >> 2) & 31) as usize)),
        FAULT_ROUND => {
            let mask = payload >> 8;
            Some(SchedulerStep::SsyncRound(
                (0..32usize).filter(|&r| mask & (1 << r) != 0).collect(),
            ))
        }
        _ => None,
    }
}

/// Materializes the [`SchedulerStep`] a regular code stands for.  Fault
/// codes never reach this (they are realized via [`realize_codes`]).
fn decode_step(code: u32) -> SchedulerStep {
    debug_assert_ne!(code & 3, STEP_FAULT, "fault codes have no direct step");
    let payload = code >> 2;
    match code & 3 {
        STEP_LOOK => SchedulerStep::Look(payload as usize),
        STEP_EXECUTE => SchedulerStep::Execute(payload as usize),
        _ => SchedulerStep::SsyncRound((0..32usize).filter(|&r| payload & (1 << r) != 0).collect()),
    }
}

/// [`decode_step`] recycling `buf` as the SSYNC robot vector (the hot loop
/// never allocates per step); return the vector with [`recycle_step`].
fn decode_step_with(code: u32, buf: &mut Vec<usize>) -> SchedulerStep {
    let payload = code >> 2;
    match code & 3 {
        STEP_LOOK => SchedulerStep::Look(payload as usize),
        STEP_EXECUTE => SchedulerStep::Execute(payload as usize),
        _ => {
            let mut robots = std::mem::take(buf);
            robots.clear();
            robots.extend((0..32usize).filter(|&r| payload & (1 << r) != 0));
            SchedulerStep::SsyncRound(robots)
        }
    }
}

/// Takes the robot vector back out of a step produced by
/// [`decode_step_with`].
fn recycle_step(step: SchedulerStep, buf: &mut Vec<usize>) {
    if let SchedulerStep::SsyncRound(robots) = step {
        *buf = robots;
    }
}

/// The robots a coded step activates, as a bitmask — the edge label the
/// fairness analysis is built on (equals
/// [`NondeterministicScheduler::activation_mask`] of the decoded step; for
/// corrupt codes, of their underlying step; crash codes activate nobody).
fn step_activation_mask(code: u32) -> u32 {
    match code & 3 {
        STEP_SSYNC => code >> 2,
        STEP_LOOK | STEP_EXECUTE => 1 << (code >> 2),
        _ => {
            let payload = code >> 2;
            match payload & 3 {
                FAULT_LOOK => 1 << ((payload >> 2) & 31),
                FAULT_ROUND => payload >> 8,
                _ => 0,
            }
        }
    }
}

/// The branching frontier of the adversary from a state with the given
/// per-robot pending status, as step codes, in the exact order
/// [`NondeterministicScheduler::frontier`] produces (subset bitmask order for
/// SSYNC, robot id order for ASYNC), with crash-stopped robots removed from
/// every step.
fn frontier_codes(mode: InterleavingMode, robots: &[RobotState], crashed: u32, out: &mut Vec<u32>) {
    out.clear();
    let k = robots.len();
    match mode {
        InterleavingMode::SsyncSubsets => {
            out.extend(
                (1u32..1 << k)
                    .filter(|mask| mask & crashed == 0)
                    .map(|mask| mask << 2 | STEP_SSYNC),
            );
        }
        InterleavingMode::AsyncPhases => {
            out.extend(
                robots
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| crashed & 1 << r == 0)
                    .map(|(r, robot)| {
                        let kind = if robot.has_pending() {
                            STEP_EXECUTE
                        } else {
                            STEP_LOOK
                        };
                        (r as u32) << 2 | kind
                    }),
            );
        }
    }
}

/// Appends the adversary's fault-choice edges to a node's frontier: crash
/// edges (one per alive robot while the crash budget lasts) followed by
/// corrupted-Look edges (one per fresh-Look opportunity × perturbation kind
/// while the corruption budget lasts), in a fixed order so exploration stays
/// deterministic for every worker count.
fn fault_codes(
    mode: InterleavingMode,
    robots: &[RobotState],
    fault: u32,
    budget: &FaultBudget,
    out: &mut Vec<u32>,
) {
    let k = robots.len();
    let crashed = fault_crashed(fault);
    if crashed.count_ones() < budget.crash_budget {
        out.extend((0..k).filter(|&r| crashed & 1 << r == 0).map(crash_code));
    }
    if fault_corrupts(fault) < budget.corrupt_budget {
        match mode {
            InterleavingMode::AsyncPhases => {
                for (r, robot) in robots.iter().enumerate() {
                    if crashed & 1 << r != 0 || robot.has_pending() {
                        continue;
                    }
                    for kind in CorruptionKind::ALL {
                        out.push(corrupt_look_code(r, kind));
                    }
                }
            }
            InterleavingMode::SsyncSubsets => {
                for mask in 1u32..1 << k {
                    if mask & crashed != 0 {
                        continue;
                    }
                    for victim in (0..k).filter(|&r| mask & 1 << r != 0) {
                        if robots[victim].has_pending() {
                            // A pending robot re-reports without a fresh
                            // Look — nothing to corrupt (unreachable in
                            // SSYNC exploration, where every robot is
                            // Ready, but kept for robustness).
                            continue;
                        }
                        for kind in CorruptionKind::ALL {
                            out.push(corrupt_round_code(mask, victim, kind));
                        }
                    }
                }
            }
        }
    }
}

/// Converts a path of edge codes into real scheduler steps plus the fault
/// directives annotating them: crash edges become [`FaultDirective::Crash`]
/// markers (they step nothing), corrupt edges emit their underlying step
/// plus a [`FaultDirective::Corrupt`] marker, regular codes decode as-is.
fn realize_codes(
    codes: &[u32],
    step_offset: usize,
    steps: &mut Vec<SchedulerStep>,
    faults: &mut Vec<FaultDirective>,
) {
    for &code in codes {
        let at = step_offset + steps.len();
        if let Some(robot) = crash_code_robot(code) {
            faults.push(FaultDirective::Crash { at, robot });
            continue;
        }
        if let Some((robot, kind, _)) = corrupt_code_parts(code) {
            faults.push(FaultDirective::Corrupt { at, robot, kind });
        }
        steps.push(code_engine_step(code).expect("non-crash codes drive a step"));
    }
}

// ---------------------------------------------------------------------------
// Compact state keys and the sharded visited map.
// ---------------------------------------------------------------------------

// The key type and the visited map itself (memtable shards + the disk-backed
// sorted-run backend) live in `crate::visited`; this module computes keys and
// drives the map at its sequential merge points.

/// Computes the dedup key straight from the live engine (no codec round
/// trip); equals `make_key(&engine.pack_state(), aug_bits, dedup, fault)`.
fn make_key_from_engine<P: Protocol>(
    engine: &Engine<P>,
    aug_bits: u64,
    dedup: Dedup,
    fault: u32,
) -> Key {
    let sig = match dedup {
        Dedup::Exact => engine.behavior_sig(),
        Dedup::Canonical => engine.canonical_sig(),
    };
    Key {
        sig,
        aug: aug_bits,
        fault,
    }
}

fn make_key(packed: &PackedState, aug_bits: u64, dedup: Dedup, fault: u32) -> Key {
    let sig = match dedup {
        Dedup::Exact => packed.behavior_sig(),
        Dedup::Canonical => packed.canonical_sig(),
    };
    Key {
        sig,
        aug: aug_bits,
        fault,
    }
}

// ---------------------------------------------------------------------------
// The compact state graph.
// ---------------------------------------------------------------------------

const NO_PARENT: u32 = u32::MAX;

/// The always-resident metadata of one stored state: the 64-bit auxiliary
/// key, the per-path fault word, the BFS parent pointer (node + step code)
/// and the liveness-target flag.  The packed engine state itself lives in
/// the run's [`StateStore`], addressed by the same node id — splitting the
/// two is what lets the spill backend move the (much larger) state payloads
/// out of RAM while the graph analyses keep O(1) access to the metadata.
struct NodeMeta {
    aug_bits: u64,
    fault: u32,
    parent: u32,
    parent_code: u32,
    target: bool,
}

/// CSR view of the (fully explored) graph for the liveness analysis.
struct Graph<'a> {
    meta: &'a [NodeMeta],
    offsets: &'a [u32],
    edges: &'a [Edge],
}

impl Graph<'_> {
    fn out(&self, u: usize) -> &[Edge] {
        &self.edges[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

fn state_view(state: &EngineState, crashed: u32) -> StateView<'_> {
    StateView::new(state.configuration(), state.robots()).with_crashed(crashed)
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

/// Exhaustively checks `protocol` against `invariant` from `initial`,
/// deduplicating on exact behavioural state identity (sound for safety *and*
/// per-robot fairness liveness).
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine; violations found during the search are reported as
/// [`CheckOutcome::Falsified`].
pub fn check_protocol<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<ExploreReport, SimError> {
    Ok(check_protocol_with_stats(protocol, initial, invariant, options)?.0)
}

/// [`check_protocol`], additionally returning the storage backend's
/// [`StoreStats`] (spilled bytes and the like) — everything in the report
/// itself is backend-independent by design.
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn check_protocol_with_stats<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<(ExploreReport, StoreStats), SimError> {
    let (report, stats, _) = explore(protocol, initial, invariant, options, Dedup::Exact)?;
    Ok((report, stats))
}

/// Exhaustive check — safety *and* liveness — on the canonical symmetry
/// quotient: states are deduplicated up to ring rotation/reflection and
/// robot relabeling (the `≈ 2n`-fold smaller graph of
/// [`check_safety_quotient`]), and liveness is decided soundly on that
/// quotient by threading the accumulated robot relabeling
/// ([`rr_core::relabel::RobotPerm`]) along quotient edges, so that fairness
/// — a per-robot property the quotient forgets — is re-established over
/// *concrete* robots.  The verdict equals [`check_protocol`]'s on every
/// instance; `tests/exhaustive_small_instances.rs` pins that equality over
/// the proved grid.
///
/// For invariants carrying auxiliary path state, or under fault budgets,
/// the exploration falls back to exact keys (like [`check_safety_quotient`])
/// and liveness is decided concretely — same verdict, no quotient savings.
/// In the (astronomically unlikely) event that the threaded analysis
/// exceeds its internal state cap, the checker transparently re-runs the
/// exact exploration, so the verdict is always complete.
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn check_protocol_quotient<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<ExploreReport, SimError> {
    Ok(check_protocol_quotient_with_stats(protocol, initial, invariant, options)?.0)
}

/// [`check_protocol_quotient`], additionally returning the storage
/// backend's [`StoreStats`].
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn check_protocol_quotient_with_stats<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<(ExploreReport, StoreStats), SimError> {
    let (report, stats, overflow) =
        explore(protocol, initial, invariant, options, Dedup::Canonical)?;
    if overflow {
        // The threaded quotient-liveness analysis hit its state cap: fall
        // back to the exact explorer, whose liveness analysis needs no
        // relabeling bookkeeping.
        return check_protocol_with_stats(protocol, initial, invariant, options);
    }
    Ok((report, stats))
}

/// Safety-only exhaustive check deduplicating on canonical state classes:
/// the `≈ 2n`-fold smaller symmetry quotient of the state graph.
///
/// Sound and complete for safety (a violating edge exists iff an isomorphic
/// one does); liveness is intentionally unavailable here because per-robot
/// fairness is not invariant under the robot relabeling the quotient
/// performs — use [`check_protocol`] for liveness.
///
/// Only invariants without auxiliary path state get the quotient: for an
/// invariant carrying one (the searching contamination state), a sound class
/// key would have to canonicalize the engine state and the auxiliary state
/// *jointly*, so this function falls back to exact keys — same exploration
/// cost as [`check_protocol`], minus its liveness analysis.  Prefer
/// [`check_protocol`] for those invariants.
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn check_safety_quotient<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<ExploreReport, SimError> {
    let options = options.safety_only();
    Ok(explore(protocol, initial, invariant, &options, Dedup::Canonical)?.0)
}

// ---------------------------------------------------------------------------
// The exploration engine.
// ---------------------------------------------------------------------------

/// Everything a worker's expansion loop reads; shared immutably across the
/// pool.
struct ExploreCtx<'a> {
    invariant: &'a dyn Invariant,
    /// Template fixing the auxiliary-state variant and instance; each node's
    /// stored 64 bits rehydrate through it.
    aug_template: &'a AugState,
    mode: InterleavingMode,
    dedup: Dedup,
    reach_mode: bool,
    faults: FaultBudget,
}

/// One expansion worker: a reusable engine plus scratch buffers.  Workers
/// never share mutable state; all cross-worker agreement happens in the
/// sequential merge.
struct Worker<P> {
    engine: Engine<P>,
    before: EngineState,
    frontier: Vec<u32>,
    ssync_buf: Vec<usize>,
    report: rr_corda::StepReport,
}

/// What expansion learned about a successor state from its lock-free
/// pre-probe of the visited map.
enum SuccState {
    /// The key was already mapped before this batch: a certain duplicate —
    /// no state was packed, only the node id travels to the merge.
    Known(u32),
    /// Not yet mapped at expansion time (it may still turn out to be a
    /// duplicate of a state discovered earlier in the same batch; the merge
    /// re-probes).
    Fresh {
        packed: PackedState,
        key: Key,
        aug_bits: u64,
        fault: u32,
        target: bool,
    },
}

/// One successor produced by expanding a node: the step code, the edge
/// flags, and the packed after-state when it looked new.
struct Succ {
    code: u32,
    progress: bool,
    state: SuccState,
}

/// The full expansion of one node: its successors in frontier order and, if
/// one of the frontier steps violated safety, the offending step + message
/// (successors after it are not produced, matching the sequential
/// short-circuit).
struct Expansion {
    succs: Vec<Succ>,
    violation: Option<(u32, String)>,
}

fn expand_node<P: Protocol>(
    worker: &mut Worker<P>,
    packed: &PackedState,
    node: &NodeMeta,
    visited: &Visited,
    ctx: &ExploreCtx<'_>,
) -> Expansion {
    let Worker {
        engine,
        before,
        frontier,
        ssync_buf,
        report,
    } = worker;
    engine.restore_packed(packed);
    engine.save_state_into(before);
    let crashed = fault_crashed(node.fault);
    let corrupts = fault_corrupts(node.fault);
    let before_aug = ctx.aug_template.from_key_bits(node.aug_bits);
    let before_view = state_view(before, crashed);
    frontier_codes(ctx.mode, before.robots(), crashed, frontier);
    fault_codes(ctx.mode, before.robots(), node.fault, &ctx.faults, frontier);

    let mut succs = Vec::with_capacity(frontier.len());
    let mut violation = None;
    let mut engine_dirty = false;
    for &code in frontier.iter() {
        // Crash edges are pure adversary bookkeeping: the engine state and
        // the auxiliary state are untouched; one more robot is removed from
        // every later frontier.  No step runs, so no safety check — but the
        // liveness target is re-evaluated, since exempting a robot can
        // *create* a target ("all non-crashed robots gathered").
        if let Some(victim) = crash_code_robot(code) {
            let new_crashed = crashed | 1 << victim;
            let new_fault = fault_word(new_crashed, corrupts);
            let key = make_key(packed, node.aug_bits, ctx.dedup, new_fault);
            let state = match visited.get(&key) {
                Some(id) => SuccState::Known(id),
                None => SuccState::Fresh {
                    packed: packed.clone(),
                    key,
                    aug_bits: node.aug_bits,
                    fault: new_fault,
                    target: ctx.reach_mode
                        && ctx
                            .invariant
                            .is_target(&before_view.with_crashed(new_crashed), &before_aug),
                },
            };
            succs.push(Succ {
                code,
                progress: false,
                state,
            });
            continue;
        }
        if engine_dirty {
            engine.restore_state(before);
        }
        engine_dirty = true;
        // Corrupt edges drive their underlying step with a one-shot
        // corruption armed at the victim's fresh-Look ordinal; the model is
        // disarmed right after, so every other edge of this node (and every
        // later node this worker expands) steps fault-free.
        let corruption = corrupt_code_parts(code);
        let mut new_fault = node.fault;
        if let Some((_, kind, offset)) = corruption {
            engine.arm_fault(FaultModel::CorruptLook {
                look: engine.look_count() + offset,
                kind,
            });
            new_fault = fault_word(crashed, corrupts + 1);
        }
        let step = if code & 3 == STEP_FAULT {
            code_engine_step(code).expect("corrupt codes drive a step")
        } else {
            decode_step_with(code, ssync_buf)
        };
        let result = engine.step_into(&step, &mut (), report);
        recycle_step(step, ssync_buf);
        if corruption.is_some() {
            engine.arm_fault(FaultModel::None);
        }
        if let Err(e) = result {
            violation = Some((code, e.to_string()));
            break;
        }
        let mut aug = before_aug.clone();
        let progress = ctx
            .invariant
            .observe_step(&mut aug, report, engine.configuration());
        let after_view =
            StateView::new(engine.configuration(), engine.robots()).with_crashed(crashed);
        if let Err(message) = ctx.invariant.check_edge(&before_view, &after_view, &aug) {
            violation = Some((code, message));
            break;
        }
        let aug_bits = aug.key_bits();
        let key = make_key_from_engine(engine, aug_bits, ctx.dedup, new_fault);
        let state = match visited.get(&key) {
            Some(id) => SuccState::Known(id),
            None => SuccState::Fresh {
                packed: engine.pack_behavior(),
                key,
                aug_bits,
                fault: new_fault,
                target: ctx.reach_mode && ctx.invariant.is_target(&after_view, &aug),
            },
        };
        succs.push(Succ {
            code,
            progress,
            state,
        });
    }
    Expansion { succs, violation }
}

/// Expands `batch` over the worker pool: contiguous chunks, one worker and
/// one engine per chunk, results reassembled in batch order.  With a single
/// worker (or a single node) the expansion runs inline.
fn expand_batch<P: Protocol + Clone + Send>(
    pool: &mut [Worker<P>],
    window: &[PackedState],
    batch: &[NodeMeta],
    visited: &Visited,
    ctx: &ExploreCtx<'_>,
) -> Vec<Expansion> {
    debug_assert_eq!(window.len(), batch.len());
    let workers = pool.len().min(batch.len()).max(1);
    if workers <= 1 {
        let worker = &mut pool[0];
        return window
            .iter()
            .zip(batch)
            .map(|(packed, node)| expand_node(worker, packed, node, visited, ctx))
            .collect();
    }
    let chunk_len = batch.len().div_ceil(workers);
    let mut outputs: Vec<Vec<Expansion>> = (0..workers).map(|_| Vec::new()).collect();
    rayon::scope(|scope| {
        for (((chunk, states), worker), out) in batch
            .chunks(chunk_len)
            .zip(window.chunks(chunk_len))
            .zip(pool.iter_mut())
            .zip(outputs.iter_mut())
        {
            scope.spawn(move |_| {
                *out = states
                    .iter()
                    .zip(chunk)
                    .map(|(packed, node)| expand_node(worker, packed, node, visited, ctx))
                    .collect();
            });
        }
    });
    outputs.into_iter().flatten().collect()
}

/// Resolution of one fresh-looking successor, computed by the parallel
/// per-shard dedup pass of the merge.
#[derive(Clone, Copy)]
enum MergeRes {
    /// The key was mapped before this batch: a certain duplicate with a
    /// final node id.  (In practice expansion's lock-free pre-probe already
    /// catches these; the re-probe keeps the merge sound on its own.)
    Known(u32),
    /// First seen in this batch: the ordinal into the shard's fresh list.
    /// Every in-batch duplicate of the same key resolves to the same
    /// ordinal; the sequential ordering pass assigns the global node id at
    /// the ordinal's first occurrence in window order.
    Fresh(u32),
}

/// Per-shard scratch state of one batch merge.  The merge is sharded the
/// same way the visited map is ([`shard_of`]), so the parallel phases touch
/// disjoint state by construction.
#[derive(Default)]
struct ShardScratch {
    /// This batch's fresh candidates owned by the shard, as (expansion,
    /// successor) indices **in window order** — the order the sequential
    /// ordering pass consumes them back in.
    cands: Vec<(u32, u32)>,
    /// Resolution per candidate, aligned with `cands`.
    res: Vec<MergeRes>,
    /// In-batch dedup map: fresh key → ordinal.
    pending: Memtable,
    /// Key per fresh ordinal (what the commit pass inserts).
    fresh_keys: Vec<Key>,
    /// Canonical signature per fresh ordinal (the exact-dedup statistic,
    /// computed in the parallel pass so the expensive part scales).
    fresh_sigs: Vec<StateSig>,
    /// Global node id per ordinal, filled by the ordering pass.
    assigned: Vec<u32>,
    /// Ordering-pass read cursor into `res`.
    cursor: usize,
}

impl ShardScratch {
    fn reset(&mut self) {
        self.cands.clear();
        self.res.clear();
        self.pending.clear();
        self.fresh_keys.clear();
        self.fresh_sigs.clear();
        self.assigned.clear();
        self.cursor = 0;
    }
}

/// Merge phase A, per shard: resolve each candidate against the visited map
/// (frozen for the whole batch) and the shard's own pending set.  Runs in
/// parallel across shards — all state touched is shard-local.
fn resolve_shard(
    sc: &mut ShardScratch,
    expansions: &[Expansion],
    visited: &Visited,
    track_canon: bool,
) {
    for &(e, s) in &sc.cands {
        let SuccState::Fresh { packed, key, .. } = &expansions[e as usize].succs[s as usize].state
        else {
            unreachable!("candidates are fresh successors");
        };
        // Expansion's lock-free pre-probe already consulted the (frozen)
        // visited map, so in practice a candidate is either fresh or an
        // in-batch duplicate; the re-probe keeps the merge sound on its own.
        if let Some(id) = visited.get(key) {
            sc.res.push(MergeRes::Known(id));
            continue;
        }
        let res = match sc.pending.entry(*key) {
            std::collections::hash_map::Entry::Occupied(entry) => MergeRes::Fresh(*entry.get()),
            std::collections::hash_map::Entry::Vacant(entry) => {
                let ordinal = sc.fresh_keys.len() as u32;
                entry.insert(ordinal);
                sc.fresh_keys.push(*key);
                if track_canon {
                    sc.fresh_sigs.push(packed.canonical_sig());
                }
                MergeRes::Fresh(ordinal)
            }
        };
        sc.res.push(res);
    }
}

/// Merge phase A driver: shards are dealt to the workers in contiguous
/// groups.  Small batches run inline — the result is identical either way
/// (each shard's work is self-contained), so the cutover is free to be a
/// pure performance choice.
fn resolve_batch(
    scratch: &mut [ShardScratch],
    expansions: &[Expansion],
    visited: &Visited,
    track_canon: bool,
    workers: usize,
) {
    let candidates: usize = scratch.iter().map(|sc| sc.cands.len()).sum();
    let workers = workers.clamp(1, VISITED_SHARDS);
    if workers <= 1 || candidates <= 256 {
        for sc in scratch.iter_mut() {
            resolve_shard(sc, expansions, visited, track_canon);
        }
        return;
    }
    let chunk = VISITED_SHARDS.div_ceil(workers);
    rayon::scope(|scope| {
        for group in scratch.chunks_mut(chunk) {
            scope.spawn(move |_| {
                for sc in group {
                    resolve_shard(sc, expansions, visited, track_canon);
                }
            });
        }
    });
}

/// Merge phase C driver: commit every shard's freshly assigned entries into
/// its memtable (shard-parallel like phase A), then let the `--mem-budget`
/// accountant seal/compact.  Skipped entirely when the BFS is stopping —
/// the map is dropped before anything could observe the difference.
fn commit_batch(visited: &mut Visited, scratch: &[ShardScratch], workers: usize) {
    let commit = |map: &mut Memtable, sc: &ShardScratch| {
        debug_assert_eq!(sc.assigned.len(), sc.fresh_keys.len(), "unassigned ordinal");
        for (ordinal, &id) in sc.assigned.iter().enumerate() {
            map.insert(sc.fresh_keys[ordinal], id);
        }
    };
    let fresh: usize = scratch.iter().map(|sc| sc.assigned.len()).sum();
    let workers = workers.clamp(1, VISITED_SHARDS);
    let maps = visited.shard_maps_mut();
    if workers <= 1 || fresh <= 256 {
        for (map, sc) in maps.iter_mut().zip(scratch.iter()) {
            commit(map, sc);
        }
    } else {
        let chunk = VISITED_SHARDS.div_ceil(workers);
        rayon::scope(|scope| {
            for (map_group, sc_group) in maps.chunks_mut(chunk).zip(scratch.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (map, sc) in map_group.iter_mut().zip(sc_group) {
                        commit(map, sc);
                    }
                });
            }
        });
    }
    visited.maybe_seal();
}

/// Resolves [`ExploreOptions::workers`]: `0` means one per available core,
/// and the result is clamped to `1..=BATCH` — a batch is never wider than
/// [`BATCH`] nodes, so extra workers would only ever idle (and the pool
/// allocates one engine per worker, so an unclamped huge request would try
/// to materialize that many engines).
fn resolve_workers(requested: usize) -> usize {
    let resolved = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    resolved.clamp(1, BATCH)
}

/// The exploration engine.  Returns the report, the storage backend's
/// stats, and whether the quotient-liveness analysis overflowed its thread
/// cap (in which case the report's outcome is not a verdict and the caller
/// must fall back to exact exploration).
fn explore<P: Protocol + Clone + Send>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
    dedup: Dedup,
) -> Result<(ExploreReport, StoreStats, bool), SimError> {
    let engine_options = EngineOptions::for_protocol(protocol);
    assert!(
        engine_options.view_order != ViewOrder::Alternating,
        "alternating view order makes behaviour depend on the look counter; \
         the state graph would not be well-defined"
    );
    let mut root_engine = Engine::new(protocol.clone(), initial.clone(), engine_options)?;
    // Oblivious protocols are pure functions of the snapshot: memoize the
    // Look decisions per (configuration, node) — behaviour is identical, and
    // the myriad re-Looks at shared configurations become hash probes.
    root_engine.enable_look_memo();
    let k = root_engine.num_robots();
    assert!(k <= 20, "exhaustive checking is for small instances");
    assert!(
        initial.n() <= MAX_CANONICAL_N,
        "exhaustive checking supports n ≤ {MAX_CANONICAL_N}"
    );
    assert!(options.max_states < u32::MAX as usize, "node ids are u32");
    let full_mask: u32 = (1u32 << k) - 1;
    assert!(
        options.faults.starve_mask & !full_mask == 0,
        "starve_mask names robots outside 0..k"
    );
    let reach_mode = invariant.liveness_mode() == LivenessMode::Reach;
    let aug_template = invariant.initial_aug(initial);
    // The quotient is sound only when the whole model-checking state is the
    // engine state; with auxiliary path state, fall back to exact keys (the
    // invariant's variant is fixed for the entire run).  Fault budgets also
    // force exact keys: the crashed mask and the fairness exemptions are
    // per-robot-id, which relabeling does not preserve.
    let effective_dedup = match (dedup, &aug_template) {
        (Dedup::Canonical, AugState::None) if options.faults.is_none() => Dedup::Canonical,
        _ => Dedup::Exact,
    };
    let workers = resolve_workers(options.workers);

    let root_state = root_engine.save_state();
    let root_packed = root_engine.pack_behavior();
    let root_bits = aug_template.key_bits();
    let root_target = reach_mode && invariant.is_target(&state_view(&root_state, 0), &aug_template);

    let mut visited = Visited::new(options.store, options.mem_budget);
    let root_key = make_key(&root_packed, root_bits, effective_dedup, 0);
    visited.insert(root_key, 0);
    // Canonical classes among the stored states (exact-dedup statistic):
    // each signature is computed once, straight from the worker engine, when
    // its state is first discovered.
    let track_canon = dedup == Dedup::Exact;
    let mut canonical_classes: HashSet<StateSig, rr_corda::packed::SigHashBuilder> =
        HashSet::default();
    if track_canon {
        canonical_classes.insert(root_packed.canonical_sig());
    }
    let mut store: Box<dyn StateStore> = match options.store {
        StoreKind::Mem => Box::new(MemStore::new()),
        StoreKind::Spill => Box::new(SpillStore::new(options.mem_budget)),
    };
    let mut sink: Box<dyn EdgeSink> = match options.store {
        StoreKind::Mem => Box::new(MemEdges::new()),
        StoreKind::Spill => Box::new(SpillEdges::new()),
    };
    let mut meta = vec![NodeMeta {
        aug_bits: root_bits,
        fault: 0,
        parent: NO_PARENT,
        parent_code: 0,
        target: root_target,
    }];
    let root_bytes = 8 * root_packed.words().len() as u64;
    store.push(root_packed);
    let mut offsets: Vec<u32> = vec![0];

    let mut progress_edges: u64 = 0;
    let mut peak_resident = 1usize;
    let mut peak_resident_bytes = root_bytes;
    let mut budget: Option<(usize, usize)> = None;
    let mut safety_ce: Option<Counterexample> = None;

    let mut pool: Vec<Worker<P>> = (0..workers)
        .map(|_| Worker {
            engine: root_engine.clone(),
            before: root_state.clone(),
            frontier: Vec::new(),
            ssync_buf: Vec::new(),
            report: rr_corda::StepReport::default(),
        })
        .collect();
    let ctx = ExploreCtx {
        invariant,
        aug_template: &aug_template,
        mode: options.interleaving,
        dedup: effective_dedup,
        reach_mode,
        faults: options.faults,
    };

    // Batch-synchronous BFS: expand the next window of nodes in parallel,
    // then merge the batch.  The merge is itself mostly parallel — partition
    // the fresh candidates by visited-map shard, dedup per shard in parallel
    // (the visited map is frozen for the whole batch, so probes are
    // lock-free), then a sequential ordering pass walks the expansions in
    // window order assigning node ids — so node ids, edge order and early
    // stops are exactly those of a sequential breadth-first sweep, for every
    // worker count and backend.
    let mut expand_nanos: u64 = 0;
    let mut merge_nanos: u64 = 0;
    let mut scratch: Vec<ShardScratch> = (0..VISITED_SHARDS)
        .map(|_| ShardScratch::default())
        .collect();
    let mut next = 0usize;
    'bfs: while next < meta.len() {
        let batch_end = meta.len().min(next + BATCH);
        let expand_start = Instant::now();
        let expansions = {
            let window = store.window(next, batch_end);
            expand_batch(&mut pool, &window, &meta[next..batch_end], &visited, &ctx)
        };
        expand_nanos += expand_start.elapsed().as_nanos() as u64;
        let merge_start = Instant::now();
        // Residency sampling point: immediately before each expansion's
        // ordering pass — stored states plus every successor still
        // buffered (this expansion's and later ones').  Suffix sums make the
        // per-expansion sample O(1).
        let mut buffered: Vec<(usize, u64)> = vec![(0, 0); expansions.len() + 1];
        for (i, expansion) in expansions.iter().enumerate().rev() {
            let mut fresh = buffered[i + 1];
            for succ in &expansion.succs {
                if let SuccState::Fresh { packed, .. } = &succ.state {
                    fresh.0 += 1;
                    fresh.1 += 8 * packed.words().len() as u64;
                }
            }
            buffered[i] = fresh;
        }

        // Merge phase 1 (sequential, cheap): partition the fresh candidates
        // by shard, preserving window order within each shard.
        for sc in scratch.iter_mut() {
            sc.reset();
        }
        for (e, expansion) in expansions.iter().enumerate() {
            for (s, succ) in expansion.succs.iter().enumerate() {
                if let SuccState::Fresh { key, .. } = &succ.state {
                    scratch[shard_of(key)].cands.push((e as u32, s as u32));
                }
            }
        }
        // Merge phase 2 (parallel): per-shard dedup + canonical signatures.
        resolve_batch(&mut scratch, &expansions, &visited, track_canon, workers);

        // Merge phase 3 (sequential): the ordering pass.  Walks expansions
        // in window order, consuming each shard's resolutions back in the
        // order phase 1 produced them, and assigns global node ids at first
        // occurrences — reproducing the sequential sweep exactly, including
        // where it trips the state budget or stops on a violation.
        let mut stopping = false;
        'order: for (offset, expansion) in expansions.into_iter().enumerate() {
            let i = next + offset;
            peak_resident = peak_resident.max(meta.len() + buffered[offset].0);
            peak_resident_bytes = peak_resident_bytes.max(
                store.payload_bytes()
                    + buffered[offset].1
                    + meta.len() as u64 * VISITED_ENTRY_BYTES,
            );
            for succ in expansion.succs {
                let to = match succ.state {
                    SuccState::Known(id) => id,
                    SuccState::Fresh {
                        packed,
                        key,
                        aug_bits,
                        fault,
                        target,
                    } => {
                        let sc = &mut scratch[shard_of(&key)];
                        let res = sc.res[sc.cursor];
                        sc.cursor += 1;
                        match res {
                            MergeRes::Known(id) => id,
                            MergeRes::Fresh(ordinal) => {
                                let ordinal = ordinal as usize;
                                if ordinal < sc.assigned.len() {
                                    // In-batch duplicate of an earlier fresh
                                    // successor; its id is already fixed.
                                    sc.assigned[ordinal]
                                } else {
                                    debug_assert_eq!(
                                        ordinal,
                                        sc.assigned.len(),
                                        "ordinals are assigned in shard order"
                                    );
                                    if meta.len() >= options.max_states {
                                        budget = Some((meta.len(), offsets.len() - 1));
                                        stopping = true;
                                        break 'order;
                                    }
                                    if track_canon {
                                        // One decode-based signature per
                                        // *stored* state, computed in the
                                        // parallel phase.
                                        canonical_classes.insert(sc.fresh_sigs[ordinal]);
                                    }
                                    let id = meta.len() as u32;
                                    sc.assigned.push(id);
                                    store.push(packed);
                                    meta.push(NodeMeta {
                                        aug_bits,
                                        fault,
                                        parent: i as u32,
                                        parent_code: succ.code,
                                        target,
                                    });
                                    id
                                }
                            }
                        }
                    }
                };
                progress_edges += u64::from(succ.progress);
                sink.push(Edge {
                    to,
                    code: succ.code,
                    progress: succ.progress,
                });
            }
            if let Some((code, message)) = expansion.violation {
                let mut codes = codes_from_root(&meta, i);
                codes.push(code);
                let mut prefix = Vec::new();
                let mut faults = Vec::new();
                realize_codes(&codes, 0, &mut prefix, &mut faults);
                safety_ce = Some(Counterexample {
                    kind: ViolationKind::Safety,
                    message,
                    prefix,
                    cycle: Vec::new(),
                    faults,
                    starved: options.faults.starve_mask,
                });
                stopping = true;
                break 'order;
            }
            assert!(sink.len() <= u64::from(u32::MAX), "edge offsets are u32");
            offsets.push(sink.len() as u32);
        }
        if stopping {
            merge_nanos += merge_start.elapsed().as_nanos() as u64;
            break 'bfs;
        }
        // Merge phase 4 (parallel): commit the batch's assignments into the
        // shard memtables, then give the budget accountant a seal point.
        commit_batch(&mut visited, &scratch, workers);
        merge_nanos += merge_start.elapsed().as_nanos() as u64;
        next = batch_end;
    }

    debug_assert_eq!(store.len(), meta.len(), "store and metadata desynced");
    let target_states = meta.iter().filter(|n| n.target).count();
    let quotient_states = match dedup {
        Dedup::Exact => canonical_classes.len(),
        Dedup::Canonical => meta.len(),
    };
    let edge_count = sink.len();
    // The visited map has served its purpose; free it before the liveness
    // pass loads the edges back, so the load replaces rather than adds to
    // the peak footprint.  For the spill backend the drop also unlinks the
    // on-disk run file — the runs are exploration-only state.
    let visited_spilled_bytes = visited.spilled_bytes();
    drop(visited);
    let mut quotient_overflow = false;
    let outcome = if let Some(ce) = safety_ce {
        CheckOutcome::Falsified(Box::new(ce))
    } else if let Some((discovered, completed_expansions)) = budget {
        CheckOutcome::BudgetExceeded {
            discovered,
            completed_expansions,
        }
    } else if options.check_liveness {
        let edges = sink.finish();
        let graph = Graph {
            meta: &meta,
            offsets: &offsets,
            edges: &edges,
        };
        let violation = if effective_dedup == Dedup::Canonical {
            match quotient_liveness_violation(
                &graph,
                store.as_mut(),
                &mut pool[0],
                full_mask,
                invariant,
            ) {
                Ok(violation) => violation,
                Err(QuotientOverflow) => {
                    quotient_overflow = true;
                    None
                }
            }
        } else {
            liveness_violation(&graph, full_mask, options.faults.starve_mask, invariant)
        };
        match violation {
            Some(ce) => CheckOutcome::Falsified(Box::new(ce)),
            None => CheckOutcome::Verified,
        }
    } else {
        CheckOutcome::Verified
    };

    let stats = StoreStats {
        store: options.store,
        spilled_bytes: store.spilled_bytes() + sink.spilled_bytes(),
        visited_spilled_bytes,
        expand_nanos,
        merge_nanos,
    };
    let report = ExploreReport {
        invariant: invariant.name(),
        interleaving: options.interleaving,
        states: meta.len(),
        quotient_states,
        edges: edge_count,
        target_states,
        progress_edges,
        peak_resident_nodes: peak_resident,
        peak_resident_bytes,
        state_bytes: store.payload_bytes(),
        outcome,
    };
    Ok((report, stats, quotient_overflow))
}

/// Edge codes from the root to node `i`, following BFS parent pointers.
fn codes_from_root(meta: &[NodeMeta], mut i: usize) -> Vec<u32> {
    let mut codes = Vec::new();
    while meta[i].parent != NO_PARENT {
        codes.push(meta[i].parent_code);
        i = meta[i].parent as usize;
    }
    codes.reverse();
    codes
}

/// Searches the explored graph for a fair schedule that never makes
/// progress: a strongly connected subgraph of non-target states, reachable
/// from the root through non-target states, whose non-progress internal
/// edges activate every robot the fairness obligation covers.  Crash-stopped
/// robots (constant within an SCC — crash edges strictly grow the mask, so
/// they can never close a cycle) and starved robots are exempt.  Returns the
/// corresponding lasso.
fn liveness_violation(
    graph: &Graph<'_>,
    full_mask: u32,
    starve_mask: u32,
    invariant: &dyn Invariant,
) -> Option<Counterexample> {
    let nodes = graph.meta;
    if nodes[0].target {
        return None;
    }
    let (reachable, bfs_parent) = reach_avoiding_targets(graph);
    // Eligible lasso edges: non-progress, between reachable non-target
    // states.  (Target states are never `reachable`, except the root which
    // was checked above.)
    let eligible = |u: usize, e: &Edge| reachable[u] && reachable[e.to as usize] && !e.progress;

    let (scc, scc_count) = tarjan_scc(graph, &eligible);

    // Fairness coverage per SCC: the union of activation masks over internal
    // eligible edges, plus whether the SCC has any internal edge at all, and
    // the fairness obligation — all robots minus the SCC's crashed mask
    // (every node of an SCC shares it) minus the starved robots.
    let mut coverage = vec![0u32; scc_count];
    let mut has_edge = vec![false; scc_count];
    let mut required = vec![full_mask & !starve_mask; scc_count];
    for u in 0..nodes.len() {
        required[scc[u]] = full_mask & !fault_crashed(nodes[u].fault) & !starve_mask;
        for e in graph.out(u) {
            if eligible(u, e) && scc[e.to as usize] == scc[u] {
                coverage[scc[u]] |= step_activation_mask(e.code);
                has_edge[scc[u]] = true;
            }
        }
    }
    let bad = (0..scc_count).find(|&c| has_edge[c] && coverage[c] & required[c] == required[c])?;

    // Entry node: the first (lowest-index, hence BFS-closest) node of the bad
    // SCC; its prefix avoids targets by construction of `bfs_parent`.
    let entry = (0..nodes.len())
        .find(|&u| scc[u] == bad)
        .expect("non-empty SCC");
    let mut prefix_codes = Vec::new();
    let mut cur = entry;
    while let Some((p, ei)) = bfs_parent[cur] {
        prefix_codes.push(graph.out(p)[ei].code);
        cur = p;
    }
    prefix_codes.reverse();

    let cycle_codes = covering_cycle(graph, &scc, bad, entry, required[bad], &eligible);
    let mut prefix = Vec::new();
    let mut faults = Vec::new();
    realize_codes(&prefix_codes, 0, &mut prefix, &mut faults);
    let mut cycle = Vec::new();
    realize_codes(&cycle_codes, prefix.len(), &mut cycle, &mut faults);
    let what = match invariant.liveness_mode() {
        LivenessMode::Reach => "never reaching the target",
        LivenessMode::ReachRepeatedly => "never making progress again",
    };
    let exempt = full_mask & !required[bad];
    let message = if exempt == 0 {
        format!("fair schedule (every robot activated in each cycle iteration) {what}")
    } else {
        format!(
            "fair-modulo-faults schedule (every non-crashed, non-starved robot activated in \
             each cycle iteration) {what}"
        )
    };
    Some(Counterexample {
        kind: ViolationKind::Liveness,
        message,
        prefix,
        cycle,
        faults,
        starved: starve_mask,
    })
}

/// A non-empty closed walk from `entry` back to `entry` inside SCC
/// `target_scc`, using only eligible edges, whose activation masks cover
/// `required` (the fairness obligation; possibly a strict subset of the
/// robots, or empty, under fault exemptions).  Returned as edge codes.
fn covering_cycle(
    graph: &Graph<'_>,
    scc: &[usize],
    target_scc: usize,
    entry: usize,
    required: u32,
    eligible: &dyn Fn(usize, &Edge) -> bool,
) -> Vec<u32> {
    // BFS inside the SCC from `from`, stopping as soon as `stop(u, e)` holds
    // for an edge about to be relaxed; returns the end node and the walk
    // (as (node, edge-index) pairs) including that stopping edge.
    #[allow(clippy::type_complexity)]
    let walk_until =
        |from: usize, stop: &dyn Fn(usize, &Edge) -> bool| -> (usize, Vec<(usize, usize)>) {
            let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut queue = VecDeque::from([from]);
            let mut seen: HashSet<usize> = HashSet::from([from]);
            while let Some(u) = queue.pop_front() {
                for (ei, e) in graph.out(u).iter().enumerate() {
                    if !eligible(u, e) || scc[e.to as usize] != target_scc {
                        continue;
                    }
                    if stop(u, e) {
                        // Reconstruct from → u, then append (u, ei).
                        let mut walk = vec![(u, ei)];
                        let mut cur = u;
                        while cur != from {
                            let (p, pei) = parent[&cur];
                            walk.push((p, pei));
                            cur = p;
                        }
                        walk.reverse();
                        return (e.to as usize, walk);
                    }
                    if seen.insert(e.to as usize) {
                        parent.insert(e.to as usize, (u, ei));
                        queue.push_back(e.to as usize);
                    }
                }
            }
            unreachable!("SCC is strongly connected and covers the mask");
        };
    let append = |walk: Vec<(usize, usize)>, codes: &mut Vec<u32>, covered: &mut u32| {
        for (n, ei) in walk {
            let e = &graph.out(n)[ei];
            *covered |= step_activation_mask(e.code);
            codes.push(e.code);
        }
    };

    let mut codes = Vec::new();
    let mut covered = 0u32;
    let mut cur = entry;
    while covered & required != required {
        let missing = required & !covered;
        let (end, walk) = walk_until(cur, &|_, e: &Edge| {
            step_activation_mask(e.code) & missing != 0
        });
        append(walk, &mut codes, &mut covered);
        cur = end;
    }
    // Close the walk — unconditionally when the obligation was empty (fully
    // exempt SCC), so the lasso cycle is never empty.
    if cur != entry || codes.is_empty() {
        let (end, walk) = walk_until(cur, &|_, e: &Edge| e.to as usize == entry);
        append(walk, &mut codes, &mut covered);
        debug_assert_eq!(end, entry);
    }
    codes
}

// ---------------------------------------------------------------------------
// Quotient-sound liveness: threading robot relabelings along quotient edges.
// ---------------------------------------------------------------------------
//
// The canonical quotient identifies states up to ring automorphism and robot
// relabeling, which safety survives but per-robot fairness does not: a cycle
// in the quotient graph whose raw activation masks cover every robot need
// not correspond to any fair concrete cycle (the "robots" named by the masks
// are renamed at every edge), and conversely a fair concrete lasso may
// project onto a quotient cycle whose raw masks look unfair.  The analysis
// below restores soundness *and* completeness by threading the accumulated
// relabeling along quotient edges:
//
// * each stored edge `u --code--> v` carries the deterministic alignment
//   `π = relabel_onto(step(u, code), v)` (robot `i` of the actual successor
//   is robot `π(i)` of the stored representative);
// * a *thread* is a pair `(u, σ)` — a quotient state plus the relabeling
//   accumulated since the thread's seed; traversing the edge above maps
//   `(u, σ) → (v, σ ∘ π⁻¹)`, and the robots *concretely* activated are
//   `σ(mask)`;
// * a fair non-progress concrete lasso exists **iff** some SCC of the
//   threaded graph (seeded at `(u, id)` for every member `u` of a candidate
//   quotient SCC) has an internal edge and its internal `σ(mask)` union
//   covers every robot.  Completeness: a concrete lasso's projection,
//   walked from `(u₀, id)` and repeated `ord(Λ)` times (Λ the relabeling
//   composed along one traversal), is a closed threaded walk whose first
//   traversal already realizes full coverage.  Soundness: a covering closed
//   threaded walk realizes, from any concrete state aligned to its entry, a
//   concrete schedule that repeats the *same* step sequence each traversal
//   (the thread closes, so the alignment recurrence returns to its start),
//   and by protocol equivariance the reached states differ from the entry
//   only by a fixed dihedral symmetry `d` — so the concrete run closes
//   exactly after `ord(d) ≤ n` traversals.  The realization below repeats
//   the walk until the engine's exact behavioural signature closes, and
//   panics past `n + 2` traversals (that would be a bookkeeping bug, not an
//   input property).
//
// The whole analysis is a pure function of the stored quotient graph, so
// verdicts and extracted counterexamples remain byte-identical across
// worker counts and storage backends.

/// Hard cap on threaded (quotient state × relabeling) pairs per candidate
/// SCC.  Thread spaces are bounded by |SCC| × |subgroup generated by the
/// edge relabelings| and stay tiny in practice; the cap is a guard rail —
/// exceeding it aborts the quotient analysis and the caller falls back to
/// exact exploration, so verdicts never suffer.
const THREAD_CAP: usize = 4_000_000;

/// Marker: the quotient-liveness analysis gave up (thread cap); the caller
/// must decide liveness by exact exploration instead.
struct QuotientOverflow;

/// One stored edge internal to a candidate SCC, with its relabeling.
struct AlignedEdge {
    to_local: u32,
    mask: u32,
    code: u32,
    perm: RobotPerm,
}

/// One edge of the threaded graph.
struct ThreadEdge {
    to: u32,
    /// The thread-realized activation mask `σ_from(stored mask)`: which
    /// *concrete* robots this edge activates on threads seeded at the
    /// identity.
    mask: u32,
    code: u32,
    perm: RobotPerm,
}

/// The relabeling π of one stored quotient edge `(from, code, to)`: step
/// `from` by the coded step on the worker's scratch engine and align the
/// successor onto the stored representative `to` (robot `i` of the actual
/// successor ↦ robot `π(i)` of `to`).  Pure in the stored bits, hence
/// identical for every worker count and storage backend.
fn edge_relabeling<P: Protocol>(
    worker: &mut Worker<P>,
    from: &PackedState,
    to: &PackedState,
    code: u32,
) -> RobotPerm {
    let Worker {
        engine,
        ssync_buf,
        report,
        ..
    } = worker;
    engine.restore_packed(from);
    let step = decode_step_with(code, ssync_buf);
    engine
        .step_into(&step, &mut (), report)
        .expect("stored quotient edge replays");
    recycle_step(step, ssync_buf);
    let after = engine.pack_behavior();
    relabel_onto(&after, to).expect("quotient edge endpoints share a canonical class")
}

/// Remaps a regular step code through a robot relabeling: the same step
/// kind, its activation set read as concrete robots.  Fault codes never
/// occur here (fault budgets force exact dedup).
fn remap_code(code: u32, phi: &RobotPerm) -> u32 {
    let payload = code >> 2;
    match code & 3 {
        STEP_SSYNC => phi.image_mask(payload) << 2 | STEP_SSYNC,
        STEP_LOOK => (phi.apply(payload as usize) as u32) << 2 | STEP_LOOK,
        STEP_EXECUTE => (phi.apply(payload as usize) as u32) << 2 | STEP_EXECUTE,
        _ => unreachable!("quotient graphs have no fault edges"),
    }
}

/// Decides liveness on the canonical quotient graph — the threaded-analysis
/// counterpart of [`liveness_violation`], sound and complete for per-robot
/// weak fairness.  Requires fault-free canonical exploration (the explorer
/// guarantees it: fault budgets and auxiliary state force exact dedup).
fn quotient_liveness_violation<P: Protocol + Clone>(
    graph: &Graph<'_>,
    store: &mut dyn StateStore,
    worker: &mut Worker<P>,
    full_mask: u32,
    invariant: &dyn Invariant,
) -> Result<Option<Counterexample>, QuotientOverflow> {
    let meta = graph.meta;
    if meta[0].target {
        return Ok(None);
    }
    let k = full_mask.count_ones() as usize;
    assert!(
        k <= MAX_PERM_ROBOTS,
        "quotient liveness supports k ≤ {MAX_PERM_ROBOTS}"
    );
    let (reachable, bfs_parent) = reach_avoiding_targets(graph);
    let eligible = |u: usize, e: &Edge| reachable[u] && reachable[e.to as usize] && !e.progress;
    let (scc, scc_count) = tarjan_scc(graph, &eligible);

    // Candidate SCCs: any internal eligible edge at all.  No coverage
    // prefilter on the raw masks — the quotient renames robots at every
    // edge, so only the threaded analysis can evaluate fairness coverage.
    let mut has_edge = vec![false; scc_count];
    for u in 0..meta.len() {
        for e in graph.out(u) {
            if eligible(u, e) && scc[e.to as usize] == scc[u] {
                has_edge[scc[u]] = true;
            }
        }
    }
    // Group candidate members once, in node-id order; candidates are then
    // processed in order of their first (lowest-id) member — deterministic
    // in the quotient graph alone.
    let mut slot = vec![u32::MAX; scc_count];
    let mut candidates: Vec<Vec<u32>> = Vec::new();
    for (u, &c) in scc.iter().enumerate().take(meta.len()) {
        if !has_edge[c] {
            continue;
        }
        if slot[c] == u32::MAX {
            slot[c] = candidates.len() as u32;
            candidates.push(Vec::new());
        }
        candidates[slot[c] as usize].push(u as u32);
    }

    for members in &candidates {
        if let Some(ce) = threaded_violation_in_scc(
            graph,
            store,
            worker,
            members,
            &scc,
            &eligible,
            &bfs_parent,
            invariant,
            full_mask,
        )? {
            return Ok(Some(ce));
        }
    }
    Ok(None)
}

/// Builds the threaded graph of one candidate SCC, looks for a covering
/// threaded SCC, and realizes the concrete counterexample if one exists.
#[allow(clippy::too_many_arguments)]
fn threaded_violation_in_scc<P: Protocol + Clone>(
    graph: &Graph<'_>,
    store: &mut dyn StateStore,
    worker: &mut Worker<P>,
    members: &[u32],
    scc: &[usize],
    eligible: &dyn Fn(usize, &Edge) -> bool,
    bfs_parent: &[Option<(usize, usize)>],
    invariant: &dyn Invariant,
    full_mask: u32,
) -> Result<Option<Counterexample>, QuotientOverflow> {
    let c = scc[members[0] as usize];
    let k = full_mask.count_ones() as usize;
    let identity = RobotPerm::identity(k);
    if members.len() >= THREAD_CAP {
        return Err(QuotientOverflow);
    }

    // Stored representatives of the members, and the aligned internal edges.
    let local: HashMap<u32, u32> = members
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, i as u32))
        .collect();
    let packed: Vec<PackedState> = members.iter().map(|&u| store.get(u as usize)).collect();
    let mut out: Vec<Vec<AlignedEdge>> = members.iter().map(|_| Vec::new()).collect();
    for (lu, &u) in members.iter().enumerate() {
        for e in graph.out(u as usize) {
            if !eligible(u as usize, e) || scc[e.to as usize] != c {
                continue;
            }
            let lv = local[&e.to];
            let perm = edge_relabeling(worker, &packed[lu], &packed[lv as usize], e.code);
            out[lu].push(AlignedEdge {
                to_local: lv,
                mask: step_activation_mask(e.code),
                code: e.code,
                perm,
            });
        }
    }

    // Threaded BFS, every member seeded at the identity relabeling (seeding
    // at the identity is complete: a concrete lasso's threaded projection
    // from `(u₀, id)` closes within `ord(Λ)` traversals and already covers
    // fully on its first — see the module commentary above).
    let mut thread_of: HashMap<(u32, RobotPerm), u32> = HashMap::new();
    let mut threads: Vec<(u32, RobotPerm)> = Vec::new();
    let mut t_out: Vec<Vec<ThreadEdge>> = Vec::new();
    for lu in 0..members.len() as u32 {
        thread_of.insert((lu, identity), lu);
        threads.push((lu, identity));
        t_out.push(Vec::new());
    }
    let mut cursor = 0usize;
    while cursor < threads.len() {
        let (lu, sigma) = threads[cursor];
        let mut edges_here = Vec::with_capacity(out[lu as usize].len());
        for edge in &out[lu as usize] {
            let next_sigma = sigma.compose(&edge.perm.inverse());
            let key = (edge.to_local, next_sigma);
            let to = match thread_of.get(&key) {
                Some(&t) => t,
                None => {
                    if threads.len() >= THREAD_CAP {
                        return Err(QuotientOverflow);
                    }
                    let t = threads.len() as u32;
                    thread_of.insert(key, t);
                    threads.push(key);
                    t_out.push(Vec::new());
                    t
                }
            };
            edges_here.push(ThreadEdge {
                to,
                mask: sigma.image_mask(edge.mask),
                code: edge.code,
                perm: edge.perm,
            });
        }
        t_out[cursor] = edges_here;
        cursor += 1;
    }

    // SCC + fairness coverage on the threaded graph.
    let (t_scc, t_count) = tarjan_core(threads.len(), &|v| t_out[v].len(), &|v, i| {
        Some(t_out[v][i].to as usize)
    });
    let mut coverage = vec![0u32; t_count];
    let mut t_has_edge = vec![false; t_count];
    for v in 0..threads.len() {
        for e in &t_out[v] {
            if t_scc[e.to as usize] == t_scc[v] {
                coverage[t_scc[v]] |= e.mask;
                t_has_edge[t_scc[v]] = true;
            }
        }
    }
    let Some(bad) = (0..t_count).find(|&c| t_has_edge[c] && coverage[c] & full_mask == full_mask)
    else {
        return Ok(None);
    };
    // Entry: the lowest-index thread node of the bad threaded SCC, and a
    // covering closed thread-walk through it.
    let entry_t = (0..threads.len())
        .find(|&v| t_scc[v] == bad)
        .expect("non-empty SCC");
    let walk = covering_thread_cycle(&t_out, &t_scc, bad, entry_t, full_mask);

    // Stored-tree prefix root → entry's stored node, with per-edge
    // alignments (the worker's engine is the shared scratch).
    let (entry_local, _) = threads[entry_t];
    let entry_node = members[entry_local as usize] as usize;
    let mut tree: Vec<(usize, usize)> = Vec::new();
    let mut cur = entry_node;
    while let Some((p, ei)) = bfs_parent[cur] {
        tree.push((p, ei));
        cur = p;
    }
    tree.reverse();
    let mut prefix_perms: Vec<(u32, RobotPerm)> = Vec::new();
    for &(p, ei) in &tree {
        let e = &graph.out(p)[ei];
        let from = store.get(p);
        let to = store.get(e.to as usize);
        prefix_perms.push((e.code, edge_relabeling(worker, &from, &to, e.code)));
    }

    // Realize concretely.  The stored root *is* the concrete initial state,
    // so the alignment φ starts at the identity; every realized step remaps
    // its stored activation set through the current φ, then advances φ by
    // the edge's relabeling.
    let mut engine = worker.engine.clone();
    engine.restore_packed(&store.get(0));
    let mut report = rr_corda::StepReport::default();
    let mut phi = identity;
    let mut prefix: Vec<SchedulerStep> = Vec::new();
    for (code, perm) in prefix_perms {
        let step = decode_step(remap_code(code, &phi));
        engine
            .step_into(&step, &mut (), &mut report)
            .expect("realized prefix step replays");
        prefix.push(step);
        phi = phi.compose(&perm.inverse());
    }
    debug_assert_eq!(
        engine.canonical_sig(),
        packed[entry_local as usize].canonical_sig(),
        "prefix realization left the entry's canonical class"
    );
    let entry_sig = engine.behavior_sig();

    // Repeat the covering walk until the concrete state closes on the exact
    // entry state (each traversal applies a fixed dihedral symmetry, so
    // closure happens within ord ≤ n traversals).
    let (n, _) = packed[entry_local as usize].instance();
    let max_traversals = n + 2;
    let mut cycle: Vec<SchedulerStep> = Vec::new();
    let mut closed = false;
    for _ in 0..max_traversals {
        for &(code, ref perm) in &walk {
            let step = decode_step(remap_code(code, &phi));
            engine
                .step_into(&step, &mut (), &mut report)
                .expect("realized cycle step replays");
            cycle.push(step);
            phi = phi.compose(&perm.inverse());
        }
        if engine.behavior_sig() == entry_sig {
            closed = true;
            break;
        }
    }
    assert!(
        closed,
        "quotient lasso failed to close within {max_traversals} traversals — \
         relabeling bookkeeping bug"
    );

    let what = match invariant.liveness_mode() {
        LivenessMode::Reach => "never reaching the target",
        LivenessMode::ReachRepeatedly => "never making progress again",
    };
    Ok(Some(Counterexample {
        kind: ViolationKind::Liveness,
        message: format!("fair schedule (every robot activated in each cycle iteration) {what}"),
        prefix,
        cycle,
        faults: Vec::new(),
        starved: 0,
    }))
}

/// A non-empty closed walk `entry → entry` in the threaded graph, inside
/// threaded SCC `target_scc`, whose realized masks cover `required` —
/// the threaded counterpart of [`covering_cycle`], returned as
/// `(stored code, edge relabeling)` pairs ready for realization.
fn covering_thread_cycle(
    t_out: &[Vec<ThreadEdge>],
    t_scc: &[usize],
    target_scc: usize,
    entry: usize,
    required: u32,
) -> Vec<(u32, RobotPerm)> {
    #[allow(clippy::type_complexity)]
    let walk_until =
        |from: usize, stop: &dyn Fn(&ThreadEdge) -> bool| -> (usize, Vec<(usize, usize)>) {
            let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut queue = VecDeque::from([from]);
            let mut seen: HashSet<usize> = HashSet::from([from]);
            while let Some(u) = queue.pop_front() {
                for (ei, e) in t_out[u].iter().enumerate() {
                    if t_scc[e.to as usize] != target_scc {
                        continue;
                    }
                    if stop(e) {
                        let mut walk = vec![(u, ei)];
                        let mut cur = u;
                        while cur != from {
                            let (p, pei) = parent[&cur];
                            walk.push((p, pei));
                            cur = p;
                        }
                        walk.reverse();
                        return (e.to as usize, walk);
                    }
                    if seen.insert(e.to as usize) {
                        parent.insert(e.to as usize, (u, ei));
                        queue.push_back(e.to as usize);
                    }
                }
            }
            unreachable!("threaded SCC is strongly connected and covers the mask");
        };
    let append =
        |walk: Vec<(usize, usize)>, steps: &mut Vec<(u32, RobotPerm)>, covered: &mut u32| {
            for (u, ei) in walk {
                let e = &t_out[u][ei];
                *covered |= e.mask;
                steps.push((e.code, e.perm));
            }
        };

    let mut steps = Vec::new();
    let mut covered = 0u32;
    let mut cur = entry;
    while covered & required != required {
        let missing = required & !covered;
        let (end, walk) = walk_until(cur, &|e| e.mask & missing != 0);
        append(walk, &mut steps, &mut covered);
        cur = end;
    }
    if cur != entry || steps.is_empty() {
        let (end, walk) = walk_until(cur, &|e| e.to as usize == entry);
        append(walk, &mut steps, &mut covered);
        debug_assert_eq!(end, entry);
    }
    steps
}

/// The non-target states reachable from the root through non-target states
/// (a fair path that visits a target has satisfied a Reach obligation, so
/// lassos must be reachable while avoiding targets), plus the BFS tree as
/// per-node `(parent, edge index)` — shared by the exact and the quotient
/// liveness analyses.
#[allow(clippy::type_complexity)]
fn reach_avoiding_targets(graph: &Graph<'_>) -> (Vec<bool>, Vec<Option<(usize, usize)>>) {
    let nodes = graph.meta;
    let mut reachable = vec![false; nodes.len()];
    let mut bfs_parent: Vec<Option<(usize, usize)>> = vec![None; nodes.len()];
    reachable[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for (ei, e) in graph.out(u).iter().enumerate() {
            let to = e.to as usize;
            if !nodes[to].target && !reachable[to] {
                reachable[to] = true;
                bfs_parent[to] = Some((u, ei));
                queue.push_back(to);
            }
        }
    }
    (reachable, bfs_parent)
}

/// Iterative Tarjan SCC over the subgraph of eligible edges.  Every node gets
/// an SCC id (nodes without eligible edges become singletons); returns the
/// per-node id assignment and the number of SCCs.
fn tarjan_scc(graph: &Graph<'_>, eligible: &dyn Fn(usize, &Edge) -> bool) -> (Vec<usize>, usize) {
    tarjan_core(graph.meta.len(), &|v| graph.out(v).len(), &|v, i| {
        let e = &graph.out(v)[i];
        eligible(v, e).then_some(e.to as usize)
    })
}

/// [`tarjan_scc`]'s algorithm over any graph given by an out-degree function
/// and an indexed edge-target function (`None` = skip this edge) — also run
/// over the threaded (state × relabeling) graph of the quotient-liveness
/// analysis.
fn tarjan_core(
    n: usize,
    degree: &dyn Fn(usize) -> usize,
    edge_target: &dyn Fn(usize, usize) -> Option<usize>,
) -> (Vec<usize>, usize) {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc = vec![0usize; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (node, next edge position); a node is initialized
    // the first time its frame is on top (pos == 0 implies first visit, as
    // pos is incremented before any child frame is pushed).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let mut advanced = false;
            let out_degree = degree(v);
            while *pos < out_degree {
                let target = edge_target(v, *pos);
                *pos += 1;
                let Some(w) = target else {
                    continue;
                };
                if index[w] == usize::MAX {
                    call.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if advanced {
                continue;
            }
            // v is finished.
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on_stack[w] = false;
                    scc[w] = scc_count;
                    if w == v {
                        break;
                    }
                }
                scc_count += 1;
            }
            let low_v = low[v];
            call.pop();
            if let Some(&(parent, _)) = call.last() {
                low[parent] = low[parent].min(low_v);
            }
        }
    }
    (scc, scc_count)
}

/// Result of replaying a counterexample on a fresh engine.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Whether the replay reproduced exactly the reported violation.
    pub reproduced: bool,
    /// What the replay observed (the violation message, or why it failed to
    /// reproduce).
    pub detail: String,
}

/// The victim's fresh-Look offset within `step`, for arming a one-shot
/// corruption at replay time (0 for its solo Look; its position within the
/// round's robot vector for SSYNC, where every member Looks freshly).
fn replay_look_offset(step: &SchedulerStep, robot: RobotId) -> Result<u64, String> {
    match step {
        SchedulerStep::Look(r) if *r == robot => Ok(0),
        SchedulerStep::SsyncRound(robots) => robots
            .iter()
            .position(|&r| r == robot)
            .map(|p| p as u64)
            .ok_or_else(|| "corrupt directive names a robot outside its round".to_string()),
        _ => Err("corrupt directive does not match its step".to_string()),
    }
}

/// Replays `ce` on a fresh [`Engine`] and checks that it demonstrates its
/// violation: a safety trace must run cleanly up to its final step and
/// violate there; a liveness lasso must run cleanly, return to the exact
/// state it entered the cycle with, and make no progress / reach no target
/// during the cycle (so the adversary can repeat it forever, fairly).
///
/// Fault directives are honoured: a [`FaultDirective::Crash`] removes its
/// robot from the legal schedule (replay fails if a later step activates
/// it) and switches the invariant views to the crashed mask; a
/// [`FaultDirective::Corrupt`] arms a one-shot
/// [`FaultModel::CorruptLook`] for exactly its step.  The fairness check
/// exempts crashed and starved robots, mirroring the explorer's per-SCC
/// obligation.
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn replay_counterexample<P: Protocol + Clone>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    ce: &Counterexample,
) -> Result<ReplayReport, SimError> {
    let engine_options = EngineOptions::for_protocol(protocol);
    let mut engine = Engine::new(protocol.clone(), initial.clone(), engine_options)?;
    let mut aug = invariant.initial_aug(initial);
    let reach_mode = invariant.liveness_mode() == LivenessMode::Reach;
    let full_mask = (1u32 << engine.num_robots()) - 1;
    let mut crashed: u32 = 0;

    // Applies the directives attached to schedule position `at`, then the
    // step itself; returns (progress, target) or the violation message.
    let apply = |engine: &mut Engine<P>,
                 aug: &mut AugState,
                 crashed: &mut u32,
                 step: &SchedulerStep,
                 at: usize|
     -> Result<(bool, bool), String> {
        let mut armed = false;
        for fault in &ce.faults {
            if fault.at() != at {
                continue;
            }
            match *fault {
                FaultDirective::Crash { robot, .. } => *crashed |= 1 << robot,
                FaultDirective::Corrupt { robot, kind, .. } => {
                    let offset = replay_look_offset(step, robot)?;
                    engine.arm_fault(FaultModel::CorruptLook {
                        look: engine.look_count() + offset,
                        kind,
                    });
                    armed = true;
                }
            }
        }
        if NondeterministicScheduler::activation_mask(step) & *crashed != 0 {
            if armed {
                engine.arm_fault(FaultModel::None);
            }
            return Err("schedule activates a crashed robot".to_string());
        }
        let before = engine.save_state();
        let result = engine.step(step, &mut ());
        if armed {
            engine.arm_fault(FaultModel::None);
        }
        let report = result.map_err(|e| e.to_string())?;
        let progress = invariant.observe_step(aug, &report, engine.configuration());
        let after = engine.save_state();
        invariant.check_edge(
            &state_view(&before, *crashed),
            &state_view(&after, *crashed),
            aug,
        )?;
        let target = reach_mode && invariant.is_target(&state_view(&after, *crashed), aug);
        Ok((progress, target))
    };

    match ce.kind {
        ViolationKind::Safety => {
            for (idx, step) in ce.prefix.iter().enumerate() {
                let last = idx + 1 == ce.prefix.len();
                match apply(&mut engine, &mut aug, &mut crashed, step, idx) {
                    Ok(_) if last => {
                        return Ok(ReplayReport {
                            reproduced: false,
                            detail: "final step did not violate".to_string(),
                        })
                    }
                    Ok(_) => {}
                    Err(detail) => {
                        return Ok(ReplayReport {
                            reproduced: last,
                            detail,
                        })
                    }
                }
            }
            Ok(ReplayReport {
                reproduced: false,
                detail: "empty safety trace".to_string(),
            })
        }
        ViolationKind::Liveness => {
            for (idx, step) in ce.prefix.iter().enumerate() {
                if let Err(detail) = apply(&mut engine, &mut aug, &mut crashed, step, idx) {
                    return Ok(ReplayReport {
                        reproduced: false,
                        detail: format!("prefix violated safety: {detail}"),
                    });
                }
            }
            if ce.cycle.is_empty() {
                return Ok(ReplayReport {
                    reproduced: false,
                    detail: "empty lasso cycle".to_string(),
                });
            }
            // Crash directives positioned at the cycle entry (trailing crash
            // edges of the explorer's prefix) take effect before the entry
            // checks.
            for fault in &ce.faults {
                if let FaultDirective::Crash { at, robot } = *fault {
                    if at == ce.prefix.len() {
                        crashed |= 1 << robot;
                    }
                }
            }
            let loop_state = engine.save_state();
            let loop_aug_bits = aug.key_bits();
            if reach_mode && invariant.is_target(&state_view(&loop_state, crashed), &aug) {
                return Ok(ReplayReport {
                    reproduced: false,
                    detail: "lasso entry already satisfies the target".to_string(),
                });
            }
            let required = full_mask & !crashed & !ce.starved;
            let mut progress_seen = false;
            let mut target_seen = false;
            let mut activated = 0u32;
            for (idx, step) in ce.cycle.iter().enumerate() {
                match apply(
                    &mut engine,
                    &mut aug,
                    &mut crashed,
                    step,
                    ce.prefix.len() + idx,
                ) {
                    Ok((progress, target)) => {
                        progress_seen |= progress;
                        target_seen |= target;
                        activated |= NondeterministicScheduler::activation_mask(step);
                    }
                    Err(detail) => {
                        return Ok(ReplayReport {
                            reproduced: false,
                            detail: format!("cycle violated safety: {detail}"),
                        });
                    }
                }
            }
            let closes = engine.save_state().exact_key() == loop_state.exact_key()
                && aug.key_bits() == loop_aug_bits;
            let fair = activated & required == required && activated & crashed == 0;
            let reproduced = closes && fair && !progress_seen && !target_seen;
            let detail = if reproduced {
                format!(
                    "lasso closes after {} steps, activates all non-exempt robots, no progress",
                    ce.cycle.len()
                )
            } else {
                format!("closes={closes} fair={fair} progress={progress_seen} target={target_seen}")
            };
            Ok(ReplayReport { reproduced, detail })
        }
    }
}

/// A deliberately broken protocol: `inner` with **one decision-table entry
/// overridden** — whenever the observing robot's supermin configuration view
/// equals `trigger`, the protocol returns `replacement` instead of the
/// inner decision.
///
/// Since an oblivious min-CORDA protocol *is* a function from view classes
/// to decisions, this is exactly a single-entry table mutation; the
/// exhaustive checker must detect it with a counterexample that replays.
#[derive(Debug, Clone)]
pub struct MutatedProtocol<P> {
    inner: P,
    trigger: View,
    replacement: Decision,
}

impl<P: Protocol> MutatedProtocol<P> {
    /// Wraps `inner`, overriding the decision of the view class whose
    /// supermin is `trigger`.
    #[must_use]
    pub fn new(inner: P, trigger: View, replacement: Decision) -> Self {
        MutatedProtocol {
            inner,
            trigger,
            replacement,
        }
    }

    /// The trigger for the configuration class of `config`.
    #[must_use]
    pub fn trigger_for(config: &Configuration) -> View {
        View::new(config.gap_sequence()).supermin()
    }
}

impl<P: Protocol> Protocol for MutatedProtocol<P> {
    fn name(&self) -> &str {
        "mutant"
    }

    fn capability(&self) -> rr_corda::MultiplicityCapability {
        self.inner.capability()
    }

    fn requires_exclusivity(&self) -> bool {
        self.inner.requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        if snapshot.supermin() == self.trigger {
            self.replacement
        } else {
            self.inner.compute(snapshot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, SearchingInvariant};
    use rr_core::{AlignProtocol, GatheringProtocol};
    use rr_ring::enumerate::enumerate_rigid_configurations;

    const MODES: [InterleavingMode; 2] = [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ];

    #[test]
    fn frontier_codes_match_the_nondeterministic_scheduler() {
        // The coded frontier is the scheduler's frontier, step for step, in
        // the same order — for ready robots, pending robots and both modes.
        let c = Configuration::from_gaps_at_origin(&[1, 1, 4]);
        let mut engine =
            Engine::with_default_options(rr_corda::protocol::GreedyGapWalker, c).unwrap();
        engine.step(&SchedulerStep::Look(1), &mut ()).unwrap();
        for mode in MODES {
            let scheduler = NondeterministicScheduler::new(mode);
            let expected = scheduler.frontier(&engine.scheduler_view());
            let mut codes = Vec::new();
            frontier_codes(mode, engine.robots(), 0, &mut codes);
            let decoded: Vec<SchedulerStep> = codes.iter().map(|&c| decode_step(c)).collect();
            assert_eq!(decoded, expected, "mode={mode}");
            for (code, step) in codes.iter().zip(&expected) {
                assert_eq!(
                    step_activation_mask(*code),
                    NondeterministicScheduler::activation_mask(step)
                );
                let mut buf = Vec::new();
                let with_buf = decode_step_with(*code, &mut buf);
                assert_eq!(&with_buf, step);
                recycle_step(with_buf, &mut buf);
            }
        }
    }

    #[test]
    fn gathering_is_verified_exhaustively_on_small_rings() {
        // Every rigid initial class of (6, 3) and (7, 3), both interleaving
        // spaces: safety + liveness proved, not sampled.
        for (n, k) in [(6usize, 3usize), (7, 3)] {
            for initial in enumerate_rigid_configurations(n, k) {
                for mode in MODES {
                    let report = check_protocol(
                        &GatheringProtocol::new(),
                        &initial,
                        &GatheringInvariant::new(),
                        &ExploreOptions::new(mode),
                    )
                    .unwrap();
                    assert!(
                        report.verified(),
                        "n={n} k={k} mode={mode}: {:?}",
                        report.outcome
                    );
                    assert!(report.target_states > 0, "n={n} k={k} mode={mode}");
                    assert!(report.quotient_states <= report.states);
                    assert!(report.edges > 0);
                    assert!(report.peak_resident_nodes >= report.states);
                }
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        // The headline determinism guarantee, in its smallest form: 1, 2 and
        // 5 workers produce identical reports on a verified cell and
        // identical counterexamples on a falsified one.  (The test suite in
        // tests/parallel_determinism.rs covers this property more broadly.)
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        for mode in MODES {
            let reports: Vec<ExploreReport> = [1usize, 2, 5]
                .iter()
                .map(|&w| {
                    check_protocol(
                        &GatheringProtocol::new(),
                        &initial,
                        &GatheringInvariant::new(),
                        &ExploreOptions::new(mode).with_workers(w),
                    )
                    .unwrap()
                })
                .collect();
            assert_eq!(reports[0], reports[1], "mode={mode}");
            assert_eq!(reports[0], reports[2], "mode={mode}");
        }
    }

    #[test]
    fn degenerate_worker_counts_are_clamped_and_well_defined() {
        // `0` resolves to one worker per available core; anything above the
        // batch width clamps to BATCH.  Every resolved count must produce
        // the same report as a single worker.
        assert_eq!(resolve_workers(1), 1);
        assert_eq!(resolve_workers(BATCH + 7), BATCH);
        assert_eq!(resolve_workers(usize::MAX), BATCH);
        let auto = resolve_workers(0);
        assert!((1..=BATCH).contains(&auto), "auto-detect clamps too");

        let initial = enumerate_rigid_configurations(6, 3).remove(0);
        let run = |w: usize| {
            check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(InterleavingMode::SsyncSubsets).with_workers(w),
            )
            .unwrap()
        };
        let reference = run(1);
        for degenerate in [0, BATCH + 7, usize::MAX] {
            assert_eq!(run(degenerate), reference, "workers={degenerate}");
        }
    }

    #[test]
    fn quotient_safety_pass_agrees_and_is_smaller() {
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        for mode in MODES {
            let concrete = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode).safety_only(),
            )
            .unwrap();
            let quotient = check_safety_quotient(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            assert!(concrete.verified() && quotient.verified(), "mode={mode}");
            // The quotient explorer's state count is exactly the number of
            // canonical classes the concrete explorer reports.
            assert_eq!(quotient.states, concrete.quotient_states, "mode={mode}");
            assert!(quotient.states <= concrete.states, "mode={mode}");
        }
    }

    #[test]
    fn quotient_dedup_strictly_shrinks_symmetric_state_spaces() {
        // Two idle robots on a 6-ring: the concrete ASYNC graph has all four
        // ready/idle-pending phase combinations, but "robot 0 pending" and
        // "robot 1 pending" are isomorphic under the reflection exchanging
        // the two robots — the canonical quotient merges them (4 → 3).
        let initial = Configuration::from_gaps_at_origin(&[1, 3]);
        let options = ExploreOptions::new(InterleavingMode::AsyncPhases).safety_only();
        let concrete = check_protocol(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            &options,
        )
        .unwrap();
        let quotient = check_safety_quotient(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            &options,
        )
        .unwrap();
        assert_eq!(concrete.states, 4);
        assert_eq!(quotient.states, 3);
        assert_eq!(concrete.quotient_states, 3);
    }

    #[test]
    fn idle_mutant_yields_a_liveness_counterexample_that_replays() {
        // Mutate ONE decision-table entry of the gathering protocol: robots
        // observing the initial configuration class stay idle.  From that
        // class no robot ever moves, so a fair schedule loops forever — the
        // checker must find the lasso and it must replay on the engine.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let mutant = MutatedProtocol::new(
            GatheringProtocol::new(),
            MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
            Decision::Idle,
        );
        for mode in MODES {
            let report = check_protocol(
                &mutant,
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let ce = report.counterexample().expect("mutant must be falsified");
            assert_eq!(ce.kind, ViolationKind::Liveness);
            assert!(!ce.cycle.is_empty());
            let replay =
                replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce).unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
            assert!(!ce.render().is_empty());
        }
    }

    #[test]
    fn quotient_liveness_agrees_with_concrete_on_verified_instances() {
        // The tentpole soundness claim, smallest form: the full quotient
        // check (safety + σ-threaded liveness) returns the same verdict as
        // the concrete check on verified cells, while exploring only the
        // canonical classes.  tests/exhaustive_small_instances.rs pins the
        // same equality over the whole proved grid.
        for (n, k) in [(6usize, 3usize), (7, 3)] {
            let initial = enumerate_rigid_configurations(n, k).remove(0);
            for mode in MODES {
                let concrete = check_protocol(
                    &GatheringProtocol::new(),
                    &initial,
                    &GatheringInvariant::new(),
                    &ExploreOptions::new(mode),
                )
                .unwrap();
                let quotient = check_protocol_quotient(
                    &GatheringProtocol::new(),
                    &initial,
                    &GatheringInvariant::new(),
                    &ExploreOptions::new(mode),
                )
                .unwrap();
                assert!(concrete.verified(), "n={n} k={k} mode={mode}");
                assert!(quotient.verified(), "n={n} k={k} mode={mode}");
                assert_eq!(quotient.states, concrete.quotient_states, "mode={mode}");
                assert!(quotient.states <= concrete.states);
            }
        }
    }

    #[test]
    fn quotient_liveness_finds_the_idle_mutant_lasso_and_it_replays() {
        // The other half of soundness: on a falsified cell the quotient
        // checker must still find the fair lasso, and — because the
        // counterexample is realized over *concrete* robots by unwinding the
        // accumulated relabelings — it must replay on the engine verbatim.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let mutant = MutatedProtocol::new(
            GatheringProtocol::new(),
            MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
            Decision::Idle,
        );
        for mode in MODES {
            let report = check_protocol_quotient(
                &mutant,
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let ce = report.counterexample().expect("mutant must be falsified");
            assert_eq!(ce.kind, ViolationKind::Liveness);
            assert!(!ce.cycle.is_empty());
            let replay =
                replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce).unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
        }
    }

    #[test]
    fn quotient_liveness_handles_a_genuinely_merged_class() {
        // Two idle robots on a 6-ring: the quotient merges "robot 0 pending"
        // with "robot 1 pending" (4 concrete states → 3 classes), so the
        // starving lasso the checker reports passes through a class whose
        // concrete realization needs a non-identity relabeling.  The verdict
        // must match the concrete one and the trace must replay.
        let initial = Configuration::from_gaps_at_origin(&[1, 3]);
        let inv = GatheringInvariant::new();
        let options = ExploreOptions::new(InterleavingMode::AsyncPhases);
        let concrete =
            check_protocol(&rr_corda::protocol::IdleProtocol, &initial, &inv, &options).unwrap();
        let quotient =
            check_protocol_quotient(&rr_corda::protocol::IdleProtocol, &initial, &inv, &options)
                .unwrap();
        let concrete_ce = concrete.counterexample().expect("idle never gathers");
        let ce = quotient.counterexample().expect("idle never gathers");
        assert_eq!(ce.kind, ViolationKind::Liveness);
        assert_eq!(concrete_ce.kind, ViolationKind::Liveness);
        assert_eq!(quotient.states, 3);
        assert_eq!(concrete.states, 4);
        let replay =
            replay_counterexample(&rr_corda::protocol::IdleProtocol, &initial, &inv, ce).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn spill_store_reports_are_byte_identical_to_mem() {
        // The spill backend must be observationally invisible: identical
        // ExploreReport (and counterexample, on falsified cells) for every
        // budget — including budgets landing exactly on a cluster edge, the
        // point where the resident cache evicts precisely as a window seals.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let inv = GatheringInvariant::new();
        for mode in MODES {
            let base = ExploreOptions::new(mode);
            let (mem, mem_stats) =
                check_protocol_with_stats(&GatheringProtocol::new(), &initial, &inv, &base)
                    .unwrap();
            assert_eq!(mem_stats.store, StoreKind::Mem);
            assert_eq!(mem_stats.spilled_bytes, 0);
            let per_state = mem.state_bytes / mem.states as u64;
            let cluster_bytes = per_state * crate::store::CLUSTER as u64;
            for budget in [0, 1, cluster_bytes, 2 * cluster_bytes, u64::MAX] {
                let (spill, spill_stats) = check_protocol_with_stats(
                    &GatheringProtocol::new(),
                    &initial,
                    &inv,
                    &base.with_store(StoreKind::Spill).with_mem_budget(budget),
                )
                .unwrap();
                assert_eq!(spill, mem, "mode={mode} budget={budget}");
                assert_eq!(spill_stats.store, StoreKind::Spill);
                assert!(spill_stats.spilled_bytes > 0, "mode={mode}");
            }
        }
        // Falsified cell: the counterexample inside the report must also be
        // bit-for-bit identical (it is part of the PartialEq above, but
        // assert the interesting piece explicitly).
        let mutant = MutatedProtocol::new(
            GatheringProtocol::new(),
            MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
            Decision::Idle,
        );
        for mode in MODES {
            let base = ExploreOptions::new(mode);
            let mem = check_protocol(&mutant, &initial, &inv, &base).unwrap();
            let spill = check_protocol(
                &mutant,
                &initial,
                &inv,
                &base.with_store(StoreKind::Spill).with_mem_budget(0),
            )
            .unwrap();
            assert_eq!(mem, spill, "mode={mode}");
            assert_eq!(
                mem.counterexample().unwrap().render(),
                spill.counterexample().unwrap().render(),
                "mode={mode}"
            );
        }
    }

    #[test]
    fn collision_mutant_yields_a_minimal_safety_counterexample_that_replays() {
        // C* on (8, 4) contains a robot whose clockwise neighbour is
        // occupied; overriding that class's decision with "move" lets the
        // adversary force a collision.  BFS order makes the reported trace
        // minimal: one SSYNC round, or Look + Execute under ASYNC.
        let initial = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
        let mutant = MutatedProtocol::new(
            AlignProtocol::new(),
            MutatedProtocol::<AlignProtocol>::trigger_for(&initial),
            Decision::Move(rr_corda::ViewIndex::First),
        );
        for (mode, minimal_len) in [
            (InterleavingMode::SsyncSubsets, 1),
            (InterleavingMode::AsyncPhases, 2),
        ] {
            let report = check_protocol(
                &mutant,
                &initial,
                &AlignmentInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let ce = report.counterexample().expect("mutant must be falsified");
            assert_eq!(ce.kind, ViolationKind::Safety);
            assert_eq!(ce.prefix.len(), minimal_len, "mode={mode}: {}", ce.render());
            assert!(ce.cycle.is_empty());
            let replay =
                replay_counterexample(&mutant, &initial, &AlignmentInvariant::new(), ce).unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
            assert!(replay.detail.contains("exclusivity") || replay.detail.contains("occupied"));
        }
    }

    #[test]
    fn alignment_is_verified_exhaustively() {
        for initial in enumerate_rigid_configurations(7, 3) {
            for mode in MODES {
                let report = check_protocol(
                    &AlignProtocol::new(),
                    &initial,
                    &AlignmentInvariant::new(),
                    &ExploreOptions::new(mode),
                )
                .unwrap();
                assert!(report.verified(), "mode={mode}: {:?}", report.outcome);
            }
        }
    }

    #[test]
    fn searching_liveness_falsifies_a_protocol_that_never_clears() {
        // The idle protocol trivially never clears the ring: the checker
        // reports a fair no-progress lasso under the perpetual-searching
        // invariant, and the lasso replays.
        let initial = Configuration::from_gaps_at_origin(&[1, 3]); // n=6, k=2
        let inv = SearchingInvariant::new();
        let report = check_protocol(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &inv,
            &ExploreOptions::new(InterleavingMode::AsyncPhases),
        )
        .unwrap();
        let ce = report.counterexample().expect("idle never clears");
        assert_eq!(ce.kind, ViolationKind::Liveness);
        assert_eq!(report.progress_edges, 0);
        let replay =
            replay_counterexample(&rr_corda::protocol::IdleProtocol, &initial, &inv, ce).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn budget_hit_exactly_at_the_frontier_edge_is_reported_as_incomplete() {
        // ASYNC from a rigid (7, 3) class: the root has exactly 3 successors
        // (Look 0, Look 1, Look 2), all distinct.  A budget of 3 is hit
        // precisely when the LAST frontier edge of the root discovers its
        // state: both earlier root edges were recorded (and reference
        // discovered states), yet the root's expansion is still incomplete —
        // discovered (3) and completed expansions (0) must say so
        // separately, where the old report claimed `explored = 3`.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let report = check_protocol(
            &GatheringProtocol::new(),
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(InterleavingMode::AsyncPhases).with_max_states(3),
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            CheckOutcome::BudgetExceeded {
                discovered: 3,
                completed_expansions: 0,
            }
        );
        // One more state of budget: the root's whole frontier fits, its
        // expansion completes, and the budget trips during node 1's
        // expansion instead — completed expansions advance to 1.
        let report = check_protocol(
            &GatheringProtocol::new(),
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(InterleavingMode::AsyncPhases).with_max_states(4),
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            CheckOutcome::BudgetExceeded {
                discovered: 4,
                completed_expansions: 1,
            }
        );
        // Budget reporting is worker-independent like everything else.
        for workers in [2usize, 7] {
            let again = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(InterleavingMode::AsyncPhases)
                    .with_max_states(4)
                    .with_workers(workers),
            )
            .unwrap();
            assert_eq!(again, report, "workers={workers}");
        }
    }

    #[test]
    fn render_is_compact() {
        let mut ce = Counterexample {
            kind: ViolationKind::Liveness,
            message: "m".to_string(),
            prefix: vec![SchedulerStep::Look(1), SchedulerStep::Execute(1)],
            cycle: vec![SchedulerStep::SsyncRound(vec![0, 2])],
            faults: Vec::new(),
            starved: 0,
        };
        assert_eq!(ce.render(), "m: L1 E1 (R{0,2})*");
        ce.faults.push(FaultDirective::Crash { at: 1, robot: 2 });
        ce.faults.push(FaultDirective::Corrupt {
            at: 0,
            robot: 1,
            kind: CorruptionKind::PhantomMultiplicity,
        });
        ce.starved = 0b100;
        assert_eq!(
            ce.render(),
            "m: L1 E1 (R{0,2})* [crash 2 @1] [corrupt 1 phantom @0] [starved {2}]"
        );
    }

    #[test]
    fn fault_codes_round_trip_and_label_their_activations() {
        // Crash codes: no engine step, no activation, robot recoverable.
        for r in 0..20usize {
            let code = crash_code(r);
            assert_eq!(crash_code_robot(code), Some(r));
            assert_eq!(corrupt_code_parts(code), None);
            assert_eq!(code_engine_step(code), None);
            assert_eq!(step_activation_mask(code), 0);
        }
        // ASYNC corrupt codes: underlying solo Look, offset 0.
        for r in 0..20usize {
            for kind in CorruptionKind::ALL {
                let code = corrupt_look_code(r, kind);
                assert_eq!(crash_code_robot(code), None);
                assert_eq!(corrupt_code_parts(code), Some((r, kind, 0)));
                assert_eq!(code_engine_step(code), Some(SchedulerStep::Look(r)));
                assert_eq!(step_activation_mask(code), 1 << r);
            }
        }
        // SSYNC corrupt codes: underlying round, offset = victim's rank.
        let mask = 0b1101u32;
        for (victim, offset) in [(0usize, 0u64), (2, 1), (3, 2)] {
            for kind in CorruptionKind::ALL {
                let code = corrupt_round_code(mask, victim, kind);
                assert_eq!(corrupt_code_parts(code), Some((victim, kind, offset)));
                assert_eq!(
                    code_engine_step(code),
                    Some(SchedulerStep::SsyncRound(vec![0, 2, 3]))
                );
                assert_eq!(step_activation_mask(code), mask);
            }
        }
        // Fault words: crashed mask and corruption count round-trip.
        let word = fault_word(0b1010, 3);
        assert_eq!(fault_crashed(word), 0b1010);
        assert_eq!(fault_corrupts(word), 3);
    }

    #[test]
    fn crashed_robots_leave_the_frontier() {
        let c = Configuration::from_gaps_at_origin(&[1, 1, 4]);
        let engine = Engine::with_default_options(rr_corda::protocol::GreedyGapWalker, c).unwrap();
        let mut codes = Vec::new();
        frontier_codes(
            InterleavingMode::AsyncPhases,
            engine.robots(),
            0b010,
            &mut codes,
        );
        let decoded: Vec<SchedulerStep> = codes.iter().map(|&c| decode_step(c)).collect();
        assert_eq!(
            decoded,
            vec![SchedulerStep::Look(0), SchedulerStep::Look(2)]
        );
        frontier_codes(
            InterleavingMode::SsyncSubsets,
            engine.robots(),
            0b010,
            &mut codes,
        );
        assert!(codes.iter().all(|&c| step_activation_mask(c) & 0b010 == 0));
        assert_eq!(codes.len(), 3, "subsets of {{0, 2}}");
    }

    #[test]
    fn empty_fault_budget_explores_byte_identically() {
        // The fault-free adversary and a FaultBudget::none() adversary are
        // the SAME exploration: identical reports, field for field.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        for mode in MODES {
            let plain = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let budgeted = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode).with_faults(FaultBudget::none()),
            )
            .unwrap();
            assert_eq!(plain, budgeted, "mode={mode}");
        }
    }

    #[test]
    fn one_crash_fault_falsifies_plain_gathering_with_a_replaying_lasso() {
        // GatheringInvariant demands ALL robots gather; a crash-stopped
        // robot never moves again, so the adversary crashes one robot and
        // loops fairly-modulo-the-crash forever.  The counterexample must
        // carry the crash directive and replay on a fresh engine.
        let initial = enumerate_rigid_configurations(6, 3).remove(0);
        for mode in MODES {
            let report = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_crashes(1)),
            )
            .unwrap();
            let ce = report.counterexample().expect("crash defeats gathering");
            assert_eq!(ce.kind, ViolationKind::Liveness);
            assert!(
                ce.faults
                    .iter()
                    .any(|f| matches!(f, FaultDirective::Crash { .. })),
                "mode={mode}: {}",
                ce.render()
            );
            let replay = replay_counterexample(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                ce,
            )
            .unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
        }
    }

    #[test]
    fn crash_branching_strictly_grows_the_state_space() {
        let initial = enumerate_rigid_configurations(6, 3).remove(0);
        let inv = rr_core::invariant::CrashTolerantGatheringInvariant::new();
        for mode in MODES {
            let plain = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &inv,
                &ExploreOptions::new(mode).safety_only(),
            )
            .unwrap();
            let crashy = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &inv,
                &ExploreOptions::new(mode)
                    .safety_only()
                    .with_faults(FaultBudget::none().with_crashes(1)),
            )
            .unwrap();
            assert!(
                crashy.states > plain.states,
                "mode={mode}: {} !> {}",
                crashy.states,
                plain.states
            );
        }
    }

    #[test]
    fn corrupt_look_branching_verifies_or_replays() {
        // Gathering under one corrupted Look: whatever the verdict, a
        // falsification must be a certificate (the replay reproduces it,
        // corruption directive and all).  The liveness-only invariant keeps
        // the durable-gathering safety clause out of the way: a corrupted
        // Look may legitimately break an existing multiplicity.
        let initial = enumerate_rigid_configurations(6, 3).remove(0);
        let inv = rr_core::invariant::EventualGatheringInvariant::new();
        for mode in MODES {
            let report = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &inv,
                &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_corrupt_looks(1)),
            )
            .unwrap();
            match report.counterexample() {
                None => assert!(report.verified(), "mode={mode}: {:?}", report.outcome),
                Some(ce) => {
                    let replay =
                        replay_counterexample(&GatheringProtocol::new(), &initial, &inv, ce)
                            .unwrap();
                    assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
                }
            }
        }
    }

    #[test]
    fn starving_one_robot_yields_an_unfair_lasso_that_replays() {
        // IdleProtocol never gathers; with robot 0 starved forever the
        // reported lasso must not activate robot 0 in its cycle, must name
        // the starved robot, and must replay under the relaxed fairness.
        let initial = Configuration::from_gaps_at_origin(&[1, 3]); // n=6, k=2
        let report = check_protocol(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(InterleavingMode::AsyncPhases)
                .with_faults(FaultBudget::none().with_starved(0b01)),
        )
        .unwrap();
        let ce = report.counterexample().expect("idle never gathers");
        assert_eq!(ce.kind, ViolationKind::Liveness);
        assert_eq!(ce.starved, 0b01);
        for step in &ce.cycle {
            assert_eq!(
                NondeterministicScheduler::activation_mask(step) & 0b01,
                0,
                "cycle must not need the starved robot: {}",
                ce.render()
            );
        }
        let replay = replay_counterexample(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            ce,
        )
        .unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn crash_tolerant_gathering_under_one_crash_has_a_verdict_that_replays() {
        // The degradation question itself: does gathering-of-the-survivors
        // hold under one crash?  Either answer is acceptable — but a
        // falsification must replay.  (The E14 experiment sweeps the grid.)
        let initial = enumerate_rigid_configurations(6, 3).remove(0);
        let inv = rr_core::invariant::CrashTolerantGatheringInvariant::new();
        for mode in MODES {
            let report = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &inv,
                &ExploreOptions::new(mode).with_faults(FaultBudget::none().with_crashes(1)),
            )
            .unwrap();
            if let Some(ce) = report.counterexample() {
                let replay =
                    replay_counterexample(&GatheringProtocol::new(), &initial, &inv, ce).unwrap();
                assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
            }
        }
    }
}
