//! Exhaustive adversarial model checking over scheduler interleavings.
//!
//! The paper's correctness statements quantify over *every* activation
//! schedule of the adversary; the randomized verification harnesses in
//! [`crate::verify`] only sample that space (64 seeds per cell).  This module
//! closes the gap for small instances: it enumerates the **complete**
//! reachable state graph of a protocol under a
//! [`NondeterministicScheduler`]'s branching frontier — every SSYNC
//! activation subset, or every ASYNC Look/Move interleaving with pending
//! moves — and checks a pluggable [`Invariant`] on it:
//!
//! * **safety** is checked on every edge (collisions raised by the engine,
//!   plus the invariant's own edge conditions), and a breadth-first search
//!   order guarantees a *minimal* counterexample trace;
//! * **liveness** is decided on the explored graph by SCC analysis under the
//!   weak-fairness assumption (every robot is activated infinitely often): a
//!   violation is a reachable strongly connected subgraph, free of
//!   target/progress, whose internal edges activate *every* robot — from
//!   which a concrete fair lasso (prefix + cycle) is extracted.
//!
//! Two deduplication regimes are offered.  [`check_protocol`] keys states by
//! their exact behavioural identity ([`EngineState::exact_key`]) — robot
//! identities preserved, as per-robot fairness is **not** invariant under
//! relabeling — and reports, as a statistic, how many canonical classes
//! ([`EngineState::canonical_key`], the Booth least-rotation quotient by ring
//! rotation/reflection + robot relabeling) the concrete states collapse to.
//! [`check_safety_quotient`] dedups directly on canonical classes, which is
//! sound for safety (a bad state is reachable iff an isomorphic one is) and
//! explores the `≈ 2n`-fold smaller quotient graph; the two regimes must
//! agree on every safety verdict, which the test suite pins.
//!
//! Counterexamples [`replay`](replay_counterexample) on a fresh [`Engine`]:
//! a safety trace reproduces its violation at the final step, a liveness
//! lasso closes back on the exact state it entered the cycle with, making no
//! progress — so the reported schedule is a certificate, not a search
//! artifact.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

use rr_corda::{
    Decision, Engine, EngineOptions, EngineState, InterleavingMode, NondeterministicScheduler,
    Protocol, SchedulerStep, SimError, Snapshot, ViewOrder,
};
use rr_core::invariant::{AugState, Invariant, LivenessMode, StateView};
use rr_ring::{Configuration, View};

/// Default state budget: generous for every `n ≤ 8` instance, a guard rail
/// against accidentally pointing the checker at a huge one.
pub const DEFAULT_MAX_STATES: usize = 4_000_000;

/// Options for one exhaustive check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Which space of adversarial interleavings to branch over.
    pub interleaving: InterleavingMode,
    /// State budget; exceeding it yields [`CheckOutcome::BudgetExceeded`]
    /// instead of a verdict.
    pub max_states: usize,
    /// Whether to run the liveness (SCC) analysis after the safety sweep.
    pub check_liveness: bool,
}

impl ExploreOptions {
    /// Full checking (safety + liveness) under the given interleavings with
    /// the default state budget.
    #[must_use]
    pub fn new(interleaving: InterleavingMode) -> Self {
        ExploreOptions {
            interleaving,
            max_states: DEFAULT_MAX_STATES,
            check_liveness: true,
        }
    }

    /// Replaces the state budget.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Disables the liveness analysis (safety sweep only).
    #[must_use]
    pub fn safety_only(mut self) -> Self {
        self.check_liveness = false;
        self
    }
}

/// Which kind of property a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A bad edge: collision, invariant breach.
    Safety,
    /// A fair schedule making no progress: a lasso avoiding the target.
    Liveness,
}

/// A concrete adversarial schedule demonstrating a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// What is violated.
    pub kind: ViolationKind,
    /// Human-readable description of the violation.
    pub message: String,
    /// Schedule from the initial configuration to the violation (safety: the
    /// last step *is* the violation) or to the entry of the lasso cycle.
    pub prefix: Vec<SchedulerStep>,
    /// For liveness: the fair cycle (activating every robot, making no
    /// progress) that the adversary repeats forever.  Empty for safety.
    pub cycle: Vec<SchedulerStep>,
}

impl Counterexample {
    /// Compact single-line rendering (`L2` = Look robot 2, `E0` = Execute
    /// robot 0, `R{0,2}` = SSYNC round of robots 0 and 2).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}: {}", self.message, render_steps(&self.prefix));
        if !self.cycle.is_empty() {
            out.push_str(" (");
            out.push_str(&render_steps(&self.cycle));
            out.push_str(")*");
        }
        out
    }
}

fn render_steps(steps: &[SchedulerStep]) -> String {
    let rendered: Vec<String> = steps
        .iter()
        .map(|s| match s {
            SchedulerStep::Look(r) => format!("L{r}"),
            SchedulerStep::Execute(r) => format!("E{r}"),
            SchedulerStep::SsyncRound(robots) => {
                let ids: Vec<String> = robots.iter().map(ToString::to_string).collect();
                format!("R{{{}}}", ids.join(","))
            }
        })
        .collect();
    rendered.join(" ")
}

/// The verdict of one exhaustive check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every reachable edge is safe and (if checked) every fair schedule
    /// makes the required progress.
    Verified,
    /// A violation was found, with its concrete schedule.
    Falsified(Box<Counterexample>),
    /// The state budget was exhausted before the graph was covered.
    BudgetExceeded {
        /// States explored before giving up.
        explored: usize,
    },
}

/// Result of one exhaustive check.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The invariant that was checked.
    pub invariant: &'static str,
    /// The interleaving space that was branched over.
    pub interleaving: InterleavingMode,
    /// Concrete states explored (canonical classes when the quotient
    /// explorer was used).
    pub states: usize,
    /// Distinct canonical (rotation/reflection/relabeling) classes among the
    /// explored *engine* states (auxiliary path state, e.g. contamination, is
    /// not part of the class key — for invariants carrying one, this counts
    /// the engine-state classes the full states project onto).
    pub quotient_states: usize,
    /// Edges of the explored graph.
    pub edges: u64,
    /// States satisfying the liveness target ([`LivenessMode::Reach`]).
    pub target_states: usize,
    /// Edges on which liveness progress happened
    /// ([`LivenessMode::ReachRepeatedly`]).
    pub progress_edges: u64,
    /// The verdict.
    pub outcome: CheckOutcome,
}

impl ExploreReport {
    /// Whether the check completed and found no violation.
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self.outcome, CheckOutcome::Verified)
    }

    /// The counterexample, if the check falsified the invariant.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            CheckOutcome::Falsified(ce) => Some(ce),
            _ => None,
        }
    }
}

/// How explored states are deduplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dedup {
    /// Exact behavioural identity (robot ids preserved).
    Exact,
    /// Canonical class (quotient by ring automorphism + robot relabeling).
    /// Falls back to exact keys for invariants carrying auxiliary path state,
    /// whose canonicalization would have to be joint to stay sound.
    Canonical,
}

#[derive(Debug, PartialEq, Eq, Hash)]
enum Key {
    Exact(Vec<u64>, u64),
    Canonical(Vec<usize>, u64),
}

fn make_key(state: &EngineState, aug: &AugState, dedup: Dedup) -> Key {
    match (dedup, aug) {
        (Dedup::Canonical, AugState::None) => Key::Canonical(state.canonical_key(), 0),
        _ => Key::Exact(state.exact_key(), aug.key_bits()),
    }
}

struct NodeData {
    state: EngineState,
    aug: AugState,
    parent: Option<(usize, SchedulerStep)>,
    target: bool,
}

struct Edge {
    to: usize,
    robots: u32,
    progress: bool,
    step: SchedulerStep,
}

fn state_view(state: &EngineState) -> StateView<'_> {
    StateView {
        config: state.configuration(),
        robots: state.robots(),
    }
}

/// Exhaustively checks `protocol` against `invariant` from `initial`,
/// deduplicating on exact behavioural state identity (sound for safety *and*
/// per-robot fairness liveness).
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine; violations found during the search are reported as
/// [`CheckOutcome::Falsified`].
pub fn check_protocol<P: Protocol + Clone>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<ExploreReport, SimError> {
    explore(protocol, initial, invariant, options, Dedup::Exact)
}

/// Safety-only exhaustive check deduplicating on canonical state classes:
/// the `≈ 2n`-fold smaller symmetry quotient of the state graph.
///
/// Sound and complete for safety (a violating edge exists iff an isomorphic
/// one does); liveness is intentionally unavailable here because per-robot
/// fairness is not invariant under the robot relabeling the quotient
/// performs — use [`check_protocol`] for liveness.
///
/// Only invariants without auxiliary path state get the quotient: for an
/// invariant carrying one (the searching contamination state), a sound class
/// key would have to canonicalize the engine state and the auxiliary state
/// *jointly*, so this function falls back to exact keys — same exploration
/// cost as [`check_protocol`], minus its liveness analysis.  Prefer
/// [`check_protocol`] for those invariants.
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn check_safety_quotient<P: Protocol + Clone>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
) -> Result<ExploreReport, SimError> {
    let options = options.safety_only();
    explore(protocol, initial, invariant, &options, Dedup::Canonical)
}

fn explore<P: Protocol + Clone>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    options: &ExploreOptions,
    dedup: Dedup,
) -> Result<ExploreReport, SimError> {
    let engine_options = EngineOptions::for_protocol(protocol);
    assert!(
        engine_options.view_order != ViewOrder::Alternating,
        "alternating view order makes behaviour depend on the look counter; \
         the state graph would not be well-defined"
    );
    let mut engine = Engine::new(protocol.clone(), initial.clone(), engine_options)?;
    let k = engine.num_robots();
    assert!(k <= 20, "exhaustive checking is for small instances");
    let full_mask: u32 = (1u32 << k) - 1;
    let scheduler = NondeterministicScheduler::new(options.interleaving);
    let reach_mode = invariant.liveness_mode() == LivenessMode::Reach;

    let root_state = engine.save_state();
    let root_aug = invariant.initial_aug(initial);
    let root_target = reach_mode && invariant.is_target(&state_view(&root_state), &root_aug);
    let mut visited: HashMap<Key, usize> = HashMap::new();
    visited.insert(make_key(&root_state, &root_aug, dedup), 0);
    let mut canonical_classes: HashSet<Vec<usize>> = HashSet::new();
    canonical_classes.insert(root_state.canonical_key());
    let mut nodes = vec![NodeData {
        state: root_state,
        aug: root_aug,
        parent: None,
        target: root_target,
    }];
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new()];

    let mut edge_count: u64 = 0;
    let mut progress_edges: u64 = 0;
    let mut budget_hit = false;
    let mut safety_ce: Option<Counterexample> = None;

    let mut i = 0usize;
    'bfs: while i < nodes.len() {
        let before_state = nodes[i].state.clone();
        let before_aug = nodes[i].aug.clone();
        engine.restore_state(&before_state);
        let frontier = scheduler.frontier(&engine.scheduler_view());
        for step in frontier {
            engine.restore_state(&before_state);
            let report = match engine.step(&step, &mut ()) {
                Ok(report) => report,
                Err(e) => {
                    let mut prefix = path_from_root(&nodes, i);
                    prefix.push(step);
                    safety_ce = Some(Counterexample {
                        kind: ViolationKind::Safety,
                        message: e.to_string(),
                        prefix,
                        cycle: Vec::new(),
                    });
                    break 'bfs;
                }
            };
            let mut aug = before_aug.clone();
            let progress = invariant.observe_step(&mut aug, &report, engine.configuration());
            let after_state = engine.save_state();
            if let Err(message) =
                invariant.check_edge(&state_view(&before_state), &state_view(&after_state), &aug)
            {
                let mut prefix = path_from_root(&nodes, i);
                prefix.push(step);
                safety_ce = Some(Counterexample {
                    kind: ViolationKind::Safety,
                    message,
                    prefix,
                    cycle: Vec::new(),
                });
                break 'bfs;
            }
            let target = reach_mode && invariant.is_target(&state_view(&after_state), &aug);
            let key = make_key(&after_state, &aug, dedup);
            let to = match visited.entry(key) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => {
                    if nodes.len() >= options.max_states {
                        budget_hit = true;
                        break 'bfs;
                    }
                    canonical_classes.insert(after_state.canonical_key());
                    nodes.push(NodeData {
                        state: after_state,
                        aug,
                        parent: Some((i, step.clone())),
                        target,
                    });
                    edges.push(Vec::new());
                    *entry.insert(nodes.len() - 1)
                }
            };
            edge_count += 1;
            progress_edges += u64::from(progress);
            edges[i].push(Edge {
                to,
                robots: NondeterministicScheduler::activation_mask(&step),
                progress,
                step,
            });
        }
        i += 1;
    }

    let target_states = nodes.iter().filter(|n| n.target).count();
    let quotient_states = match dedup {
        Dedup::Exact => canonical_classes.len(),
        Dedup::Canonical => nodes.len(),
    };
    let outcome = if let Some(ce) = safety_ce {
        CheckOutcome::Falsified(Box::new(ce))
    } else if budget_hit {
        CheckOutcome::BudgetExceeded {
            explored: nodes.len(),
        }
    } else if options.check_liveness {
        match liveness_violation(&nodes, &edges, full_mask, invariant) {
            Some(ce) => CheckOutcome::Falsified(Box::new(ce)),
            None => CheckOutcome::Verified,
        }
    } else {
        CheckOutcome::Verified
    };

    Ok(ExploreReport {
        invariant: invariant.name(),
        interleaving: options.interleaving,
        states: nodes.len(),
        quotient_states,
        edges: edge_count,
        target_states,
        progress_edges,
        outcome,
    })
}

/// Schedule from the root to node `i`, following BFS parent pointers.
fn path_from_root(nodes: &[NodeData], mut i: usize) -> Vec<SchedulerStep> {
    let mut steps = Vec::new();
    while let Some((parent, step)) = &nodes[i].parent {
        steps.push(step.clone());
        i = *parent;
    }
    steps.reverse();
    steps
}

/// Searches the explored graph for a fair schedule that never makes
/// progress: a strongly connected subgraph of non-target states, reachable
/// from the root through non-target states, whose non-progress internal
/// edges activate every robot.  Returns the corresponding lasso.
fn liveness_violation(
    nodes: &[NodeData],
    edges: &[Vec<Edge>],
    full_mask: u32,
    invariant: &dyn Invariant,
) -> Option<Counterexample> {
    if nodes[0].target {
        return None;
    }
    // Non-target states reachable from the root through non-target states
    // (a fair path that visits a target has satisfied a Reach obligation, so
    // lassos must be reachable while avoiding targets).
    let mut reachable = vec![false; nodes.len()];
    let mut bfs_parent: Vec<Option<(usize, usize)>> = vec![None; nodes.len()]; // (node, edge idx)
    reachable[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for (ei, e) in edges[u].iter().enumerate() {
            if !nodes[e.to].target && !reachable[e.to] {
                reachable[e.to] = true;
                bfs_parent[e.to] = Some((u, ei));
                queue.push_back(e.to);
            }
        }
    }
    // Eligible lasso edges: non-progress, between reachable non-target
    // states.  (Target states are never `reachable`, except the root which
    // was checked above.)
    let eligible = |u: usize, e: &Edge| reachable[u] && reachable[e.to] && !e.progress;

    let (scc, scc_count) = tarjan_scc(nodes.len(), edges, &eligible);

    // Fairness coverage per SCC: the union of activation masks over internal
    // eligible edges, plus whether the SCC has any internal edge at all.
    let mut coverage = vec![0u32; scc_count];
    let mut has_edge = vec![false; scc_count];
    for (u, out) in edges.iter().enumerate() {
        for e in out {
            if eligible(u, e) && scc[e.to] == scc[u] {
                coverage[scc[u]] |= e.robots;
                has_edge[scc[u]] = true;
            }
        }
    }
    let bad = (0..scc_count).find(|&c| has_edge[c] && coverage[c] == full_mask)?;

    // Entry node: the first (lowest-index, hence BFS-closest) node of the bad
    // SCC; its prefix avoids targets by construction of `bfs_parent`.
    let entry = (0..nodes.len())
        .find(|&u| scc[u] == bad)
        .expect("non-empty SCC");
    let mut prefix = Vec::new();
    let mut cur = entry;
    while let Some((p, ei)) = bfs_parent[cur] {
        prefix.push(edges[p][ei].step.clone());
        cur = p;
    }
    prefix.reverse();

    let cycle = covering_cycle(edges, &scc, bad, entry, full_mask, &eligible);
    let what = match invariant.liveness_mode() {
        LivenessMode::Reach => "never reaching the target",
        LivenessMode::ReachRepeatedly => "never making progress again",
    };
    Some(Counterexample {
        kind: ViolationKind::Liveness,
        message: format!("fair schedule (every robot activated in each cycle iteration) {what}"),
        prefix,
        cycle,
    })
}

/// A closed walk from `entry` back to `entry` inside SCC `target_scc`, using
/// only eligible edges, whose activation masks cover `full_mask`.
fn covering_cycle(
    edges: &[Vec<Edge>],
    scc: &[usize],
    target_scc: usize,
    entry: usize,
    full_mask: u32,
    eligible: &dyn Fn(usize, &Edge) -> bool,
) -> Vec<SchedulerStep> {
    // BFS inside the SCC from `from`, stopping as soon as `stop(u, e)` holds
    // for an edge about to be relaxed; returns the end node and the walk
    // (as (node, edge-index) pairs) including that stopping edge.
    #[allow(clippy::type_complexity)]
    let walk_until =
        |from: usize, stop: &dyn Fn(usize, &Edge) -> bool| -> (usize, Vec<(usize, usize)>) {
            let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut queue = VecDeque::from([from]);
            let mut seen: HashSet<usize> = HashSet::from([from]);
            while let Some(u) = queue.pop_front() {
                for (ei, e) in edges[u].iter().enumerate() {
                    if !eligible(u, e) || scc[e.to] != target_scc {
                        continue;
                    }
                    if stop(u, e) {
                        // Reconstruct from → u, then append (u, ei).
                        let mut walk = vec![(u, ei)];
                        let mut cur = u;
                        while cur != from {
                            let (p, pei) = parent[&cur];
                            walk.push((p, pei));
                            cur = p;
                        }
                        walk.reverse();
                        return (e.to, walk);
                    }
                    if seen.insert(e.to) {
                        parent.insert(e.to, (u, ei));
                        queue.push_back(e.to);
                    }
                }
            }
            unreachable!("SCC is strongly connected and covers the mask");
        };
    let append = |walk: Vec<(usize, usize)>, steps: &mut Vec<SchedulerStep>, covered: &mut u32| {
        for (n, ei) in walk {
            *covered |= edges[n][ei].robots;
            steps.push(edges[n][ei].step.clone());
        }
    };

    let mut steps = Vec::new();
    let mut covered = 0u32;
    let mut cur = entry;
    while covered != full_mask {
        let missing = full_mask & !covered;
        let (end, walk) = walk_until(cur, &|_, e: &Edge| e.robots & missing != 0);
        append(walk, &mut steps, &mut covered);
        cur = end;
    }
    if cur != entry {
        let (end, walk) = walk_until(cur, &|_, e: &Edge| e.to == entry);
        append(walk, &mut steps, &mut covered);
        debug_assert_eq!(end, entry);
    }
    steps
}

/// Iterative Tarjan SCC over the subgraph of eligible edges.  Every node gets
/// an SCC id (nodes without eligible edges become singletons); returns the
/// per-node id assignment and the number of SCCs.
fn tarjan_scc(
    n: usize,
    edges: &[Vec<Edge>],
    eligible: &dyn Fn(usize, &Edge) -> bool,
) -> (Vec<usize>, usize) {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc = vec![0usize; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (node, next edge position); a node is initialized
    // the first time its frame is on top (pos == 0 implies first visit, as
    // pos is incremented before any child frame is pushed).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let mut advanced = false;
            while *pos < edges[v].len() {
                let e = &edges[v][*pos];
                *pos += 1;
                if !eligible(v, e) {
                    continue;
                }
                let w = e.to;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if advanced {
                continue;
            }
            // v is finished.
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on_stack[w] = false;
                    scc[w] = scc_count;
                    if w == v {
                        break;
                    }
                }
                scc_count += 1;
            }
            let low_v = low[v];
            call.pop();
            if let Some(&(parent, _)) = call.last() {
                low[parent] = low[parent].min(low_v);
            }
        }
    }
    (scc, scc_count)
}

/// Result of replaying a counterexample on a fresh engine.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Whether the replay reproduced exactly the reported violation.
    pub reproduced: bool,
    /// What the replay observed (the violation message, or why it failed to
    /// reproduce).
    pub detail: String,
}

/// Replays `ce` on a fresh [`Engine`] and checks that it demonstrates its
/// violation: a safety trace must run cleanly up to its final step and
/// violate there; a liveness lasso must run cleanly, return to the exact
/// state it entered the cycle with, and make no progress / reach no target
/// during the cycle (so the adversary can repeat it forever, fairly).
///
/// # Errors
///
/// Returns `Err` only when the initial configuration is rejected by the
/// engine.
pub fn replay_counterexample<P: Protocol + Clone>(
    protocol: &P,
    initial: &Configuration,
    invariant: &dyn Invariant,
    ce: &Counterexample,
) -> Result<ReplayReport, SimError> {
    let engine_options = EngineOptions::for_protocol(protocol);
    let mut engine = Engine::new(protocol.clone(), initial.clone(), engine_options)?;
    let mut aug = invariant.initial_aug(initial);
    let reach_mode = invariant.liveness_mode() == LivenessMode::Reach;

    // Applies one step; returns Some(violation message) if it violates.
    let apply = |engine: &mut Engine<P>,
                 aug: &mut AugState,
                 step: &SchedulerStep|
     -> Result<(bool, bool), String> {
        let before = engine.save_state();
        let report = engine.step(step, &mut ()).map_err(|e| e.to_string())?;
        let progress = invariant.observe_step(aug, &report, engine.configuration());
        let after = engine.save_state();
        invariant.check_edge(&state_view(&before), &state_view(&after), aug)?;
        let target = reach_mode && invariant.is_target(&state_view(&after), aug);
        Ok((progress, target))
    };

    match ce.kind {
        ViolationKind::Safety => {
            for (idx, step) in ce.prefix.iter().enumerate() {
                let last = idx + 1 == ce.prefix.len();
                match apply(&mut engine, &mut aug, step) {
                    Ok(_) if last => {
                        return Ok(ReplayReport {
                            reproduced: false,
                            detail: "final step did not violate".to_string(),
                        })
                    }
                    Ok(_) => {}
                    Err(detail) => {
                        return Ok(ReplayReport {
                            reproduced: last,
                            detail,
                        })
                    }
                }
            }
            Ok(ReplayReport {
                reproduced: false,
                detail: "empty safety trace".to_string(),
            })
        }
        ViolationKind::Liveness => {
            for step in &ce.prefix {
                if let Err(detail) = apply(&mut engine, &mut aug, step) {
                    return Ok(ReplayReport {
                        reproduced: false,
                        detail: format!("prefix violated safety: {detail}"),
                    });
                }
            }
            if ce.cycle.is_empty() {
                return Ok(ReplayReport {
                    reproduced: false,
                    detail: "empty lasso cycle".to_string(),
                });
            }
            let loop_state = engine.save_state();
            let loop_aug_bits = aug.key_bits();
            if reach_mode && invariant.is_target(&state_view(&loop_state), &aug) {
                return Ok(ReplayReport {
                    reproduced: false,
                    detail: "lasso entry already satisfies the target".to_string(),
                });
            }
            let mut progress_seen = false;
            let mut target_seen = false;
            let mut activated = 0u32;
            for step in &ce.cycle {
                match apply(&mut engine, &mut aug, step) {
                    Ok((progress, target)) => {
                        progress_seen |= progress;
                        target_seen |= target;
                        activated |= NondeterministicScheduler::activation_mask(step);
                    }
                    Err(detail) => {
                        return Ok(ReplayReport {
                            reproduced: false,
                            detail: format!("cycle violated safety: {detail}"),
                        });
                    }
                }
            }
            let closes = engine.save_state().exact_key() == loop_state.exact_key()
                && aug.key_bits() == loop_aug_bits;
            let fair = activated == (1u32 << engine.num_robots()) - 1;
            let reproduced = closes && fair && !progress_seen && !target_seen;
            let detail = if reproduced {
                format!(
                    "lasso closes after {} steps, activates all robots, no progress",
                    ce.cycle.len()
                )
            } else {
                format!("closes={closes} fair={fair} progress={progress_seen} target={target_seen}")
            };
            Ok(ReplayReport { reproduced, detail })
        }
    }
}

/// A deliberately broken protocol: `inner` with **one decision-table entry
/// overridden** — whenever the observing robot's supermin configuration view
/// equals `trigger`, the protocol returns `replacement` instead of the
/// inner decision.
///
/// Since an oblivious min-CORDA protocol *is* a function from view classes
/// to decisions, this is exactly a single-entry table mutation; the
/// exhaustive checker must detect it with a counterexample that replays.
#[derive(Debug, Clone)]
pub struct MutatedProtocol<P> {
    inner: P,
    trigger: View,
    replacement: Decision,
}

impl<P: Protocol> MutatedProtocol<P> {
    /// Wraps `inner`, overriding the decision of the view class whose
    /// supermin is `trigger`.
    #[must_use]
    pub fn new(inner: P, trigger: View, replacement: Decision) -> Self {
        MutatedProtocol {
            inner,
            trigger,
            replacement,
        }
    }

    /// The trigger for the configuration class of `config`.
    #[must_use]
    pub fn trigger_for(config: &Configuration) -> View {
        View::new(config.gap_sequence()).supermin()
    }
}

impl<P: Protocol> Protocol for MutatedProtocol<P> {
    fn name(&self) -> &str {
        "mutant"
    }

    fn capability(&self) -> rr_corda::MultiplicityCapability {
        self.inner.capability()
    }

    fn requires_exclusivity(&self) -> bool {
        self.inner.requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        if snapshot.supermin() == self.trigger {
            self.replacement
        } else {
            self.inner.compute(snapshot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::invariant::{AlignmentInvariant, GatheringInvariant, SearchingInvariant};
    use rr_core::{AlignProtocol, GatheringProtocol};
    use rr_ring::enumerate::enumerate_rigid_configurations;

    const MODES: [InterleavingMode; 2] = [
        InterleavingMode::SsyncSubsets,
        InterleavingMode::AsyncPhases,
    ];

    #[test]
    fn gathering_is_verified_exhaustively_on_small_rings() {
        // Every rigid initial class of (6, 3) and (7, 3), both interleaving
        // spaces: safety + liveness proved, not sampled.
        for (n, k) in [(6usize, 3usize), (7, 3)] {
            for initial in enumerate_rigid_configurations(n, k) {
                for mode in MODES {
                    let report = check_protocol(
                        &GatheringProtocol::new(),
                        &initial,
                        &GatheringInvariant::new(),
                        &ExploreOptions::new(mode),
                    )
                    .unwrap();
                    assert!(
                        report.verified(),
                        "n={n} k={k} mode={mode}: {:?}",
                        report.outcome
                    );
                    assert!(report.target_states > 0, "n={n} k={k} mode={mode}");
                    assert!(report.quotient_states <= report.states);
                    assert!(report.edges > 0);
                }
            }
        }
    }

    #[test]
    fn quotient_safety_pass_agrees_and_is_smaller() {
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        for mode in MODES {
            let concrete = check_protocol(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode).safety_only(),
            )
            .unwrap();
            let quotient = check_safety_quotient(
                &GatheringProtocol::new(),
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            assert!(concrete.verified() && quotient.verified(), "mode={mode}");
            // The quotient explorer's state count is exactly the number of
            // canonical classes the concrete explorer reports.
            assert_eq!(quotient.states, concrete.quotient_states, "mode={mode}");
            assert!(quotient.states <= concrete.states, "mode={mode}");
        }
    }

    #[test]
    fn quotient_dedup_strictly_shrinks_symmetric_state_spaces() {
        // Two idle robots on a 6-ring: the concrete ASYNC graph has all four
        // ready/idle-pending phase combinations, but "robot 0 pending" and
        // "robot 1 pending" are isomorphic under the reflection exchanging
        // the two robots — the canonical quotient merges them (4 → 3).
        let initial = Configuration::from_gaps_at_origin(&[1, 3]);
        let options = ExploreOptions::new(InterleavingMode::AsyncPhases).safety_only();
        let concrete = check_protocol(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            &options,
        )
        .unwrap();
        let quotient = check_safety_quotient(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &GatheringInvariant::new(),
            &options,
        )
        .unwrap();
        assert_eq!(concrete.states, 4);
        assert_eq!(quotient.states, 3);
        assert_eq!(concrete.quotient_states, 3);
    }

    #[test]
    fn idle_mutant_yields_a_liveness_counterexample_that_replays() {
        // Mutate ONE decision-table entry of the gathering protocol: robots
        // observing the initial configuration class stay idle.  From that
        // class no robot ever moves, so a fair schedule loops forever — the
        // checker must find the lasso and it must replay on the engine.
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let mutant = MutatedProtocol::new(
            GatheringProtocol::new(),
            MutatedProtocol::<GatheringProtocol>::trigger_for(&initial),
            Decision::Idle,
        );
        for mode in MODES {
            let report = check_protocol(
                &mutant,
                &initial,
                &GatheringInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let ce = report.counterexample().expect("mutant must be falsified");
            assert_eq!(ce.kind, ViolationKind::Liveness);
            assert!(!ce.cycle.is_empty());
            let replay =
                replay_counterexample(&mutant, &initial, &GatheringInvariant::new(), ce).unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
            assert!(!ce.render().is_empty());
        }
    }

    #[test]
    fn collision_mutant_yields_a_minimal_safety_counterexample_that_replays() {
        // C* on (8, 4) contains a robot whose clockwise neighbour is
        // occupied; overriding that class's decision with "move" lets the
        // adversary force a collision.  BFS order makes the reported trace
        // minimal: one SSYNC round, or Look + Execute under ASYNC.
        let initial = Configuration::from_gaps_at_origin(&[0, 0, 1, 3]);
        let mutant = MutatedProtocol::new(
            AlignProtocol::new(),
            MutatedProtocol::<AlignProtocol>::trigger_for(&initial),
            Decision::Move(rr_corda::ViewIndex::First),
        );
        for (mode, minimal_len) in [
            (InterleavingMode::SsyncSubsets, 1),
            (InterleavingMode::AsyncPhases, 2),
        ] {
            let report = check_protocol(
                &mutant,
                &initial,
                &AlignmentInvariant::new(),
                &ExploreOptions::new(mode),
            )
            .unwrap();
            let ce = report.counterexample().expect("mutant must be falsified");
            assert_eq!(ce.kind, ViolationKind::Safety);
            assert_eq!(ce.prefix.len(), minimal_len, "mode={mode}: {}", ce.render());
            assert!(ce.cycle.is_empty());
            let replay =
                replay_counterexample(&mutant, &initial, &AlignmentInvariant::new(), ce).unwrap();
            assert!(replay.reproduced, "mode={mode}: {}", replay.detail);
            assert!(replay.detail.contains("exclusivity") || replay.detail.contains("occupied"));
        }
    }

    #[test]
    fn alignment_is_verified_exhaustively() {
        for initial in enumerate_rigid_configurations(7, 3) {
            for mode in MODES {
                let report = check_protocol(
                    &AlignProtocol::new(),
                    &initial,
                    &AlignmentInvariant::new(),
                    &ExploreOptions::new(mode),
                )
                .unwrap();
                assert!(report.verified(), "mode={mode}: {:?}", report.outcome);
            }
        }
    }

    #[test]
    fn searching_liveness_falsifies_a_protocol_that_never_clears() {
        // The idle protocol trivially never clears the ring: the checker
        // reports a fair no-progress lasso under the perpetual-searching
        // invariant, and the lasso replays.
        let initial = Configuration::from_gaps_at_origin(&[1, 3]); // n=6, k=2
        let inv = SearchingInvariant::new();
        let report = check_protocol(
            &rr_corda::protocol::IdleProtocol,
            &initial,
            &inv,
            &ExploreOptions::new(InterleavingMode::AsyncPhases),
        )
        .unwrap();
        let ce = report.counterexample().expect("idle never clears");
        assert_eq!(ce.kind, ViolationKind::Liveness);
        assert_eq!(report.progress_edges, 0);
        let replay =
            replay_counterexample(&rr_corda::protocol::IdleProtocol, &initial, &inv, ce).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn state_budget_is_respected() {
        let initial = enumerate_rigid_configurations(7, 3).remove(0);
        let report = check_protocol(
            &GatheringProtocol::new(),
            &initial,
            &GatheringInvariant::new(),
            &ExploreOptions::new(InterleavingMode::AsyncPhases).with_max_states(3),
        )
        .unwrap();
        assert!(matches!(
            report.outcome,
            CheckOutcome::BudgetExceeded { explored: 3 }
        ));
    }

    #[test]
    fn render_is_compact() {
        let ce = Counterexample {
            kind: ViolationKind::Liveness,
            message: "m".to_string(),
            prefix: vec![SchedulerStep::Look(1), SchedulerStep::Execute(1)],
            cycle: vec![SchedulerStep::SsyncRound(vec![0, 2])],
        };
        assert_eq!(ce.render(), "m: L1 E1 (R{0,2})*");
    }
}
