//! Run-and-verify harnesses: execute the paper's algorithms on concrete
//! instances under several schedulers and report whether the claimed
//! properties were observed.
//!
//! These harnesses power the characterization sweep (experiment E1), the
//! integration tests and the experiment binaries.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rr_corda::scheduler::RoundRobinScheduler;
use rr_core::align::run_to_c_star;
use rr_core::clearing::SearchingRunStats;
use rr_core::driver::{run_dispatched, TaskError, TaskTargets};
use rr_core::gathering::GatheringRunStats;
use rr_core::unified::{protocol_for, Task};
use rr_ring::enumerate::{enumerate_rigid_configurations, random_rigid_configuration};
use rr_ring::{supermin_view, Configuration};
use serde::{Deserialize, Serialize};

// `SchedulerKind` moved down to `rr-corda` so the driver and the sweep runner
// can share it; re-exported here for continuity.
pub use rr_corda::SchedulerKind;

/// Outcome of one verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Task verified.
    pub task: String,
    /// Whether the claimed property was observed on every run.
    pub verified: bool,
    /// Number of distinct runs performed.
    pub runs: usize,
    /// Free-form details (counts, move totals, ...).
    pub details: String,
}

fn scheduler_run_searching(
    config: &Configuration,
    kind: SchedulerKind,
    seed: u64,
    budget: u64,
) -> Result<SearchingRunStats, TaskError> {
    let report = kind.with(seed, |s| {
        run_dispatched(
            Task::GraphSearching,
            config,
            s,
            TaskTargets::demonstrate(3, 1),
            budget,
        )
    })?;
    Ok(report.searching().expect("searching stats"))
}

fn scheduler_run_gathering(
    config: &Configuration,
    kind: SchedulerKind,
    seed: u64,
    budget: u64,
) -> Result<GatheringRunStats, TaskError> {
    let report = kind.with(seed, |s| {
        run_dispatched(
            Task::Gathering,
            config,
            s,
            TaskTargets::open_ended(),
            budget,
        )
    })?;
    Ok(report.gathering().expect("gathering stats"))
}

/// Verifies exclusive perpetual graph searching (and exploration) for
/// `(n, k)`: runs the dispatched algorithm from `samples` rigid starting
/// configurations under every scheduler kind and requires at least 3 full
/// clearings (and at least one full exploration sweep under the round-robin
/// scheduler) in each run.
#[must_use]
pub fn verify_searching(n: usize, k: usize, samples: usize, seed: u64) -> VerificationReport {
    if protocol_for(Task::GraphSearching, n, k).is_none() {
        return VerificationReport {
            n,
            k,
            task: "graph-searching".into(),
            verified: false,
            runs: 0,
            details: "no algorithm claimed for these parameters".into(),
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut starts: Vec<Configuration> = Vec::new();
    for _ in 0..samples {
        if let Some(c) = random_rigid_configuration(n, k, &mut rng) {
            starts.push(c);
        }
    }
    if starts.is_empty() {
        starts = enumerate_rigid_configurations(n, k)
            .into_iter()
            .take(samples.max(1))
            .collect();
    }
    let budget = 4_000 * (n as u64) + 40_000;
    let mut runs = 0;
    let mut clearings_total = 0u64;
    let mut ok = true;
    for (i, start) in starts.iter().enumerate() {
        for kind in SchedulerKind::ALL {
            let stats = match scheduler_run_searching(start, kind, seed ^ (i as u64), budget) {
                Ok(s) => s,
                Err(e) => {
                    return VerificationReport {
                        n,
                        k,
                        task: "graph-searching".into(),
                        verified: false,
                        runs,
                        details: format!("simulation error: {e}"),
                    }
                }
            };
            runs += 1;
            clearings_total += stats.clearings;
            if stats.clearings < 3 {
                ok = false;
            }
            if kind == SchedulerKind::RoundRobin && stats.min_exploration_completions < 1 {
                ok = false;
            }
        }
    }
    VerificationReport {
        n,
        k,
        task: "graph-searching".into(),
        verified: ok,
        runs,
        details: format!("{clearings_total} clearings over {runs} runs"),
    }
}

/// Verifies gathering for `(n, k)` from `samples` rigid starting
/// configurations under every scheduler kind.
#[must_use]
pub fn verify_gathering(n: usize, k: usize, samples: usize, seed: u64) -> VerificationReport {
    if protocol_for(Task::Gathering, n, k).is_none() {
        return VerificationReport {
            n,
            k,
            task: "gathering".into(),
            verified: false,
            runs: 0,
            details: "no algorithm claimed for these parameters".into(),
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut starts: Vec<Configuration> = Vec::new();
    for _ in 0..samples {
        if let Some(c) = random_rigid_configuration(n, k, &mut rng) {
            starts.push(c);
        }
    }
    if starts.is_empty() {
        starts = enumerate_rigid_configurations(n, k)
            .into_iter()
            .take(samples.max(1))
            .collect();
    }
    let budget = 6_000 * (n as u64) + 60_000;
    let mut runs = 0;
    let mut moves_total = 0u64;
    let mut ok = !starts.is_empty();
    for (i, start) in starts.iter().enumerate() {
        for kind in SchedulerKind::ALL {
            // The asynchronous adversary interleaves Look and Move steps, so
            // it needs roughly twice the budget for the same progress.
            let kind_budget = if kind == SchedulerKind::Asynchronous {
                budget * 2
            } else {
                budget
            };
            match scheduler_run_gathering(start, kind, seed ^ (i as u64), kind_budget) {
                Ok(stats) => {
                    runs += 1;
                    moves_total += stats.moves;
                    if !stats.gathered || stats.broke_gathering {
                        ok = false;
                    }
                }
                Err(e) => {
                    return VerificationReport {
                        n,
                        k,
                        task: "gathering".into(),
                        verified: false,
                        runs,
                        details: format!("simulation error: {e}"),
                    }
                }
            }
        }
    }
    VerificationReport {
        n,
        k,
        task: "gathering".into(),
        verified: ok,
        runs,
        details: format!(
            "average moves {}",
            if runs > 0 {
                moves_total / runs as u64
            } else {
                0
            }
        ),
    }
}

/// Statistics about Align convergence for experiment E3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignStats {
    /// Ring size.
    pub n: usize,
    /// Number of robots.
    pub k: usize,
    /// Number of starting configurations measured.
    pub starts: usize,
    /// Minimum number of moves to reach `C*`.
    pub min_moves: u64,
    /// Maximum number of moves to reach `C*`.
    pub max_moves: u64,
    /// Total moves over all starts (for averaging).
    pub total_moves: u64,
    /// Whether every run reached `C*`.
    pub all_converged: bool,
}

/// Measures Align convergence over up to `max_starts` rigid starting
/// configurations: exhaustive over the isomorphism classes for small rings
/// (`n <= 14`), random rigid samples otherwise (exhaustive enumeration is
/// exponential in `n`).
#[must_use]
pub fn measure_align(n: usize, k: usize, max_starts: usize) -> AlignStats {
    let starts: Vec<Configuration> = if n <= 14 {
        enumerate_rigid_configurations(n, k)
            .into_iter()
            .take(max_starts)
            .collect()
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(0xA11C0 ^ ((n as u64) << 8) ^ k as u64);
        let cap = max_starts.min(256);
        (0..cap)
            .filter_map(|_| random_rigid_configuration(n, k, &mut rng))
            .collect()
    };
    let mut min_moves = u64::MAX;
    let mut max_moves = 0u64;
    let mut total = 0u64;
    let mut all_converged = !starts.is_empty();
    let goal = {
        let mut gaps = vec![0; k.saturating_sub(2)];
        gaps.push(1);
        gaps.push(n - k - 1);
        rr_ring::View::new(gaps)
    };
    for start in &starts {
        let mut sched = RoundRobinScheduler::new();
        match run_to_c_star(start, &mut sched, 1_000_000) {
            Ok((final_config, moves)) => {
                if supermin_view(&final_config) != goal {
                    all_converged = false;
                }
                min_moves = min_moves.min(moves);
                max_moves = max_moves.max(moves);
                total += moves;
            }
            Err(_) => all_converged = false,
        }
    }
    AlignStats {
        n,
        k,
        starts: starts.len(),
        min_moves: if min_moves == u64::MAX { 0 } else { min_moves },
        max_moves,
        total_moves: total,
        all_converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_searching_on_a_solvable_cell() {
        let report = verify_searching(12, 5, 1, 7);
        assert!(report.verified, "{report:?}");
        assert_eq!(report.runs, 3);
    }

    #[test]
    fn verify_searching_rejects_unclaimed_cells() {
        let report = verify_searching(9, 4, 1, 7);
        assert!(!report.verified);
        assert_eq!(report.runs, 0);
    }

    #[test]
    fn verify_gathering_on_a_solvable_cell() {
        let report = verify_gathering(10, 4, 1, 3);
        assert!(report.verified, "{report:?}");
        assert!(report.runs >= 3);
    }

    #[test]
    fn verify_gathering_rejects_unclaimed_cells() {
        let report = verify_gathering(8, 7, 1, 3);
        assert!(!report.verified);
    }

    #[test]
    fn align_statistics_are_consistent() {
        let stats = measure_align(10, 4, 25);
        assert!(stats.all_converged);
        assert!(stats.starts > 0);
        assert!(stats.min_moves <= stats.max_moves);
        assert!(stats.total_moves >= stats.max_moves);
    }
}
