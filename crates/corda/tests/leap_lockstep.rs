//! Property tests pinning `StepPath::Leap` ≡ `StepPath::StepBaseline`: over
//! arbitrary starting configurations and arbitrary activation scripts (bare
//! Looks, bare Executes, partial and full SSYNC rounds — including the
//! interleavings that create and collapse multiplicities mid-plan), the
//! leaping engine produces **byte-identical** `StepReport` streams, traces,
//! counters and final states.  The leap certificate is an optimisation
//! contract, never a semantic one: whenever it cannot reproduce stepping
//! exactly it must decline, and these tests are the enforcement.

use proptest::prelude::*;
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::scheduler::FullySynchronousScheduler;
use rr_corda::{Engine, EngineOptions, SchedulerStep, SimError, StepPath, StepReport, ViewOrder};
use rr_ring::Configuration;

/// A random gap word for `k` robots (k inferred from the vector length) with
/// a positive total gap, so the ring is never full.
fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (2usize..6, 1usize..10).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..4, k).prop_map(move |mut gaps| {
            gaps[k - 1] += extra;
            gaps
        })
    })
}

/// A random scheduler step for a system of `k` robots: an atomic cycle, a
/// bare Look, a bare Execute, a singleton SSYNC round, a two-robot round, or
/// the full synchronous round every certificate is sized for.
fn step_for(k: usize, kind: u8, a: usize, b: usize) -> SchedulerStep {
    let (a, b) = (a % k, b % k);
    match kind % 5 {
        0 => SchedulerStep::Look(a),
        1 => SchedulerStep::Execute(a),
        2 => SchedulerStep::SsyncRound(vec![a]),
        3 => {
            let mut round = vec![a];
            if b != a {
                round.push(b);
            }
            SchedulerStep::SsyncRound(round)
        }
        _ => SchedulerStep::SsyncRound((0..k).collect()),
    }
}

fn script() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..5, 0usize..8, 0usize..8), 1..40)
}

/// Applies `script` to `engine`, collecting every `StepReport` (and the
/// first error, which aborts the run exactly like a batch job would abort).
fn drive(
    engine: &mut Engine<GreedyGapWalker>,
    k: usize,
    script: &[(u8, usize, usize)],
) -> (Vec<StepReport>, Option<SimError>) {
    let mut reports = Vec::new();
    for &(kind, a, b) in script {
        match engine.step(&step_for(k, kind, a, b), &mut ()) {
            Ok(report) => reports.push(report),
            Err(e) => return (reports, Some(e)),
        }
    }
    (reports, None)
}

fn assert_engines_equal(leap: &Engine<GreedyGapWalker>, base: &Engine<GreedyGapWalker>) {
    assert_eq!(leap.configuration(), base.configuration());
    assert_eq!(leap.positions(), base.positions());
    assert_eq!(leap.robots(), base.robots());
    assert_eq!(leap.step_count(), base.step_count());
    assert_eq!(leap.move_count(), base.move_count());
    assert_eq!(leap.look_count(), base.look_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fast-round memo path: under arbitrary scripts (partial rounds,
    /// pending robots, multiplicity creation and collapse), a Leap engine and
    /// a StepBaseline engine emit the same reports, errors and trace bytes.
    #[test]
    fn leap_equals_baseline_over_arbitrary_scripts(
        gaps in gap_word(),
        order_sel in 0u8..3,
        main in script(),
    ) {
        let order = match order_sel {
            0 => ViewOrder::CwFirst,
            1 => ViewOrder::CcwFirst,
            _ => ViewOrder::Alternating,
        };
        let config = Configuration::from_gaps_at_origin(&gaps);
        let base_options = EngineOptions::for_protocol(&GreedyGapWalker)
            .with_trace()
            .with_view_order(order);
        let mut leap = Engine::new(
            GreedyGapWalker,
            config.clone(),
            base_options.with_step_path(StepPath::Leap),
        )
        .unwrap();
        let mut base = Engine::new(
            GreedyGapWalker,
            config.clone(),
            base_options.with_step_path(StepPath::StepBaseline),
        )
        .unwrap();

        let k = config.num_robots();
        let (leap_reports, leap_err) = drive(&mut leap, k, &main);
        let (base_reports, base_err) = drive(&mut base, k, &main);

        prop_assert_eq!(leap_reports, base_reports);
        prop_assert_eq!(leap_err, base_err);
        assert_engines_equal(&leap, &base);
        prop_assert_eq!(leap.trace().events(), base.trace().events());
        let a = serde_json::to_string(leap.trace().events()).unwrap();
        let b = serde_json::to_string(base.trace().events()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The batched path: `Engine::leap(r)` for arbitrary `r` (including 0
    /// and 1) advances exactly like the reported number of fully synchronous
    /// rounds of ordinary stepping, and interleaves soundly with scripted
    /// stepping before and after the jump.
    #[test]
    fn batched_leap_equals_fsync_rounds(
        gaps in gap_word(),
        warmup_rounds in 0usize..4,
        r in 0u64..5,
        tail in script(),
    ) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions::for_protocol(&GreedyGapWalker);
        let mut leap = Engine::new(
            GreedyGapWalker,
            config.clone(),
            options.with_step_path(StepPath::Leap),
        )
        .unwrap();
        let mut base = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();

        let k = config.num_robots();
        let full: Vec<usize> = (0..k).collect();
        let mut aborted = false;
        for _ in 0..warmup_rounds {
            let a = leap.step(&SchedulerStep::SsyncRound(full.clone()), &mut ());
            let b = base.step(&SchedulerStep::SsyncRound(full.clone()), &mut ());
            prop_assert_eq!(&a, &b, "warmup rounds must agree");
            if a.is_err() {
                // e.g. an exclusivity violation: both engines must have
                // failed identically, and the case ends here.
                aborted = true;
                break;
            }
        }
        if aborted {
            assert_engines_equal(&leap, &base);
            return;
        }

        let jumped = leap.leap(r, &mut ()).unwrap_or(0);
        prop_assert!(jumped <= r, "a leap never overshoots its bound");
        if r == 0 {
            prop_assert_eq!(jumped, 0, "leap(0) must be a no-op");
        }
        for _ in 0..jumped {
            base.step(&SchedulerStep::SsyncRound(full.clone()), &mut ()).unwrap();
        }
        assert_engines_equal(&leap, &base);

        // The engines must still agree on everything after the jump.
        let (leap_reports, leap_err) = drive(&mut leap, k, &tail);
        let (base_reports, base_err) = drive(&mut base, k, &tail);
        prop_assert_eq!(leap_reports, base_reports);
        prop_assert_eq!(leap_err, base_err);
        assert_engines_equal(&leap, &base);
    }
}

/// Deterministic pin of the degenerate jump lengths: a lone walker's
/// certificate holds forever, `leap(0)` declines, `leap(1)` advances exactly
/// one round, and the fully synchronous driver loop reproduces stepping.
#[test]
fn leap_lengths_zero_and_one() {
    let config = Configuration::from_gaps_at_origin(&[7]);
    let options = EngineOptions::for_protocol(&GreedyGapWalker);
    let mut leap = Engine::new(
        GreedyGapWalker,
        config.clone(),
        options.with_step_path(StepPath::Leap),
    )
    .unwrap();
    let mut base = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();

    assert_eq!(leap.leap(0, &mut ()), None, "leap(0) is a no-op");
    assert_eq!(
        leap.leap(1, &mut ()),
        Some(1),
        "lone walker leaps one round"
    );
    base.step(&SchedulerStep::SsyncRound(vec![0]), &mut ())
        .unwrap();
    assert_eq!(leap.positions(), base.positions());
    assert_eq!(leap.step_count(), base.step_count());
    assert_eq!(leap.look_count(), base.look_count());
    assert_eq!(leap.move_count(), base.move_count());

    // And the scheduler-driven entry point agrees with plain stepping.
    let report = leap.run_until(&mut FullySynchronousScheduler, 6, |_| false);
    assert!(report.steps > 0);
    for _ in 0..report.steps {
        base.step(&SchedulerStep::SsyncRound(vec![0]), &mut ())
            .unwrap();
    }
    assert_eq!(leap.positions(), base.positions());
    assert_eq!(leap.step_count(), base.step_count());
}
