//! Semantic contracts of the unified [`Engine::step`] pipeline:
//!
//! * **determinism** — a run is a pure function of (initial configuration,
//!   protocol, scheduler stream): same seed + same scheduler ⇒ identical
//!   trace, identical final configuration;
//! * **SSYNC equivalence** — `Engine::step(SsyncRound(..))` implements
//!   exactly the look-all-then-move-all semantics the `ssync_round` entry
//!   point had before the engine refactor, including the CORDA rule that a
//!   pending decision is kept (never recomputed) when its robot is activated
//!   again.

use proptest::prelude::*;
use rr_corda::scheduler::AsynchronousScheduler;
use rr_corda::{
    Decision, Engine, EngineOptions, MoveLog, Protocol, Scheduler, SchedulerStep, Snapshot,
    ViewIndex,
};
use rr_ring::{Configuration, Direction, Ring};

/// The non-trivial deterministic test protocol shared with the invariants
/// suite: move towards the larger adjacent gap when the gaps differ.
#[derive(Debug, Clone, Copy)]
struct DriftProtocol;

impl Protocol for DriftProtocol {
    fn name(&self) -> &str {
        "drift"
    }

    fn requires_exclusivity(&self) -> bool {
        false
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        match a.cmp(&b) {
            std::cmp::Ordering::Greater => Decision::Move(ViewIndex::First),
            std::cmp::Ordering::Less => Decision::Move(ViewIndex::Second),
            std::cmp::Ordering::Equal => Decision::Idle,
        }
    }
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (6usize..16, 2usize..6).prop_flat_map(|(n, k)| {
        proptest::collection::vec(0usize..n, k..=k).prop_filter_map(
            "distinct nodes",
            move |nodes| {
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != nodes.len() {
                    return None;
                }
                Configuration::new_exclusive(Ring::new(n), &nodes).ok()
            },
        )
    })
}

/// Reference SSYNC semantics, written directly against the data model: every
/// listed robot decides on the *pre-round* configuration, then the decided
/// moves are applied in listing order.
fn reference_ssync_round(
    config: &Configuration,
    positions: &[usize],
    robots: &[usize],
) -> (Configuration, Vec<(usize, usize, usize)>) {
    let ring = config.ring();
    let mut decided = Vec::new();
    for &r in robots {
        let node = positions[r];
        let snapshot = Snapshot::capture(config, node, DriftProtocol.capability(), Direction::Cw);
        match DriftProtocol.compute(&snapshot) {
            Decision::Idle => {}
            Decision::Move(idx) => {
                let dir = match idx {
                    ViewIndex::First => Direction::Cw,
                    ViewIndex::Second => Direction::Ccw,
                };
                decided.push((r, node, ring.neighbor(node, dir)));
            }
        }
    }
    let mut after = config.clone();
    for &(_, from, to) in &decided {
        after.move_robot(from, to).expect("reference move is legal");
    }
    (after, decided)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed + same scheduler ⇒ identical trace and final configuration.
    #[test]
    fn runs_are_deterministic_per_seed(config in config_strategy(), seed in 0u64..1_000) {
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let options = EngineOptions::for_protocol(&DriftProtocol).with_trace();
            let mut engine = Engine::new(DriftProtocol, config.clone(), options).expect("valid");
            let mut scheduler = AsynchronousScheduler::seeded(seed);
            let mut log = MoveLog::default();
            for _ in 0..150 {
                let step = scheduler.next(&engine.scheduler_view());
                engine.step(&step, &mut log).expect("drift never fails");
            }
            outcomes.push((
                engine.trace().events().to_vec(),
                engine.configuration().clone(),
                log.moves,
            ));
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0, "traces differ");
        prop_assert_eq!(&outcomes[0].1, &outcomes[1].1, "final configurations differ");
        prop_assert_eq!(&outcomes[0].2, &outcomes[1].2, "observed moves differ");
    }

    /// A full SSYNC round through `Engine::step` equals the reference
    /// look-all-then-move-all semantics.
    #[test]
    fn ssync_round_matches_reference_semantics(config in config_strategy()) {
        let mut engine = Engine::with_default_options(DriftProtocol, config.clone()).expect("valid");
        let robots: Vec<usize> = (0..engine.num_robots()).collect();
        let positions = engine.positions();
        let (expected_after, expected_moves) = reference_ssync_round(&config, &positions, &robots);

        let report = engine
            .step(&SchedulerStep::SsyncRound(robots), &mut ())
            .expect("drift never fails");
        prop_assert_eq!(engine.configuration(), &expected_after);
        let got: Vec<(usize, usize, usize)> =
            report.moves.iter().map(|m| (m.robot, m.from, m.to)).collect();
        prop_assert_eq!(got, expected_moves);
    }

    /// A pending decision survives an SSYNC round untouched: the robot does
    /// not re-look even though the configuration changed after its Look.
    #[test]
    fn pending_decisions_are_kept_not_recomputed(config in config_strategy(), seed in 0u64..1_000) {
        let mut engine = Engine::with_default_options(DriftProtocol, config.clone()).expect("valid");
        // Robot 0 looks now ...
        engine.step(&SchedulerStep::Look(0), &mut ()).expect("look");
        let was_pending = engine.robots()[0].has_pending_move();
        let pending_target = match engine.robots()[0].phase {
            rr_corda::robot::Phase::MovePending { target } => Some(target),
            _ => None,
        };
        // ... the world changes around it ...
        let mut scheduler = AsynchronousScheduler::seeded(seed);
        for _ in 0..20 {
            let step = scheduler.next(&engine.scheduler_view());
            // Keep robot 0 frozen so only its pending state is at stake.
            let step = match step {
                SchedulerStep::SsyncRound(rs) => {
                    let rs: Vec<usize> = rs.into_iter().filter(|&r| r != 0).collect();
                    if rs.is_empty() { continue; }
                    SchedulerStep::SsyncRound(rs)
                }
                SchedulerStep::Look(0) | SchedulerStep::Execute(0) => continue,
                other => other,
            };
            engine.step(&step, &mut ()).expect("drift never fails");
        }
        // ... and when robot 0 is finally activated, it executes the decision
        // it computed at the very beginning.
        let report = engine
            .step(&SchedulerStep::SsyncRound(vec![0]), &mut ())
            .expect("drift never fails");
        prop_assert_eq!(report.looks, 0, "pending robot must not re-look");
        if was_pending {
            prop_assert_eq!(report.moves.len(), 1);
            prop_assert_eq!(Some(report.moves[0].to), pending_target);
        } else {
            prop_assert!(!report.moved());
        }
    }
}

/// One concrete, hand-checkable SSYNC equivalence case (the adjacent-robots
/// scenario where look-then-move ordering is observable).
#[test]
fn ssync_round_is_snapshot_atomic() {
    // Robots at 0 and 1 on an 8-ring: each sees the other adjacent and the
    // big gap behind; both walk away from each other.  If the round moved
    // robot 0 before robot 1 looked, robot 1 would see a different world and
    // decide differently — the assertion would fail.
    let config = Configuration::from_gaps_at_origin(&[0, 6]);
    let mut engine = Engine::with_default_options(DriftProtocol, config.clone()).unwrap();
    let (expected_after, expected_moves) =
        reference_ssync_round(&config, &engine.positions(), &[0, 1]);
    let report = engine
        .step(&SchedulerStep::SsyncRound(vec![0, 1]), &mut ())
        .unwrap();
    assert_eq!(report.moves.len(), 2);
    assert_eq!(engine.configuration(), &expected_after);
    let got: Vec<(usize, usize, usize)> = report
        .moves
        .iter()
        .map(|m| (m.robot, m.from, m.to))
        .collect();
    assert_eq!(got, expected_moves);
}
