//! Property test pinning `Engine::reset` ≡ fresh `Engine::new`: over random
//! step sequences, the recycled engine produces **byte-identical** traces and
//! `StepReport` streams (and identical errors, positions, and counters) to a
//! freshly constructed engine.  The batch workers (`BatchRunner`) and every
//! sweep built on them rely on exactly this equivalence.

use proptest::prelude::*;
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::{Engine, EngineOptions, SchedulerStep, SimError, StepPath, StepReport, ViewOrder};
use rr_ring::Configuration;

/// A random gap word for `k` robots (k inferred from the vector length) with
/// a positive total gap, so the ring is never full.
fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (2usize..6, 1usize..10).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..4, k).prop_map(move |mut gaps| {
            gaps[k - 1] += extra;
            gaps
        })
    })
}

/// A random scheduler step for a system of `k` robots: an atomic cycle, a
/// bare Look, a bare Execute, or a small SSYNC round.
fn step_for(k: usize, kind: u8, a: usize, b: usize) -> SchedulerStep {
    let (a, b) = (a % k, b % k);
    match kind % 4 {
        0 => SchedulerStep::Look(a),
        1 => SchedulerStep::Execute(a),
        2 => SchedulerStep::SsyncRound(vec![a]),
        _ => {
            let mut round = vec![a];
            if b != a {
                round.push(b);
            }
            SchedulerStep::SsyncRound(round)
        }
    }
}

fn script() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..4, 0usize..8, 0usize..8), 1..40)
}

/// Applies `script` to `engine`, collecting every `StepReport` (and the
/// first error, which aborts the run exactly like a batch job would abort).
fn drive(
    engine: &mut Engine<GreedyGapWalker>,
    k: usize,
    script: &[(u8, usize, usize)],
) -> (Vec<StepReport>, Option<SimError>) {
    let mut reports = Vec::new();
    for &(kind, a, b) in script {
        match engine.step(&step_for(k, kind, a, b), &mut ()) {
            Ok(report) => reports.push(report),
            Err(e) => return (reports, Some(e)),
        }
    }
    (reports, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A recycled engine (run on one instance, then `reset` onto another) is
    /// indistinguishable from a fresh engine on the second instance: same
    /// `StepReport` stream, same trace bytes, same final state.
    #[test]
    fn reset_engine_equals_fresh_engine(
        first in gap_word(),
        second in gap_word(),
        warmup in script(),
        main in script(),
    ) {
        let first = Configuration::from_gaps_at_origin(&first);
        let second = Configuration::from_gaps_at_origin(&second);
        let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();

        // Recycled: run the warmup script on the first instance, then reset.
        let mut recycled = Engine::new(GreedyGapWalker, first.clone(), options).unwrap();
        let _ = drive(&mut recycled, first.num_robots(), &warmup);
        recycled.reset(GreedyGapWalker, &second, options).unwrap();

        let mut fresh = Engine::new(GreedyGapWalker, second.clone(), options).unwrap();

        let k = second.num_robots();
        let (recycled_reports, recycled_err) = drive(&mut recycled, k, &main);
        let (fresh_reports, fresh_err) = drive(&mut fresh, k, &main);

        prop_assert_eq!(recycled_reports, fresh_reports);
        prop_assert_eq!(recycled_err, fresh_err);
        prop_assert_eq!(recycled.configuration(), fresh.configuration());
        prop_assert_eq!(recycled.positions(), fresh.positions());
        prop_assert_eq!(recycled.robots(), fresh.robots());
        prop_assert_eq!(recycled.step_count(), fresh.step_count());
        prop_assert_eq!(recycled.move_count(), fresh.move_count());
        prop_assert_eq!(recycled.look_count(), fresh.look_count());
        // Byte-identical traces (serialized through the same serde path the
        // sweep records use).
        prop_assert_eq!(recycled.trace().events(), fresh.trace().events());
        let a = serde_json::to_string(recycled.trace().events()).unwrap();
        let b = serde_json::to_string(fresh.trace().events()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Resetting onto the *same* instance replays the identical run, even
    /// after an aborted (error) run.
    #[test]
    fn reset_is_idempotent_on_the_same_instance(
        gaps in gap_word(),
        main in script(),
    ) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let mut engine = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
        let k = config.num_robots();

        let first = drive(&mut engine, k, &main);
        let first_trace = engine.trace().events().to_vec();
        engine.reset(GreedyGapWalker, &config, options).unwrap();
        let second = drive(&mut engine, k, &main);
        prop_assert_eq!(first, second);
        prop_assert_eq!(first_trace, engine.trace().events().to_vec());
    }

    /// `reset` must discard the round-leaping decision memo.  The memo's key
    /// is the configuration, but its *value* also depends on the options
    /// (view order, capability, Look path) the decisions were computed under;
    /// a memo that survived a reset onto different options would replay
    /// decisions from the wrong policy.  Here the warmup runs in Leap mode
    /// under one view order, the engine is reset onto the *mirrored* view
    /// order (still Leap mode), and the recycled engine must match a fresh
    /// engine step for step — trace bytes included.
    #[test]
    fn reset_discards_the_leap_memo(
        first in gap_word(),
        second in gap_word(),
        warmup in script(),
        main in script(),
    ) {
        let first = Configuration::from_gaps_at_origin(&first);
        let second = Configuration::from_gaps_at_origin(&second);
        let warm_options = EngineOptions::for_protocol(&GreedyGapWalker)
            .with_trace()
            .with_view_order(ViewOrder::CwFirst)
            .with_step_path(StepPath::Leap);
        let main_options = warm_options.with_view_order(ViewOrder::CcwFirst);

        let mut recycled = Engine::new(GreedyGapWalker, first.clone(), warm_options).unwrap();
        let _ = drive(&mut recycled, first.num_robots(), &warmup);
        recycled.reset(GreedyGapWalker, &second, main_options).unwrap();

        let mut fresh = Engine::new(GreedyGapWalker, second.clone(), main_options).unwrap();

        let k = second.num_robots();
        let (recycled_reports, recycled_err) = drive(&mut recycled, k, &main);
        let (fresh_reports, fresh_err) = drive(&mut fresh, k, &main);

        prop_assert_eq!(recycled_reports, fresh_reports);
        prop_assert_eq!(recycled_err, fresh_err);
        prop_assert_eq!(recycled.configuration(), fresh.configuration());
        prop_assert_eq!(recycled.positions(), fresh.positions());
        prop_assert_eq!(recycled.step_count(), fresh.step_count());
        prop_assert_eq!(recycled.move_count(), fresh.move_count());
        prop_assert_eq!(recycled.look_count(), fresh.look_count());
        prop_assert_eq!(recycled.trace().events(), fresh.trace().events());
    }
}
