//! Edge-case tests for `AsynchronousScheduler::with_fairness_window`.
//!
//! * `window = 1` — every pending action is flushed on the very next step, so
//!   the asynchronous adversary degenerates to a centralized sequential
//!   scheduler: atomic Look–Execute cycles, never a stale snapshot;
//! * bounded windows — no robot is ever starved: the gap between consecutive
//!   activations of a robot is bounded by the documented
//!   `fairness_window * k` (plus the slack of serving one forced action per
//!   step), even for huge windows where the bound, not the randomness, is
//!   the only guarantee;
//! * bounded-unfair edges — the `BoundedUnfairScheduler` fault adversary at
//!   `B = 1` degenerates to the fair bounds above (the single withheld step
//!   is absorbed by the ordinary slack), while `B = ∞` starves its victim
//!   forever without compromising fairness among the survivors.

use rr_corda::protocol::GreedyGapWalker;
use rr_corda::scheduler::AsynchronousScheduler;
use rr_corda::{
    BoundedUnfairScheduler, Engine, EngineOptions, Scheduler, SchedulerStep, SchedulerView,
};
use rr_ring::Configuration;

/// Drives `scheduler` against a synthetic pending-flag state machine that
/// mirrors the engine's bookkeeping (one step-counter tick per Look and per
/// Execute), returning the emitted steps.
fn drive_synthetic<S: Scheduler>(scheduler: &mut S, k: usize, ops: usize) -> Vec<SchedulerStep> {
    let mut pending = vec![false; k];
    let mut out = Vec::with_capacity(ops);
    for step in 0..ops as u64 {
        let view = SchedulerView {
            step,
            pending: pending.clone(),
            pending_moves: pending.clone(),
            num_robots: k,
        };
        let s = scheduler.next(&view);
        match &s {
            SchedulerStep::Look(r) => {
                assert!(!pending[*r], "scheduler asked a pending robot to look");
                pending[*r] = true;
            }
            SchedulerStep::Execute(r) => {
                assert!(
                    pending[*r],
                    "scheduler executed a robot with nothing pending"
                );
                pending[*r] = false;
            }
            SchedulerStep::SsyncRound(_) => panic!("the async scheduler never emits rounds"),
        }
        out.push(s);
    }
    out
}

#[test]
fn window_one_forces_atomic_sequential_cycles() {
    // With fairness window 1 a Look is always followed immediately by the
    // same robot's Execute: the adversary cannot interleave, i.e. cannot
    // create a single stale snapshot — ASYNC collapses to a centralized
    // sequential (round-robin-like) scheduler.
    for seed in [0u64, 1, 42] {
        let mut s = AsynchronousScheduler::seeded(seed).with_fairness_window(1);
        let steps = drive_synthetic(&mut s, 4, 2_000);
        for pair in steps.windows(2) {
            if let SchedulerStep::Look(r) = pair[0] {
                assert_eq!(
                    pair[1],
                    SchedulerStep::Execute(r),
                    "seed {seed}: a look must be flushed on the next step"
                );
            }
        }
        // With atomic 2-step cycles and a look deadline of `window * k = 4`
        // steps, some robot is always overdue after warm-up, so the forced
        // oldest-first branch dominates: the tail of the run is a strict
        // round-robin — every 4 consecutive Looks touch all 4 robots.
        let looks: Vec<usize> = steps
            .iter()
            .filter_map(|s| match s {
                SchedulerStep::Look(r) => Some(*r),
                _ => None,
            })
            .collect();
        let tail = &looks[looks.len() - 400..];
        for w in tail.windows(4) {
            let distinct: std::collections::HashSet<&usize> = w.iter().collect();
            assert_eq!(
                distinct.len(),
                4,
                "seed {seed}: window {w:?} is not round-robin"
            );
        }
    }
}

/// Max gap (in scheduler steps) between consecutive activations of any robot.
fn max_activation_gap(steps: &[SchedulerStep], k: usize) -> u64 {
    let mut last = vec![0u64; k];
    let mut max_gap = 0u64;
    for (i, s) in steps.iter().enumerate() {
        let i = i as u64 + 1;
        let r = match s {
            SchedulerStep::Look(r) | SchedulerStep::Execute(r) => *r,
            SchedulerStep::SsyncRound(_) => unreachable!(),
        };
        max_gap = max_gap.max(i - last[r]);
        last[r] = i;
    }
    let total = steps.len() as u64;
    for &seen in &last {
        max_gap = max_gap.max(total - seen);
    }
    max_gap
}

#[test]
fn bounded_window_never_starves_a_robot() {
    // The scheduler promises a Look at least once every `window * k` steps
    // and a flush within `window`; with at most one forced action served per
    // step, `2k` extra steps of queueing slack cover simultaneous deadlines.
    let k = 4usize;
    for (seed, window) in [(7u64, 7u64), (9, 16), (3, 64)] {
        let mut s = AsynchronousScheduler::seeded(seed).with_fairness_window(window);
        let steps = drive_synthetic(&mut s, k, 20_000);
        let bound = window * k as u64 + 2 * k as u64;
        let gap = max_activation_gap(&steps, k);
        assert!(
            gap <= bound,
            "seed {seed} window {window}: observed gap {gap} > bound {bound}"
        );
    }
}

#[test]
fn huge_window_is_still_fair_by_the_bound() {
    // A "huge" window (far larger than the run) means forced wake-ups almost
    // never fire — fairness then rests on the `window * k` bound alone, and
    // the bound must still hold.
    let k = 3usize;
    let window = 1_000u64;
    let mut s = AsynchronousScheduler::seeded(11).with_fairness_window(window);
    let steps = drive_synthetic(&mut s, k, 30_000);
    let gap = max_activation_gap(&steps, k);
    assert!(gap <= window * k as u64 + 2 * k as u64, "gap {gap}");
    // Every robot is activated many times over the run.
    for r in 0..k {
        let count = steps
            .iter()
            .filter(|s| matches!(s, SchedulerStep::Look(x) | SchedulerStep::Execute(x) if *x == r))
            .count();
        assert!(count > 100, "robot {r} activated only {count} times");
    }
}

#[test]
fn budget_one_unfair_degenerates_to_the_fair_bounds() {
    // Satellite pin: `B = 1` withholds the victim for a single scheduler
    // step, which the ordinary fairness slack absorbs — the starvation
    // bounds of the fair asynchronous scheduler (pinned above against the
    // PR-3 tests) hold unchanged, victim included.
    let k = 4usize;
    for (seed, window) in [(7u64, 7u64), (9, 16), (3, 64)] {
        for victim in 0..k {
            let mut s =
                BoundedUnfairScheduler::seeded(seed, victim, 1).with_fairness_window(window);
            let steps = drive_synthetic(&mut s, k, 20_000);
            let bound = window * k as u64 + 2 * k as u64;
            let gap = max_activation_gap(&steps, k);
            assert!(
                gap <= bound,
                "seed {seed} window {window} victim {victim}: gap {gap} > fair bound {bound}"
            );
            assert!(!s.starving(), "a B=1 budget must be spent immediately");
        }
    }
}

#[test]
fn infinite_budget_starves_the_victim_and_nobody_else() {
    // `B = ∞`: the victim is never activated — the engine-side half of the
    // starvation story (the checker half, `starving_one_robot_yields_an_
    // unfair_lasso_that_replays`, shows gathering liveness then fails with a
    // fair-modulo-starvation lasso).  The survivors keep their fair bound
    // with the victim's share of the schedule redistributed.
    let k = 4usize;
    let victim = 2usize;
    let window = 16u64;
    let mut s = BoundedUnfairScheduler::seeded(9, victim, u64::MAX).with_fairness_window(window);
    let steps = drive_synthetic(&mut s, k, 20_000);
    assert!(s.starving(), "an infinite budget never runs out");
    let mut last = vec![0u64; k];
    for (i, step) in steps.iter().enumerate() {
        let r = match step {
            SchedulerStep::Look(r) | SchedulerStep::Execute(r) => *r,
            SchedulerStep::SsyncRound(_) => unreachable!(),
        };
        assert_ne!(r, victim, "starved victim activated at step {i}");
        last[r] = i as u64 + 1;
    }
    // Every survivor is served within the fair bound right up to the end.
    let bound = window * k as u64 + 2 * k as u64;
    for (r, &seen) in last.iter().enumerate() {
        if r != victim {
            assert!(
                steps.len() as u64 - seen <= bound,
                "survivor {r} starved at the tail"
            );
        }
    }
}

#[test]
fn fairness_bound_holds_against_a_real_engine() {
    // Same bound, measured through the engine instead of the synthetic state
    // machine: every robot keeps completing Look–Compute–Move cycles.
    let config = Configuration::from_gaps_at_origin(&[0, 2, 1, 0, 4]); // n=12, k=5
    let k = config.num_robots();
    let options = EngineOptions {
        enforce_exclusivity: false,
        ..EngineOptions::for_protocol(&GreedyGapWalker)
    };
    let mut engine = Engine::new(GreedyGapWalker, config, options).unwrap();
    let window = 8u64;
    let mut scheduler = AsynchronousScheduler::seeded(5).with_fairness_window(window);
    let mut last_activated = vec![0u64; k];
    let bound = window * k as u64 + 2 * k as u64;
    for i in 1..=30_000u64 {
        let step = scheduler.next(&engine.scheduler_view());
        let r = match &step {
            SchedulerStep::Look(r) | SchedulerStep::Execute(r) => *r,
            SchedulerStep::SsyncRound(_) => unreachable!(),
        };
        assert!(
            i - last_activated[r] <= bound,
            "robot {r} starved for {} scheduler steps",
            i - last_activated[r]
        );
        last_activated[r] = i;
        engine.step(&step, &mut ()).unwrap();
    }
    for (r, robot) in engine.robots().iter().enumerate() {
        assert!(robot.cycles > 100, "robot {r}: {} cycles", robot.cycles);
    }
}
