//! Lockstep property tests for the fault-injection layer.
//!
//! The contract that makes faults safe to thread through the engine's hot
//! paths: an engine with [`FaultModel::None`] armed is **byte-identical** to
//! an engine that never heard of faults — same `StepReport` streams, same
//! errors, same counters, same trace events, same `rr-sweep/v1` JSON bytes.
//! These tests mirror the `leap_lockstep` harness (arbitrary configurations
//! × arbitrary activation scripts) and add the deterministic fault pins:
//! crash-stop ≡ "the victim was never scheduled", corrupted Looks fire
//! exactly once, and `Engine::leap` refuses to serve while a fault is armed,
//! falling back to single-stepping with identical outcomes.

use proptest::prelude::*;
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::scheduler::FullySynchronousScheduler;
use rr_corda::{
    CorruptionKind, Engine, EngineOptions, Event, FaultModel, SchedulerStep, SimError, StepPath,
    StepReport, ViewOrder,
};
use rr_ring::Configuration;

/// A random gap word for `k` robots with a positive total gap, so the ring
/// is never full (same strategy as `leap_lockstep`).
fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (2usize..6, 1usize..10).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..4, k).prop_map(move |mut gaps| {
            gaps[k - 1] += extra;
            gaps
        })
    })
}

/// A random scheduler step for a system of `k` robots.
fn step_for(k: usize, kind: u8, a: usize, b: usize) -> SchedulerStep {
    let (a, b) = (a % k, b % k);
    match kind % 5 {
        0 => SchedulerStep::Look(a),
        1 => SchedulerStep::Execute(a),
        2 => SchedulerStep::SsyncRound(vec![a]),
        3 => {
            let mut round = vec![a];
            if b != a {
                round.push(b);
            }
            SchedulerStep::SsyncRound(round)
        }
        _ => SchedulerStep::SsyncRound((0..k).collect()),
    }
}

fn script() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..5, 0usize..8, 0usize..8), 1..40)
}

fn drive(
    engine: &mut Engine<GreedyGapWalker>,
    k: usize,
    script: &[(u8, usize, usize)],
) -> (Vec<StepReport>, Option<SimError>) {
    let mut reports = Vec::new();
    for &(kind, a, b) in script {
        match engine.step(&step_for(k, kind, a, b), &mut ()) {
            Ok(report) => reports.push(report),
            Err(e) => return (reports, Some(e)),
        }
    }
    (reports, None)
}

fn assert_engines_equal(a: &Engine<GreedyGapWalker>, b: &Engine<GreedyGapWalker>) {
    assert_eq!(a.configuration(), b.configuration());
    assert_eq!(a.positions(), b.positions());
    assert_eq!(a.robots(), b.robots());
    assert_eq!(a.step_count(), b.step_count());
    assert_eq!(a.move_count(), b.move_count());
    assert_eq!(a.look_count(), b.look_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite 1: `FaultModel::None` is a perfect no-op.  Over arbitrary
    /// starts and scripts, an engine that armed (and re-armed) `None`
    /// produces byte-identical reports, errors, counters, trace events and
    /// serialized `rr-sweep/v1` JSON to an engine the fault API never
    /// touched.
    #[test]
    fn none_fault_is_byte_identical_to_the_plain_engine(
        gaps in gap_word(),
        order_sel in 0u8..3,
        main in script(),
    ) {
        let order = match order_sel {
            0 => ViewOrder::CwFirst,
            1 => ViewOrder::CcwFirst,
            _ => ViewOrder::Alternating,
        };
        let config = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions::for_protocol(&GreedyGapWalker)
            .with_trace()
            .with_view_order(order);
        let mut armed = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
        armed.arm_fault(FaultModel::None);
        let mut plain = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();

        let k = config.num_robots();
        // Re-arm None mid-run too: arming must not perturb execution state.
        let (head, tail) = main.split_at(main.len() / 2);
        let (armed_head, armed_err_head) = drive(&mut armed, k, head);
        armed.arm_fault(FaultModel::None);
        let (plain_head, plain_err_head) = drive(&mut plain, k, head);
        prop_assert_eq!(armed_head, plain_head);
        prop_assert_eq!(&armed_err_head, &plain_err_head);
        if armed_err_head.is_none() {
            let (armed_tail, armed_err) = drive(&mut armed, k, tail);
            let (plain_tail, plain_err) = drive(&mut plain, k, tail);
            prop_assert_eq!(armed_tail, plain_tail);
            prop_assert_eq!(armed_err, plain_err);
        }
        assert_engines_equal(&armed, &plain);
        prop_assert_eq!(armed.trace().events(), plain.trace().events());
        let a = serde_json::to_string(armed.trace().events()).unwrap();
        let b = serde_json::to_string(plain.trace().events()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// A corruption scheduled beyond the run's last Look is indistinguishable
    /// from no fault at all — the fault plumbing may not perturb the
    /// fault-free pipeline even while armed.
    #[test]
    fn unfired_corruption_is_invisible(
        gaps in gap_word(),
        kind_sel in 0usize..2,
        main in script(),
    ) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let mut armed = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
        armed.arm_fault(FaultModel::CorruptLook {
            look: u64::MAX,
            kind: CorruptionKind::ALL[kind_sel],
        });
        let mut plain = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();

        let k = config.num_robots();
        let (armed_reports, armed_err) = drive(&mut armed, k, &main);
        let (plain_reports, plain_err) = drive(&mut plain, k, &main);
        prop_assert_eq!(armed_reports, plain_reports);
        prop_assert_eq!(armed_err, plain_err);
        assert_engines_equal(&armed, &plain);
        prop_assert_eq!(armed.trace().events(), plain.trace().events());
    }

    /// Crash-stop semantics, as a lockstep property: an engine with
    /// `Crash { robot, after_step: 0 }` driven by any script reaches exactly
    /// the configuration of a plain engine driven by the same script with
    /// every activation of the victim deleted.
    #[test]
    fn crash_equals_never_scheduling_the_victim(
        gaps in gap_word(),
        victim_sel in 0usize..8,
        main in script(),
    ) {
        let config = Configuration::from_gaps_at_origin(&gaps);
        let k = config.num_robots();
        let victim = victim_sel % k;
        let options = EngineOptions::for_protocol(&GreedyGapWalker);
        let mut crashed = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
        crashed.arm_fault(FaultModel::Crash { robot: victim, after_step: 0 });
        let mut filtered = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();

        for &(kind, a, b) in &main {
            let step = step_for(k, kind, a, b);
            let crashed_result = crashed.step(&step, &mut ());
            let survivor_step = match &step {
                SchedulerStep::SsyncRound(robots) => Some(SchedulerStep::SsyncRound(
                    robots.iter().copied().filter(|&r| r != victim).collect(),
                )),
                SchedulerStep::Look(r) | SchedulerStep::Execute(r) if *r == victim => None,
                other => Some(other.clone()),
            };
            let filtered_result = match survivor_step {
                Some(s) => filtered.step(&s, &mut ()).map(Some),
                // The victim's solo activation is suppressed: a no-op step.
                None => Ok(None),
            };
            match (&crashed_result, &filtered_result) {
                (Ok(_), Ok(_)) => {}
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a, b);
                    break;
                }
                _ => prop_assert!(false, "one engine failed, the other did not"),
            }
            prop_assert_eq!(crashed.configuration(), filtered.configuration());
            prop_assert_eq!(crashed.move_count(), filtered.move_count());
            prop_assert_eq!(crashed.look_count(), filtered.look_count());
        }
    }
}

/// Satellite 2: `Engine::leap` refuses to serve while a fault is armed, and
/// the scheduler-driven run loop falls back to single-stepping with outcomes
/// identical to a baseline engine under the same crash schedule.
#[test]
fn leap_declines_across_a_scheduled_crash_and_falls_back_to_stepping() {
    let config = Configuration::from_gaps_at_origin(&[1, 2, 5]);
    let options = EngineOptions::for_protocol(&GreedyGapWalker);
    let fault = FaultModel::Crash {
        robot: 1,
        after_step: 3,
    };

    let mut leap = Engine::new(
        GreedyGapWalker,
        config.clone(),
        options.with_step_path(StepPath::Leap),
    )
    .unwrap();
    // Sanity: without a fault the certificate does serve.
    assert!(
        leap.leap(1, &mut ()).is_some(),
        "fault-free leap must serve"
    );

    let mut leap = Engine::new(
        GreedyGapWalker,
        config.clone(),
        options.with_step_path(StepPath::Leap),
    )
    .unwrap();
    leap.arm_fault(fault);
    assert_eq!(
        leap.leap(5, &mut ()),
        None,
        "leap must refuse while a fault is armed"
    );

    // Force the leaping run loop across the scheduled crash: it must fall
    // back to single-stepping and agree with the baseline path exactly.
    let mut base = Engine::new(
        GreedyGapWalker,
        config.clone(),
        options.with_step_path(StepPath::StepBaseline),
    )
    .unwrap();
    base.arm_fault(fault);
    let leap_report = leap.run_until(&mut FullySynchronousScheduler, 12, |_| false);
    let base_report = base.run_until(&mut FullySynchronousScheduler, 12, |_| false);
    assert_eq!(leap_report, base_report);
    assert_engines_equal(&leap, &base);
    assert_eq!(
        leap.leap(1, &mut ()),
        None,
        "the fault stays armed after the run"
    );
}

/// Crash-stop behavioral pin: the victim freezes at the crash step, the
/// once-only `FaultCrash` notification fires at its first suppressed
/// activation, and the fault survives a save/restore excursion (it is
/// configuration, not execution state) but not a `reset`.
#[test]
fn crash_freezes_the_victim_and_notes_once() {
    let config = Configuration::from_gaps_at_origin(&[1, 2, 5]);
    let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
    let mut engine = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
    engine.arm_fault(FaultModel::Crash {
        robot: 0,
        after_step: 2,
    });

    let full: Vec<usize> = (0..3).collect();
    for _ in 0..2 {
        engine
            .step(&SchedulerStep::SsyncRound(full.clone()), &mut ())
            .unwrap();
    }
    let frozen_at = engine.positions()[0];
    let saved = engine.save_state();
    for _ in 0..6 {
        engine
            .step(&SchedulerStep::SsyncRound(full.clone()), &mut ())
            .unwrap();
    }
    assert_eq!(engine.positions()[0], frozen_at, "victim moved after crash");
    let crash_events: Vec<&Event> = engine
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, Event::FaultCrash { .. }))
        .collect();
    assert_eq!(crash_events.len(), 1, "crash must be noted exactly once");
    assert!(
        matches!(crash_events[0], Event::FaultCrash { robot: 0, step } if *step >= 2),
        "unexpected crash note: {:?}",
        crash_events[0]
    );

    // The fault model survives a state excursion (like the protocol and the
    // options do) …
    engine.restore_state(&saved);
    assert_eq!(
        engine.fault_model(),
        FaultModel::Crash {
            robot: 0,
            after_step: 2
        }
    );
    for _ in 0..4 {
        engine
            .step(&SchedulerStep::SsyncRound(full.clone()), &mut ())
            .unwrap();
    }
    assert_eq!(engine.positions()[0], frozen_at, "crash lost after restore");

    // … and is cleared by reset: a recycled engine starts fault-free.
    engine.reset(GreedyGapWalker, &config, options).unwrap();
    assert_eq!(engine.fault_model(), FaultModel::None);
}

/// Corruption behavioral pin: the corrupted Look is identified by its global
/// look ordinal, fires exactly once (trace event before the `Looked` event),
/// and all other Looks stay truthful.
#[test]
fn corrupt_look_fires_exactly_once_at_its_ordinal() {
    let config = Configuration::from_gaps_at_origin(&[1, 2, 5]);
    let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
    for kind in CorruptionKind::ALL {
        let mut engine = Engine::new(GreedyGapWalker, config.clone(), options).unwrap();
        engine.arm_fault(FaultModel::CorruptLook { look: 2, kind });
        let full: Vec<usize> = (0..3).collect();
        for _ in 0..4 {
            engine
                .step(&SchedulerStep::SsyncRound(full.clone()), &mut ())
                .unwrap();
        }
        assert!(engine.look_count() >= 3, "run too short to fire the fault");
        let events = engine.trace().events();
        let corruptions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Event::FaultCorruption { .. }).then_some(i))
            .collect();
        assert_eq!(
            corruptions.len(),
            1,
            "{}: corruption must fire exactly once",
            kind.name()
        );
        let at = corruptions[0];
        // SSYNC rounds Look in robot order: global look ordinal 2 belongs to
        // robot 2 of the first round.
        assert!(
            matches!(events[at], Event::FaultCorruption { robot: 2, kind: k, .. } if k == kind),
            "{}: unexpected corruption event: {:?}",
            kind.name(),
            events[at]
        );
        assert!(
            matches!(events[at + 1], Event::Looked { robot: 2, .. }),
            "{}: corruption must precede its Looked event",
            kind.name()
        );
    }
}
