//! Property tests pinning the packed-state codec: over random engine
//! histories, `pack`/`restore_packed` round-trips are **byte-identical** to
//! `save_state`/`restore_state` — the saved state, the restored engine's
//! next save, and their serialized JSON bytes all coincide — and the two
//! pack entry points (`EngineState::pack`, `Engine::pack_state`) agree bit
//! for bit.  The behavioural projection (`Engine::pack_behavior`) and the
//! state signatures are pinned against their reference definitions
//! (`exact_key`, `canonical_key`) on the same histories.

use proptest::prelude::*;
use rr_corda::protocol::GreedyGapWalker;
use rr_corda::{Engine, EngineOptions, SchedulerStep};
use rr_ring::Configuration;

/// A random gap word for `k` robots with a positive total gap.
fn gap_word() -> impl Strategy<Value = Vec<usize>> {
    (2usize..6, 1usize..10).prop_flat_map(|(k, extra)| {
        proptest::collection::vec(0usize..4, k).prop_map(move |mut gaps| {
            gaps[k - 1] += extra;
            gaps
        })
    })
}

fn step_for(k: usize, kind: u8, a: usize, b: usize) -> SchedulerStep {
    let (a, b) = (a % k, b % k);
    match kind % 4 {
        0 => SchedulerStep::Look(a),
        1 => SchedulerStep::Execute(a),
        2 => SchedulerStep::SsyncRound(vec![a]),
        _ => {
            let mut round = vec![a];
            if b != a {
                round.push(b);
            }
            SchedulerStep::SsyncRound(round)
        }
    }
}

fn script() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..4, 0usize..8, 0usize..8), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every prefix of a random history, packing and restoring
    /// reproduces the engine state byte for byte.
    #[test]
    fn pack_restore_is_byte_identical_to_save_restore(
        gaps in gap_word(),
        steps in script(),
    ) {
        let initial = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions {
            enforce_exclusivity: false,
            ..EngineOptions::default()
        };
        let mut engine = Engine::new(GreedyGapWalker, initial.clone(), options).unwrap();
        let k = engine.num_robots();
        let mut scratch = Engine::new(GreedyGapWalker, initial, options).unwrap();
        for &(kind, a, b) in &steps {
            // Advance (ignoring rejected steps — the history stays random).
            let _ = engine.step(&step_for(k, kind, a, b), &mut ());

            let saved = engine.save_state();
            let packed = saved.pack();
            prop_assert_eq!(&packed, &engine.pack_state(), "pack entry points disagree");

            // Codec path: restore the packed bits into a second engine.
            scratch.restore_packed(&packed);
            let unpacked = scratch.save_state();
            prop_assert_eq!(&unpacked, &saved, "packed round trip drifted");
            prop_assert_eq!(
                serde_json::to_string(&unpacked).unwrap(),
                serde_json::to_string(&saved).unwrap(),
                "serialized bytes differ"
            );

            // Clone path for reference: restore_state must agree with
            // restore_packed on every observable.
            scratch.restore_state(&saved);
            prop_assert_eq!(&scratch.save_state(), &saved);
            prop_assert_eq!(scratch.positions(), engine.positions());
        }
    }

    /// The delta codec round-trips: for every state along a random history,
    /// `apply_delta(base, state.delta_from(&base)) == state` against every
    /// earlier state as the cluster base — exactly how the spill store's
    /// cluster compression uses it.
    #[test]
    fn delta_codec_round_trips_over_move_scripts(
        gaps in gap_word(),
        steps in script(),
    ) {
        let initial = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions {
            enforce_exclusivity: false,
            ..EngineOptions::default()
        };
        let mut engine = Engine::new(GreedyGapWalker, initial, options).unwrap();
        let k = engine.num_robots();
        let mut history = vec![engine.pack_state()];
        for &(kind, a, b) in &steps {
            let _ = engine.step(&step_for(k, kind, a, b), &mut ());
            history.push(engine.pack_state());
        }
        let base = &history[0];
        for state in &history {
            let delta = state.delta_from(base);
            prop_assert_eq!(
                &rr_corda::PackedState::apply_delta(base, &delta),
                state,
                "delta round trip drifted"
            );
            // A state deltas against itself to the empty entry list.
            let self_delta = state.delta_from(state);
            prop_assert_eq!(
                &rr_corda::PackedState::apply_delta(state, &self_delta),
                state
            );
        }
    }

    /// The packed signatures agree with their reference definitions: equal
    /// `behavior_sig` ⇔ equal `exact_key`, and equal `canonical_sig` ⇔ equal
    /// `canonical_key` — across states drawn from two random histories of
    /// the same instance.  The behavioural projection `pack_behavior` keys
    /// the same behaviour class as the full pack.
    #[test]
    fn signatures_match_their_reference_keys(
        gaps in gap_word(),
        first in script(),
        second in script(),
    ) {
        let initial = Configuration::from_gaps_at_origin(&gaps);
        let options = EngineOptions {
            enforce_exclusivity: false,
            ..EngineOptions::default()
        };
        let mut a = Engine::new(GreedyGapWalker, initial.clone(), options).unwrap();
        let mut b = Engine::new(GreedyGapWalker, initial, options).unwrap();
        let k = a.num_robots();
        for &(kind, x, y) in &first {
            let _ = a.step(&step_for(k, kind, x, y), &mut ());
        }
        for &(kind, x, y) in &second {
            let _ = b.step(&step_for(k, kind, x, y), &mut ());
        }
        let (sa, sb) = (a.save_state(), b.save_state());
        prop_assert_eq!(
            sa.exact_key() == sb.exact_key(),
            a.behavior_sig() == b.behavior_sig()
        );
        prop_assert_eq!(
            sa.canonical_key() == sb.canonical_key(),
            a.canonical_sig() == b.canonical_sig()
        );
        // Live-engine and packed-state signature entry points agree.
        prop_assert_eq!(a.behavior_sig(), sa.pack().behavior_sig());
        prop_assert_eq!(a.canonical_sig(), sa.pack().canonical_sig());
        // The behavioural projection drops exactly the counters.
        let projected = a.pack_behavior();
        prop_assert_eq!(projected.behavior_sig(), a.behavior_sig());
        let mut scratch = a.clone();
        scratch.restore_packed(&projected);
        prop_assert_eq!(scratch.save_state().exact_key(), sa.exact_key());
        prop_assert_eq!(scratch.step_count(), 0, "projection zeroes the counters");
        prop_assert_eq!(scratch.configuration(), a.configuration());
    }
}
