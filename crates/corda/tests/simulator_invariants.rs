//! Property-based and randomized invariants of the Look–Compute–Move
//! simulator: robot conservation, position/configuration consistency,
//! scheduler well-formedness and trace faithfulness.

use proptest::prelude::*;
use rr_corda::scheduler::{
    AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
};
use rr_corda::{
    Decision, Engine, EngineOptions, Event, Protocol, Scheduler, SchedulerStep, Snapshot, ViewIndex,
};
use rr_ring::{Configuration, Ring};

/// A deterministic but non-trivial test protocol: robots move towards their
/// larger adjacent gap whenever the gaps differ.  Under the asynchronous
/// scheduler a pending move may land on a node that became occupied in the
/// meantime, so the protocol does not declare the exclusivity requirement and
/// the invariants below are about conservation and trace faithfulness only.
#[derive(Debug, Clone, Copy)]
struct DriftProtocol;

impl Protocol for DriftProtocol {
    fn name(&self) -> &str {
        "drift"
    }

    fn requires_exclusivity(&self) -> bool {
        false
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        match a.cmp(&b) {
            std::cmp::Ordering::Greater => Decision::Move(ViewIndex::First),
            std::cmp::Ordering::Less => Decision::Move(ViewIndex::Second),
            std::cmp::Ordering::Equal => Decision::Idle,
        }
    }
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (6usize..16, 2usize..6).prop_flat_map(|(n, k)| {
        proptest::collection::vec(0usize..n, k..=k).prop_filter_map(
            "distinct nodes",
            move |nodes| {
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != nodes.len() {
                    return None;
                }
                Configuration::new_exclusive(Ring::new(n), &nodes).ok()
            },
        )
    })
}

fn run_with<S: Scheduler>(
    config: &Configuration,
    mut scheduler: S,
    steps: u64,
) -> Engine<DriftProtocol> {
    let options = EngineOptions::for_protocol(&DriftProtocol).with_trace();
    let mut sim = Engine::new(DriftProtocol, config.clone(), options).expect("valid");
    for _ in 0..steps {
        let step = scheduler.next(&sim.scheduler_view());
        sim.step(&step, &mut ())
            .expect("exclusivity is not enforced for the drift protocol");
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The number of robots is conserved and the simulator's position vector
    /// always matches the configuration's occupancy, under every scheduler.
    #[test]
    fn robots_are_conserved(config in config_strategy(), seed in 0u64..1_000) {
        let k = config.num_robots();
        for variant in 0..4usize {
            let sim = match variant {
                0 => run_with(&config, RoundRobinScheduler::new(), 60),
                1 => run_with(&config, FullySynchronousScheduler, 30),
                2 => run_with(&config, SemiSynchronousScheduler::seeded(seed), 40),
                _ => run_with(&config, AsynchronousScheduler::seeded(seed), 80),
            };
            prop_assert_eq!(sim.configuration().num_robots(), k);
            prop_assert_eq!(sim.num_robots(), k);
            // positions() and the configuration agree.
            let mut counts = vec![0u32; config.n()];
            for p in sim.positions() {
                counts[p] += 1;
            }
            for (v, count) in counts.iter().enumerate() {
                prop_assert_eq!(*count, sim.configuration().count_at(v));
            }
        }
    }

    /// The trace replays to the final configuration: applying the recorded
    /// moves to the initial configuration yields the simulator's end state.
    #[test]
    fn trace_replays_to_final_configuration(config in config_strategy(), seed in 0u64..1_000) {
        let sim = run_with(&config, AsynchronousScheduler::seeded(seed), 120);
        let mut replay = config.clone();
        for (_, from, to) in sim.trace().moves() {
            replay.move_robot(from, to).expect("trace moves are legal");
        }
        prop_assert_eq!(&replay, sim.configuration());
        // Move events in the trace match the simulator's move counter.
        prop_assert_eq!(sim.trace().moves().count() as u64, sim.move_count());
    }

    /// Every Look is eventually followed by at most one Move/Idle completion
    /// per robot (cycle accounting), and cycles never exceed looks.
    #[test]
    fn cycle_accounting(config in config_strategy(), seed in 0u64..1_000) {
        let sim = run_with(&config, AsynchronousScheduler::seeded(seed), 100);
        let looks = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Looked { .. }))
            .count() as u64;
        let completions: u64 = sim.robots().iter().map(|r| r.cycles).sum();
        prop_assert!(completions <= looks);
        prop_assert_eq!(looks, sim.look_count());
    }

    /// Schedulers only ever name existing robots.
    #[test]
    fn schedulers_name_existing_robots(config in config_strategy(), seed in 0u64..1_000) {
        let options = EngineOptions::for_protocol(&DriftProtocol);
        let sim = Engine::new(DriftProtocol, config.clone(), options).expect("valid");
        let view = sim.scheduler_view();
        let k = config.num_robots();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobinScheduler::new()),
            Box::new(FullySynchronousScheduler),
            Box::new(SemiSynchronousScheduler::seeded(seed)),
            Box::new(AsynchronousScheduler::seeded(seed)),
        ];
        for scheduler in &mut schedulers {
            for _ in 0..20 {
                match scheduler.next(&view) {
                    SchedulerStep::SsyncRound(robots) => {
                        prop_assert!(!robots.is_empty());
                        prop_assert!(robots.iter().all(|&r| r < k));
                    }
                    SchedulerStep::Look(r) | SchedulerStep::Execute(r) => prop_assert!(r < k),
                }
            }
        }
    }
}

#[test]
fn alternating_view_order_flips_snapshot_orientation() {
    let config = Configuration::from_gaps_at_origin(&[1, 2, 4]);
    let options = EngineOptions::for_protocol(&DriftProtocol)
        .with_view_order(rr_corda::ViewOrder::Alternating)
        .with_trace();
    let mut sim = Engine::new(DriftProtocol, config, options).unwrap();
    // Two consecutive looks by the same robot id on a frozen configuration
    // would alternate orientation; here we simply check the run stays valid.
    for r in 0..sim.num_robots() {
        sim.step(&SchedulerStep::SsyncRound(vec![r]), &mut ())
            .unwrap();
    }
    assert_eq!(sim.configuration().num_robots(), 3);
}

/// Replays `steps` scheduler decisions against a fresh engine, recording the
/// emitted schedule.  Used by the determinism tests below.
fn schedule_of<S: Scheduler>(
    config: &Configuration,
    mut scheduler: S,
    steps: u64,
) -> Vec<SchedulerStep> {
    let options = EngineOptions::for_protocol(&DriftProtocol);
    let mut sim = Engine::new(DriftProtocol, config.clone(), options).expect("valid");
    let mut out = Vec::new();
    for _ in 0..steps {
        let step = scheduler.next(&sim.scheduler_view());
        sim.step(&step, &mut ())
            .expect("drift protocol never fails");
        out.push(step);
    }
    out
}

#[test]
fn round_robin_schedule_is_deterministic() {
    let config = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
    let a = schedule_of(&config, RoundRobinScheduler::new(), 64);
    let b = schedule_of(&config, RoundRobinScheduler::new(), 64);
    assert_eq!(a, b);
    // And it is exactly the cyclic single-robot round sequence.
    for (i, step) in a.iter().enumerate() {
        assert_eq!(*step, SchedulerStep::SsyncRound(vec![i % 4]));
    }
}

#[test]
fn asynchronous_schedule_is_deterministic_per_seed() {
    let config = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let a = schedule_of(&config, AsynchronousScheduler::seeded(seed), 300);
        let b = schedule_of(&config, AsynchronousScheduler::seeded(seed), 300);
        assert_eq!(a, b, "seed {seed}");
    }
    // Different seeds must produce different interleavings (with overwhelming
    // probability; these two fixed seeds are checked to differ).
    let a = schedule_of(&config, AsynchronousScheduler::seeded(1), 300);
    let b = schedule_of(&config, AsynchronousScheduler::seeded(2), 300);
    assert_ne!(a, b);
}

#[test]
fn asynchronous_fairness_window_flushes_deterministically() {
    // With a tiny fairness window every pending action is flushed within
    // `window` scheduler steps, and the flush decisions are a pure function
    // of the seed: the same run replayed twice emits identical schedules and
    // identical flush points.
    let config = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
    let window = 4u64;
    let runs: Vec<Vec<SchedulerStep>> = (0..2)
        .map(|_| {
            schedule_of(
                &config,
                AsynchronousScheduler::seeded(9).with_fairness_window(window),
                400,
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    // Fairness: replay the schedule and check no robot stays pending longer
    // than the window.
    let options = EngineOptions::for_protocol(&DriftProtocol);
    let mut sim = Engine::new(DriftProtocol, config, options).expect("valid");
    let mut pending_since = vec![None::<u64>; sim.num_robots()];
    for (t, step) in runs[0].iter().enumerate() {
        sim.step(step, &mut ()).expect("drift protocol never fails");
        let view = sim.scheduler_view();
        for (r, since_slot) in pending_since.iter_mut().enumerate() {
            if view.pending[r] {
                let since = *since_slot.get_or_insert(t as u64);
                assert!(
                    (t as u64) - since <= window * view.num_robots as u64,
                    "robot {r} pending since {since}, still pending at {t}"
                );
            } else {
                *since_slot = None;
            }
        }
    }
}
