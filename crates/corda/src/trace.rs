//! Execution traces: the sequence of observable events of a simulation run.

use rr_ring::NodeId;
use serde::{Deserialize, Serialize};

use crate::fault::CorruptionKind;
use crate::robot::RobotId;

/// A single observable event of the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A robot performed its Look + Compute phases.
    Looked {
        /// The robot.
        robot: RobotId,
        /// Global step counter at which the event happened.
        step: u64,
        /// Whether the computed decision was a move.
        decided_to_move: bool,
    },
    /// A robot executed a pending move.
    Moved {
        /// The robot.
        robot: RobotId,
        /// Node it left.
        from: NodeId,
        /// Node it reached.
        to: NodeId,
        /// Global step counter at which the event happened.
        step: u64,
    },
    /// A robot executed a pending idle decision (completed a cycle without
    /// moving).
    StayedIdle {
        /// The robot.
        robot: RobotId,
        /// Global step counter at which the event happened.
        step: u64,
    },
    /// The engine applied many full rounds as one batched leap
    /// (`StepPath::Leap` under a round-uniform scheduler): a single summary
    /// event stands in for the per-robot events of those rounds.
    Leaped {
        /// Full rounds applied.
        rounds: u64,
        /// Robot moves executed across those rounds.
        moves: u64,
        /// Global step counter *after* the leap.
        step: u64,
    },
    /// An armed crash-stop fault took effect: the robot's first activation
    /// was suppressed and it will never act again.  Emitted once per run,
    /// at the first suppressed activation.
    FaultCrash {
        /// The crashed robot.
        robot: RobotId,
        /// Global step counter when the first activation was suppressed.
        step: u64,
    },
    /// A fresh Look observed a corrupted snapshot (emitted before the
    /// corresponding [`Event::Looked`]).
    FaultCorruption {
        /// The robot whose Look was corrupted.
        robot: RobotId,
        /// Global step counter *after* the corrupted Look.
        step: u64,
        /// The perturbation applied.
        kind: CorruptionKind,
    },
}

impl Event {
    /// The robot involved in the event ([`None`] for aggregate events such
    /// as [`Event::Leaped`]).
    #[must_use]
    pub fn robot(&self) -> Option<RobotId> {
        match self {
            Event::Looked { robot, .. }
            | Event::Moved { robot, .. }
            | Event::StayedIdle { robot, .. }
            | Event::FaultCrash { robot, .. }
            | Event::FaultCorruption { robot, .. } => Some(*robot),
            Event::Leaped { .. } => None,
        }
    }

    /// The global step at which the event happened.
    #[must_use]
    pub fn step(&self) -> u64 {
        match self {
            Event::Looked { step, .. }
            | Event::Moved { step, .. }
            | Event::StayedIdle { step, .. }
            | Event::Leaped { step, .. }
            | Event::FaultCrash { step, .. }
            | Event::FaultCorruption { step, .. } => *step,
        }
    }
}

/// Whether an engine's trace records events.
///
/// [`TraceMode::Disabled`] is the hot-loop default: the engine's stepping
/// pipeline checks [`Trace::is_recording`] *before* constructing an
/// [`Event`], so sweeps, benchmarks and the model checker pay nothing for
/// the tracing machinery.  [`TraceMode::Recording`] produces exactly the
/// event sequences it always did (pinned by the engine's trace tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceMode {
    /// Append every event to the trace.
    Recording,
    /// Drop events without even constructing them (the default for sweeps
    /// and benches).
    #[default]
    Disabled,
}

impl TraceMode {
    /// Whether this mode records events.
    #[must_use]
    pub fn is_recording(self) -> bool {
        matches!(self, TraceMode::Recording)
    }
}

/// An append-only log of [`Event`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
    mode: TraceMode,
}

impl Trace {
    /// A trace that records events.
    #[must_use]
    pub fn recording() -> Self {
        Trace::for_mode(TraceMode::Recording)
    }

    /// A trace that drops events (for long benchmark runs).
    #[must_use]
    pub fn disabled() -> Self {
        Trace::for_mode(TraceMode::Disabled)
    }

    /// A trace with the given mode.
    #[must_use]
    pub fn for_mode(mode: TraceMode) -> Self {
        Trace {
            events: Vec::new(),
            mode,
        }
    }

    /// Clears the log and sets the mode of future events, keeping the
    /// allocated buffer (used by `Engine::reset` to recycle engines across
    /// batch runs).
    pub fn reset(&mut self, mode: TraceMode) {
        self.events.clear();
        self.mode = mode;
    }

    /// Whether events are currently recorded.  Hot loops branch on this
    /// before constructing an [`Event`] at all.
    #[inline]
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.mode.is_recording()
    }

    /// Appends an event (no-op when recording is disabled).
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.mode.is_recording() {
            self.events.push(event);
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over the recorded move events.
    pub fn moves(&self) -> impl Iterator<Item = (RobotId, NodeId, NodeId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Moved {
                robot, from, to, ..
            } => Some((*robot, *from, *to)),
            _ => None,
        })
    }

    /// Number of moves by each robot, as a vector indexed by robot id.
    #[must_use]
    pub fn moves_per_robot(&self, k: usize) -> Vec<u64> {
        let mut out = vec![0u64; k];
        for (r, _, _) in self.moves() {
            if r < k {
                out[r] += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_disabled_traces() {
        let mut t = Trace::recording();
        t.push(Event::Looked {
            robot: 0,
            step: 1,
            decided_to_move: true,
        });
        t.push(Event::Moved {
            robot: 0,
            from: 3,
            to: 4,
            step: 2,
        });
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let mut d = Trace::disabled();
        d.push(Event::Moved {
            robot: 0,
            from: 3,
            to: 4,
            step: 2,
        });
        assert!(d.is_empty());
    }

    #[test]
    fn move_extraction() {
        let mut t = Trace::recording();
        t.push(Event::Moved {
            robot: 1,
            from: 0,
            to: 1,
            step: 0,
        });
        t.push(Event::StayedIdle { robot: 0, step: 1 });
        t.push(Event::Moved {
            robot: 1,
            from: 1,
            to: 2,
            step: 2,
        });
        let moves: Vec<_> = t.moves().collect();
        assert_eq!(moves, vec![(1, 0, 1), (1, 1, 2)]);
        assert_eq!(t.moves_per_robot(3), vec![0, 2, 0]);
    }

    #[test]
    fn event_accessors() {
        let e = Event::Moved {
            robot: 5,
            from: 0,
            to: 1,
            step: 9,
        };
        assert_eq!(e.robot(), Some(5));
        assert_eq!(e.step(), 9);
        let e = Event::Looked {
            robot: 2,
            step: 4,
            decided_to_move: false,
        };
        assert_eq!(e.robot(), Some(2));
        assert_eq!(e.step(), 4);
        let e = Event::Leaped {
            rounds: 7,
            moves: 7,
            step: 42,
        };
        assert_eq!(e.robot(), None);
        assert_eq!(e.step(), 42);
        let e = Event::FaultCrash { robot: 3, step: 17 };
        assert_eq!(e.robot(), Some(3));
        assert_eq!(e.step(), 17);
        let e = Event::FaultCorruption {
            robot: 1,
            step: 8,
            kind: CorruptionKind::PhantomMultiplicity,
        };
        assert_eq!(e.robot(), Some(1));
        assert_eq!(e.step(), 8);
    }
}
