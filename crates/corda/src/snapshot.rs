//! The local snapshot a robot obtains during its Look phase.

use rr_ring::{Configuration, Direction, NodeId, View};
use serde::{Deserialize, Serialize};

/// Which multiplicity-detection capability the robots are granted
/// (Section 2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiplicityCapability {
    /// No multiplicity detection at all: a robot only perceives the set of
    /// occupied nodes.
    None,
    /// *Local* (weak) multiplicity detection: a robot knows whether its own
    /// node hosts more than one robot, but not the exact count and nothing
    /// about other nodes.  This is the capability assumed for gathering.
    Local,
    /// *Global* multiplicity detection: a robot knows, for every occupied
    /// node, whether it hosts more than one robot.  Not needed by the paper's
    /// algorithms; provided for completeness and for baselines.
    Global,
}

/// The information a robot perceives during its Look phase.
///
/// The robot has no sense of orientation: it receives its two directional
/// views in an order chosen by the simulator (effectively by the adversary)
/// and must not attach any meaning to the order beyond "these are my two
/// reading directions".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The two views read from the robot's node, one per direction.
    pub views: [View; 2],
    /// Whether the robot's own node is a multiplicity (only with
    /// [`MultiplicityCapability::Local`] or `Global`).
    pub on_multiplicity: Option<bool>,
    /// With [`MultiplicityCapability::Global`]: for each occupied node in the
    /// reading order of `views[0]` (starting with the robot's own node),
    /// whether that node is a multiplicity.
    pub global_multiplicities: Option<Vec<bool>>,
}

impl Snapshot {
    /// An empty snapshot, ready to be filled by [`Snapshot::capture_into`]:
    /// the scratch buffer engines own for the zero-allocation Look pipeline.
    #[must_use]
    pub fn empty() -> Self {
        Snapshot {
            views: [View::new(Vec::new()), View::new(Vec::new())],
            on_multiplicity: None,
            global_multiplicities: None,
        }
    }

    /// Builds the snapshot perceived by a robot standing at `node` in
    /// `config`, with the given capability.  `first_direction` determines
    /// which global direction is presented as `views[0]`; protocols must not
    /// depend on it.
    #[must_use]
    pub fn capture(
        config: &Configuration,
        node: NodeId,
        capability: MultiplicityCapability,
        first_direction: Direction,
    ) -> Self {
        let mut snapshot = Snapshot::empty();
        snapshot.capture_into(config, node, capability, first_direction);
        snapshot
    }

    /// Fills `self` with the snapshot [`Snapshot::capture`] would return,
    /// reusing the existing view buffers and multiplicity-flag vector: O(k)
    /// end to end (both views and the `Global` flags read straight off the
    /// configuration's maintained occupancy cycle) and allocation-free once
    /// the buffers have capacity `k`.  This is the Look hot path the engine
    /// runs on its own scratch snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not occupied.
    pub fn capture_into(
        &mut self,
        config: &Configuration,
        node: NodeId,
        capability: MultiplicityCapability,
        first_direction: Direction,
    ) {
        let d0 = first_direction;
        let d1 = first_direction.opposite();
        config.view_from_into(node, d0, &mut self.views[0]);
        config.view_from_into(node, d1, &mut self.views[1]);
        self.on_multiplicity = match capability {
            MultiplicityCapability::None => None,
            MultiplicityCapability::Local | MultiplicityCapability::Global => {
                Some(config.is_multiplicity(node))
            }
        };
        if capability == MultiplicityCapability::Global {
            // One O(k) pass over the occupied cycle, in the order of
            // views[0] (which starts at the robot's own node).
            let flags = self.global_multiplicities.get_or_insert_with(Vec::new);
            flags.clear();
            flags.extend(
                config
                    .occupied_cycle(node, d0)
                    .map(|v| config.is_multiplicity(v)),
            );
        } else {
            self.global_multiplicities = None;
        }
    }

    /// Reference implementation of [`Snapshot::capture`]: the
    /// pre-incremental pipeline — O(n) ring walks per view
    /// ([`Configuration::view_from_scan`]) and an O(n·k) empty-node re-walk
    /// for the `Global` flags, two heap allocations per Look.  Kept for
    /// equivalence tests and as the live baseline the engine's
    /// `LookPath::ScanBaseline` option (and with it the E12 throughput
    /// experiment) measures the incremental pipeline against.
    #[must_use]
    pub fn capture_scan(
        config: &Configuration,
        node: NodeId,
        capability: MultiplicityCapability,
        first_direction: Direction,
    ) -> Self {
        let d0 = first_direction;
        let d1 = first_direction.opposite();
        let views = [
            config.view_from_scan(node, d0),
            config.view_from_scan(node, d1),
        ];
        let on_multiplicity = match capability {
            MultiplicityCapability::None => None,
            MultiplicityCapability::Local | MultiplicityCapability::Global => {
                Some(config.is_multiplicity(node))
            }
        };
        let global_multiplicities = match capability {
            MultiplicityCapability::Global => {
                // Walk the occupied nodes in the order of views[0].
                let mut flags = Vec::with_capacity(views[0].len());
                let mut cur = node;
                flags.push(config.is_multiplicity(cur));
                for _ in 1..views[0].len() {
                    // advance to next occupied node in direction d0
                    loop {
                        cur = config.ring().neighbor(cur, d0);
                        if config.is_occupied(cur) {
                            break;
                        }
                    }
                    flags.push(config.is_multiplicity(cur));
                }
                Some(flags)
            }
            _ => None,
        };
        Snapshot {
            views,
            on_multiplicity,
            global_multiplicities,
        }
    }

    /// Applies one bounded sensor corruption to a captured snapshot: the
    /// fault-injection hook behind
    /// [`FaultModel::CorruptLook`](crate::fault::FaultModel::CorruptLook).
    ///
    /// Only the multiplicity channel is perturbed — the gap views stay
    /// truthful, so the lie is a single sensor bit:
    ///
    /// * [`CorruptionKind::PhantomMultiplicity`](crate::fault::CorruptionKind::PhantomMultiplicity)
    ///   reports the robot's own node
    ///   as a multiplicity (raising the own-node flag of the `Global` vector
    ///   too, when present);
    /// * [`CorruptionKind::MissingMultiplicity`](crate::fault::CorruptionKind::MissingMultiplicity)
    ///   hides a real multiplicity on
    ///   the robot's own node (lowering the own-node `Global` flag too).
    ///
    /// Under [`MultiplicityCapability::None`] the snapshot carries no
    /// multiplicity channel and the corruption is a no-op: a sensor the
    /// robots do not have cannot lie to them.
    pub fn corrupt(&mut self, kind: crate::fault::CorruptionKind) {
        use crate::fault::CorruptionKind;
        let lie = match kind {
            CorruptionKind::PhantomMultiplicity => true,
            CorruptionKind::MissingMultiplicity => false,
        };
        if let Some(own) = self.on_multiplicity.as_mut() {
            *own = lie;
        }
        if let Some(flags) = self.global_multiplicities.as_mut() {
            if let Some(own) = flags.first_mut() {
                *own = lie;
            }
        }
    }

    /// Number of occupied nodes visible in the snapshot.
    #[must_use]
    pub fn occupied_nodes(&self) -> usize {
        self.views[0].len()
    }

    /// The size of the ring implied by the snapshot
    /// (`#occupied + sum of gaps`).
    #[must_use]
    pub fn ring_size(&self) -> usize {
        self.views[0].len() + self.views[0].total_gap()
    }

    /// The supermin configuration view reconstructed from the snapshot; since
    /// a view determines the configuration up to isomorphism this is exactly
    /// the paper's `W_min^C`.
    #[must_use]
    pub fn supermin(&self) -> View {
        self.views[0].supermin()
    }

    /// Whether the two directional views coincide (the robot sits on an axis
    /// of symmetry or in a periodic configuration where both directions look
    /// alike); in that case any move decision is inherently ambiguous and the
    /// adversary picks the actual direction.
    #[must_use]
    pub fn is_locally_symmetric(&self) -> bool {
        self.views[0] == self.views[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::Ring;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn capture_produces_both_directions() {
        let c = cfg(&[0, 1, 0, 0, 6]);
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::None, Direction::Cw);
        assert_eq!(s.views[0], c.view_from(0, Direction::Cw));
        assert_eq!(s.views[1], c.view_from(0, Direction::Ccw));
        assert_eq!(s.on_multiplicity, None);
        assert_eq!(s.global_multiplicities, None);
        assert_eq!(s.occupied_nodes(), 5);
        assert_eq!(s.ring_size(), 12);
    }

    #[test]
    fn capture_respects_first_direction() {
        let c = cfg(&[0, 1, 0, 0, 6]);
        let cw = Snapshot::capture(&c, 0, MultiplicityCapability::None, Direction::Cw);
        let ccw = Snapshot::capture(&c, 0, MultiplicityCapability::None, Direction::Ccw);
        assert_eq!(cw.views[0], ccw.views[1]);
        assert_eq!(cw.views[1], ccw.views[0]);
    }

    #[test]
    fn local_multiplicity_flag() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 1, 0, 0]).unwrap();
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::Local, Direction::Cw);
        assert_eq!(s.on_multiplicity, Some(true));
        let s = Snapshot::capture(&c, 2, MultiplicityCapability::Local, Direction::Cw);
        assert_eq!(s.on_multiplicity, Some(false));
        assert!(s.global_multiplicities.is_none());
    }

    #[test]
    fn global_multiplicity_flags_follow_view_order() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 3, 0, 0]).unwrap();
        let s = Snapshot::capture(&c, 2, MultiplicityCapability::Global, Direction::Cw);
        // Occupied nodes in cw order from node 2: 2, 5, 0.
        assert_eq!(s.global_multiplicities, Some(vec![false, true, true]));
        let s = Snapshot::capture(&c, 2, MultiplicityCapability::Global, Direction::Ccw);
        // Occupied nodes in ccw order from node 2: 2, 0, 5.
        assert_eq!(s.global_multiplicities, Some(vec![false, true, true]));
    }

    #[test]
    fn supermin_is_direction_independent() {
        let c = cfg(&[0, 2, 1, 5]);
        for node in c.occupied_nodes() {
            for dir in Direction::BOTH {
                let s = Snapshot::capture(&c, node, MultiplicityCapability::None, dir);
                assert_eq!(s.supermin(), rr_ring::supermin_view(&c));
            }
        }
    }

    #[test]
    fn capture_into_and_scan_agree_with_capture_everywhere() {
        // Every capability × direction × node, with multiplicities: the
        // buffer-reusing capture, the allocating wrapper and the O(n)-scan
        // reference must produce identical snapshots — including a reused
        // scratch that previously held a different instance's data.
        let ring = Ring::new(9);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 3, 1, 0, 0]).unwrap();
        let mut scratch = Snapshot::capture(
            &cfg(&[0, 1, 3]),
            0,
            MultiplicityCapability::Global,
            Direction::Cw,
        );
        for capability in [
            MultiplicityCapability::None,
            MultiplicityCapability::Local,
            MultiplicityCapability::Global,
        ] {
            for node in c.occupied_nodes() {
                for dir in Direction::BOTH {
                    let fresh = Snapshot::capture(&c, node, capability, dir);
                    let scan = Snapshot::capture_scan(&c, node, capability, dir);
                    scratch.capture_into(&c, node, capability, dir);
                    assert_eq!(fresh, scan, "node={node} capability={capability:?}");
                    assert_eq!(scratch, scan, "node={node} capability={capability:?}");
                }
            }
        }
    }

    #[test]
    fn corrupt_perturbs_only_the_multiplicity_channel() {
        use crate::fault::CorruptionKind;
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 3, 0, 0]).unwrap();
        // Phantom on a non-multiplicity node (Local).
        let clean = Snapshot::capture(&c, 2, MultiplicityCapability::Local, Direction::Cw);
        let mut s = clean.clone();
        s.corrupt(CorruptionKind::PhantomMultiplicity);
        assert_eq!(s.on_multiplicity, Some(true));
        assert_eq!(s.views, clean.views, "views stay truthful");
        // Missing on a real multiplicity (Global): own-node flag drops too.
        let clean = Snapshot::capture(&c, 0, MultiplicityCapability::Global, Direction::Cw);
        let mut s = clean.clone();
        s.corrupt(CorruptionKind::MissingMultiplicity);
        assert_eq!(s.on_multiplicity, Some(false));
        let flags = s.global_multiplicities.as_ref().unwrap();
        assert!(!flags[0]);
        assert_eq!(
            &flags[1..],
            &clean.global_multiplicities.as_ref().unwrap()[1..],
            "other nodes' flags untouched"
        );
        // Capability None: nothing to corrupt.
        let clean = Snapshot::capture(&c, 2, MultiplicityCapability::None, Direction::Cw);
        let mut s = clean.clone();
        s.corrupt(CorruptionKind::PhantomMultiplicity);
        assert_eq!(s, clean);
    }

    #[test]
    fn local_symmetry_detection() {
        // Robot 3 in gaps (2,2,0,0) sits on the axis.
        let c = cfg(&[0, 0, 2, 2]);
        let occ = c.occupied_nodes();
        // occupied: 0,1,2,5 on n=8; the axis robot is node 1 (gaps 0 on both sides)?
        // Verify via the snapshot predicate instead of hand-reasoning:
        let symmetric_nodes: Vec<_> = occ
            .iter()
            .copied()
            .filter(|&v| {
                Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw)
                    .is_locally_symmetric()
            })
            .collect();
        assert_eq!(symmetric_nodes.len(), 2);
    }
}
