//! Errors raised by the simulator.

use rr_ring::NodeId;
use serde::{Deserialize, Serialize};

use crate::robot::RobotId;

/// An error produced while driving the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// A robot id outside `0..k` was referenced.
    UnknownRobot {
        /// The offending id.
        robot: RobotId,
        /// Number of robots in the system.
        k: usize,
    },
    /// A move would place two robots on the same node while the task requires
    /// the exclusivity property (perpetual exploration / graph searching).
    ExclusivityViolation {
        /// The robot whose move violated exclusivity.
        robot: RobotId,
        /// The node that would become a multiplicity.
        node: NodeId,
    },
    /// The underlying configuration rejected a move (should not happen when
    /// the simulator is used through its public API).
    InvalidMove {
        /// Human-readable reason.
        reason: String,
    },
    /// The initial configuration handed to the simulator was rejected.
    BadInitialConfiguration {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownRobot { robot, k } => {
                write!(f, "unknown robot {robot} (the system has {k} robots)")
            }
            SimError::ExclusivityViolation { robot, node } => write!(
                f,
                "robot {robot} moved onto occupied node {node} while exclusivity is required"
            ),
            SimError::InvalidMove { reason } => write!(f, "invalid move: {reason}"),
            SimError::BadInitialConfiguration { reason } => {
                write!(f, "bad initial configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = SimError::ExclusivityViolation { robot: 3, node: 7 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
        let e = SimError::UnknownRobot { robot: 9, k: 4 };
        assert!(e.to_string().contains('9'));
    }
}
