//! Simulator-side robot bookkeeping.
//!
//! Robot identifiers exist only so the simulator (and the verification
//! oracles, e.g. the perpetual-exploration monitor) can track individual
//! robots across moves; protocols never observe them.

use rr_ring::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a robot, in `0..k`.  Invisible to protocols.
pub type RobotId = usize;

/// The Look–Compute–Move phase a robot is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// No pending computation: the next activation performs Look + Compute.
    Ready,
    /// Look and Compute are done; a move (possibly based on an outdated
    /// snapshot) is pending towards the stored target node.
    MovePending {
        /// The adjacent node the robot committed to move to.
        target: NodeId,
    },
    /// Look and Compute are done and the robot decided to stay idle; the
    /// pending "null move" still has to be executed to complete the cycle.
    IdlePending,
}

/// Per-robot simulator state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobotState {
    /// Current node.
    pub node: NodeId,
    /// Current phase of the Look–Compute–Move cycle.
    pub phase: Phase,
    /// Number of completed Look–Compute–Move cycles.
    pub cycles: u64,
    /// Number of actual moves performed (cycles whose decision was a move).
    pub moves: u64,
}

impl RobotState {
    /// A freshly placed robot, ready to Look.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        RobotState {
            node,
            phase: Phase::Ready,
            cycles: 0,
            moves: 0,
        }
    }

    /// Whether the robot has a pending (move or idle) action.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !matches!(self.phase, Phase::Ready)
    }

    /// Whether the robot has a pending *move* (as opposed to a pending idle).
    #[must_use]
    pub fn has_pending_move(&self) -> bool {
        matches!(self.phase, Phase::MovePending { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_robot_is_ready() {
        let r = RobotState::new(4);
        assert_eq!(r.node, 4);
        assert!(!r.has_pending());
        assert!(!r.has_pending_move());
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn pending_predicates() {
        let mut r = RobotState::new(0);
        r.phase = Phase::IdlePending;
        assert!(r.has_pending());
        assert!(!r.has_pending_move());
        r.phase = Phase::MovePending { target: 1 };
        assert!(r.has_pending());
        assert!(r.has_pending_move());
    }
}
