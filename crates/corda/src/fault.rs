//! Fault-injection adversaries: crash-stop robots, transient sensor
//! corruption, and bounded-unfair scheduling.
//!
//! The paper's correctness claims are proved under *clean* adversaries: every
//! robot eventually acts, and every Look observes the true configuration.
//! This module makes the complementary fault adversaries first-class, as a
//! deterministic, seed-derivable [`FaultModel`] the engine arms explicitly
//! ([`Engine::arm_fault`](crate::engine::Engine::arm_fault)):
//!
//! * **crash-stop** ([`FaultModel::Crash`]) — a robot permanently stops being
//!   activated once the global step counter reaches a chosen round.  The
//!   scheduler keeps issuing activations (it does not know); the engine
//!   suppresses them, freezing the robot's position and any pending action
//!   forever;
//! * **transient sensor corruption** ([`FaultModel::CorruptLook`]) — exactly
//!   one fresh Look (identified by its global look ordinal) observes a
//!   snapshot with one bounded perturbation: a phantom or a missing
//!   multiplicity flag ([`CorruptionKind`], applied by
//!   [`Snapshot::corrupt`](crate::snapshot::Snapshot::corrupt));
//! * **bounded-unfair scheduling** ([`FaultModel::BoundedUnfair`]) — the
//!   fairness window is stretched for one victim robot, which the adversary
//!   withholds for up to a budget `B` of scheduler steps (`u64::MAX` = starve
//!   forever).  This fault lives in the *scheduler*
//!   ([`BoundedUnfairScheduler`](crate::scheduler::BoundedUnfairScheduler)),
//!   not the engine: the engine still executes whatever it is handed.
//!
//! [`FaultModel::None`] is the contract that makes faults safe to thread
//! through the hot paths: an engine with no fault armed is **byte-identical**
//! to the pre-fault engine — same reports, same traces, same counters, same
//! `rr-sweep/v1` record bytes (pinned by `crates/corda/tests/fault_lockstep.rs`
//! and the bench golden files, which is why arming `None` does not bump
//! [`crate::ENGINE_VERSION`]).
//!
//! The exhaustive checker (`rr_checker::explore`) does not use seeded
//! schedules: it branches over the *choices* of the fault adversary (which
//! robot crashes, when; which Look is corrupted, how) as explicit frontier
//! edges, arming one-shot fault models per edge.

use serde::{Deserialize, Serialize};

use crate::robot::RobotId;

/// The bounded perturbation a corrupted Look applies to its snapshot.
///
/// Both perturbations touch only the multiplicity channel — the gap views
/// stay truthful, so the corruption is *bounded* in the sense of the fault
/// model: a single sensor bit lies, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// The robot's own node is reported as a multiplicity even if it is not
    /// (and, under global detection, the own-node flag is raised too).
    PhantomMultiplicity,
    /// A real multiplicity on the robot's own node is hidden.
    MissingMultiplicity,
}

impl CorruptionKind {
    /// Both corruption kinds, in the deterministic order the model checker
    /// branches over them.
    pub const ALL: [CorruptionKind; 2] = [
        CorruptionKind::PhantomMultiplicity,
        CorruptionKind::MissingMultiplicity,
    ];

    /// Stable lower-case name, used in experiment records and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::PhantomMultiplicity => "phantom",
            CorruptionKind::MissingMultiplicity => "missing",
        }
    }
}

/// A deterministic fault schedule, armed on an engine (or, for
/// [`FaultModel::BoundedUnfair`], realized by a scheduler).
///
/// The model is deliberately a *schedule*, not a probability: given the same
/// `FaultModel`, the same initial configuration and the same scheduler steps,
/// the faulted run is bit-for-bit reproducible.  Seed-derived constructors
/// ([`FaultModel::seeded_crash`] and friends) turn one `u64` into a schedule,
/// which is how sweep cells derive their fault columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FaultModel {
    /// No fault.  The engine's behaviour — reports, traces, counters,
    /// record bytes — is identical to an engine that never heard of faults.
    #[default]
    None,
    /// Crash-stop: `robot` permanently stops being activated once the
    /// engine's global step counter is `>= after_step` (evaluated at
    /// scheduler-step entry).  Its position and any pending action freeze.
    Crash {
        /// The robot that crashes.
        robot: RobotId,
        /// First global step at which activations are suppressed.
        after_step: u64,
    },
    /// Transient sensor corruption: the fresh Look whose global look ordinal
    /// (the engine's [`look_count`](crate::engine::Engine::look_count) at the
    /// moment of the Look) equals `look` observes a snapshot perturbed by
    /// `kind`.  All other Looks are truthful.
    CorruptLook {
        /// Global look ordinal of the corrupted Look (0-based).
        look: u64,
        /// The perturbation applied.
        kind: CorruptionKind,
    },
    /// Bounded-unfair scheduling: `robot` may be withheld for up to `budget`
    /// scheduler steps (`u64::MAX`: forever).  Realized by
    /// [`BoundedUnfairScheduler`](crate::scheduler::BoundedUnfairScheduler);
    /// arming it on an engine is a no-op by design (the engine side carries
    /// it only so one `FaultModel` value can describe a whole sweep cell).
    BoundedUnfair {
        /// The starved robot.
        robot: RobotId,
        /// Maximum number of scheduler steps the robot is withheld.
        budget: u64,
    },
}

/// `splitmix64` — the same derivation the sweep grid uses for per-cell
/// seeds, re-stated here so `rr-corda` stays dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultModel {
    /// Whether this is [`FaultModel::None`].
    #[must_use]
    pub fn is_none(self) -> bool {
        matches!(self, FaultModel::None)
    }

    /// Whether any fault is armed (the engine's leap certificates refuse to
    /// serve while this holds — see `Engine::leap`).
    #[must_use]
    pub fn is_armed(self) -> bool {
        !self.is_none()
    }

    /// A seed-derived crash-stop fault for a system of `k` robots: the
    /// victim and the crash round are both drawn from `seed`, with the crash
    /// step in `0..horizon` (so every prefix length is reachable).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `horizon == 0`.
    #[must_use]
    pub fn seeded_crash(seed: u64, k: usize, horizon: u64) -> FaultModel {
        assert!(
            k > 0 && horizon > 0,
            "seeded_crash needs k > 0, horizon > 0"
        );
        let a = splitmix64(seed ^ 0xC0A5);
        let b = splitmix64(a);
        FaultModel::Crash {
            robot: (a % k as u64) as RobotId,
            after_step: b % horizon,
        }
    }

    /// A seed-derived transient Look corruption with the corrupted look
    /// ordinal in `0..horizon` and a seed-chosen [`CorruptionKind`].
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    #[must_use]
    pub fn seeded_corrupt_look(seed: u64, horizon: u64) -> FaultModel {
        assert!(horizon > 0, "seeded_corrupt_look needs horizon > 0");
        let a = splitmix64(seed ^ 0x1007);
        let b = splitmix64(a);
        FaultModel::CorruptLook {
            look: a % horizon,
            kind: CorruptionKind::ALL[(b % 2) as usize],
        }
    }

    /// A seed-derived bounded-unfair fault: a seed-chosen victim withheld
    /// for exactly `budget` scheduler steps.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn seeded_unfair(seed: u64, k: usize, budget: u64) -> FaultModel {
        assert!(k > 0, "seeded_unfair needs k > 0");
        let a = splitmix64(seed ^ 0x0FA1);
        FaultModel::BoundedUnfair {
            robot: (a % k as u64) as RobotId,
            budget,
        }
    }

    /// Whether `robot` is crash-suppressed at global step `step` under this
    /// model.
    #[must_use]
    pub fn crashes(self, robot: RobotId, step: u64) -> bool {
        matches!(self, FaultModel::Crash { robot: r, after_step } if r == robot && step >= after_step)
    }

    /// The corruption to apply to the fresh Look with global ordinal
    /// `look_ordinal`, if any.
    #[must_use]
    pub fn corruption_at(self, look_ordinal: u64) -> Option<CorruptionKind> {
        match self {
            FaultModel::CorruptLook { look, kind } if look == look_ordinal => Some(kind),
            _ => None,
        }
    }

    /// Stable lower-case family name ("none", "crash", "corrupt-look",
    /// "unfair"), used in experiment records and tables.
    #[must_use]
    pub fn family(self) -> &'static str {
        match self {
            FaultModel::None => "none",
            FaultModel::Crash { .. } => "crash",
            FaultModel::CorruptLook { .. } => "corrupt-look",
            FaultModel::BoundedUnfair { .. } => "unfair",
        }
    }
}

/// One observable fault occurrence, delivered to
/// [`Monitor::on_fault`](crate::monitor::Monitor::on_fault) and mirrored by
/// the `Event::Fault*` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A crash-stop fault took effect: the robot's first suppressed
    /// activation happened at `step`.
    Crashed {
        /// The crashed robot.
        robot: RobotId,
        /// Global step counter when the first activation was suppressed.
        step: u64,
    },
    /// A fresh Look observed a corrupted snapshot.
    CorruptedLook {
        /// The robot whose Look was corrupted.
        robot: RobotId,
        /// Global step counter after the corrupted Look.
        step: u64,
        /// The perturbation applied.
        kind: CorruptionKind,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_the_default_and_unarmed() {
        assert_eq!(FaultModel::default(), FaultModel::None);
        assert!(FaultModel::None.is_none());
        assert!(!FaultModel::None.is_armed());
        assert!(!FaultModel::None.crashes(0, 0));
        assert_eq!(FaultModel::None.corruption_at(0), None);
        assert_eq!(FaultModel::None.family(), "none");
    }

    #[test]
    fn crash_predicate_matches_robot_and_step() {
        let f = FaultModel::Crash {
            robot: 2,
            after_step: 10,
        };
        assert!(!f.crashes(2, 9));
        assert!(f.crashes(2, 10));
        assert!(f.crashes(2, 11));
        assert!(!f.crashes(1, 11));
        assert_eq!(f.family(), "crash");
    }

    #[test]
    fn corruption_fires_at_exactly_one_look() {
        let f = FaultModel::CorruptLook {
            look: 7,
            kind: CorruptionKind::PhantomMultiplicity,
        };
        assert_eq!(f.corruption_at(6), None);
        assert_eq!(
            f.corruption_at(7),
            Some(CorruptionKind::PhantomMultiplicity)
        );
        assert_eq!(f.corruption_at(8), None);
        assert_eq!(f.family(), "corrupt-look");
    }

    #[test]
    fn seeded_models_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultModel::seeded_crash(seed, 4, 100);
            assert_eq!(a, FaultModel::seeded_crash(seed, 4, 100));
            let FaultModel::Crash { robot, after_step } = a else {
                panic!("seeded_crash built {a:?}");
            };
            assert!(robot < 4);
            assert!(after_step < 100);

            let b = FaultModel::seeded_corrupt_look(seed, 50);
            let FaultModel::CorruptLook { look, .. } = b else {
                panic!("seeded_corrupt_look built {b:?}");
            };
            assert!(look < 50);

            let c = FaultModel::seeded_unfair(seed, 3, 9);
            let FaultModel::BoundedUnfair { robot, budget } = c else {
                panic!("seeded_unfair built {c:?}");
            };
            assert!(robot < 3);
            assert_eq!(budget, 9);
        }
        // Different seeds reach different victims eventually.
        let victims: std::collections::HashSet<RobotId> = (0..64)
            .map(|s| match FaultModel::seeded_crash(s, 4, 100) {
                FaultModel::Crash { robot, .. } => robot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(victims.len(), 4, "all victims reachable: {victims:?}");
    }

    #[test]
    fn corruption_kind_names() {
        assert_eq!(CorruptionKind::PhantomMultiplicity.name(), "phantom");
        assert_eq!(CorruptionKind::MissingMultiplicity.name(), "missing");
    }
}
