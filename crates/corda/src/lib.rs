//! # rr-corda — the min-CORDA execution model
//!
//! This crate implements the Look–Compute–Move execution model of
//! Section 2.1 of the paper (the *minimalist CORDA* model):
//!
//! * robots are anonymous, uniform, oblivious and disoriented — a protocol is
//!   a pure function of the robot's local [`Snapshot`] (its two unoriented
//!   interval views plus, when the capability is granted, a local multiplicity
//!   bit);
//! * cycles are asynchronous: a robot may *Look* (take a snapshot and compute
//!   a pending move) and only later *Move*, by which time the configuration
//!   may have changed — the pending move is executed regardless, exactly as in
//!   the CORDA model;
//! * the adversary is modelled by [`scheduler::Scheduler`] implementations:
//!   fully-synchronous, semi-synchronous, sequential round-robin, randomized
//!   asynchronous with pending moves, and scripted adversaries used by the
//!   impossibility arguments.
//!
//! The [`Engine`] owns the global configuration and robot bookkeeping (ids,
//! pending moves); protocols never see any of it.  Every way of advancing a
//! run goes through the single [`Engine::step`] pipeline, and observation is
//! composed from [`Monitor`] implementations rather than hard-wired per task.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod fault;
pub mod leap;
pub mod monitor;
pub mod packed;
pub mod protocol;
pub mod robot;
pub mod scheduler;
pub mod snapshot;
pub mod trace;

pub use engine::{
    debug_step_probe, Engine, EngineOptions, EngineState, LookPath, MoveRecord, RunOutcome,
    RunReport, Simulator, SimulatorOptions, StepPath, StepReport, ViewOrder,
};
pub use error::SimError;
pub use fault::{CorruptionKind, FaultEvent, FaultModel};
pub use leap::{LeapPlan, LeapRecord};
pub use monitor::{Monitor, MoveLog};
pub use packed::{CanonicalTransform, PackedState, StateSig, MAX_CANONICAL_N, SIG_WORDS};
pub use protocol::{Decision, Protocol, ViewIndex};
pub use robot::{RobotId, RobotState};
pub use scheduler::{
    BoundedUnfairScheduler, InterleavingMode, NondeterministicScheduler, Scheduler, SchedulerKind,
    SchedulerStep, SchedulerView,
};
pub use snapshot::{MultiplicityCapability, Snapshot};
pub use trace::{Event, Trace, TraceMode};

/// The engine's **semantic** version, stamped into every `rr-sweep/v1`
/// report header and folded into the sweep service's content-addressed
/// cache key.
///
/// This is deliberately *not* the Cargo package version: it is bumped if
/// and only if a change can alter the **observable record stream** of a
/// seeded run — protocol decision tables, scheduler randomness derivation,
/// per-cell seed derivation, or the record serialization itself.  Pure
/// performance work (new step paths, packed codecs, allocation reuse) keeps
/// the version, because the lockstep harnesses prove those paths
/// byte-identical.  Bumping it invalidates every cached sweep ledger, which
/// is exactly the intended effect.
pub const ENGINE_VERSION: &str = "1.0.0";
